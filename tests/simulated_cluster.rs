//! Drives the DES substrate end-to-end: a ping-pong and a static farm on
//! the simulated cluster, checking the virtual timings against closed-form
//! expectations.

use parc::sim::{ClusterBuilder, Engine, Job, NodeSpec, SimTime};

/// Ping-pong over the simulated 100 Mbit wire: node 0 sends `bytes`, node
/// 1 echoes. Events carry the whole protocol.
fn pingpong_rtt(bytes: usize, rounds: usize) -> SimTime {
    struct World {
        cluster: parc::sim::Cluster,
        bytes: usize,
        remaining: usize,
    }

    fn send_ping(eng: &mut Engine<World>, w: &mut World) {
        if w.remaining == 0 {
            return;
        }
        w.remaining -= 1;
        let bytes = w.bytes;
        let t = w.cluster.link_mut(0, 1).transmit(eng.now(), bytes);
        eng.schedule_at(t.arrival, move |eng, w: &mut World| {
            // Pong back.
            let t = w.cluster.link_mut(1, 0).transmit(eng.now(), bytes);
            eng.schedule_at(t.arrival, send_ping);
        });
    }

    let mut b = ClusterBuilder::new();
    b.nodes(2, NodeSpec::default()).link_latency(SimTime::from_micros(50));
    let mut world = World { cluster: b.build(), bytes, remaining: rounds };
    let mut engine = Engine::new();
    engine.schedule_at(SimTime::ZERO, send_ping);
    engine.run(&mut world)
}

#[test]
fn pingpong_matches_closed_form() {
    // One round of B bytes each way: 2 * (B / 12.5e6 + 50us).
    let bytes = 125_000; // 10 ms of wire each way
    let total = pingpong_rtt(bytes, 1);
    let expected = SimTime::from_millis(20) + SimTime::from_micros(100);
    let drift = total.as_nanos().abs_diff(expected.as_nanos());
    assert!(drift < 1_000, "got {total}, expected {expected}");
}

#[test]
fn pingpong_scales_linearly_in_rounds() {
    let one = pingpong_rtt(1_000, 1).as_secs_f64();
    let ten = pingpong_rtt(1_000, 10).as_secs_f64();
    assert!((ten / one - 10.0).abs() < 1e-6);
}

#[test]
fn cpu_queue_serializes_work_per_core() {
    // A dual-core node receives 4 jobs of 10 ms: makespan 20 ms.
    let mut b = ClusterBuilder::new();
    b.node(NodeSpec { cores: 2, speed_factor: 1.0 });
    let cluster = b.build();

    struct World {
        cluster: parc::sim::Cluster,
        done: usize,
    }

    fn complete(eng: &mut Engine<World>, w: &mut World) {
        w.done += 1;
        if let Some(started) = w.cluster.node_mut(0).cpus.complete(eng.now()) {
            eng.schedule_at(started.start + started.job.service, complete);
        }
    }

    let mut engine: Engine<World> = Engine::new();
    let mut world = World { cluster, done: 0 };
    for i in 0..4 {
        let job = Job::new(i, SimTime::from_millis(10));
        if let Some(started) = world.cluster.node_mut(0).cpus.offer(SimTime::ZERO, job) {
            engine.schedule_at(started.start + started.job.service, complete);
        }
    }
    let end = engine.run(&mut world);
    assert_eq!(world.done, 4);
    assert_eq!(end, SimTime::from_millis(20));
}

#[test]
fn jit_factor_slows_a_node_uniformly() {
    let mut b = ClusterBuilder::new();
    b.node(NodeSpec { cores: 1, speed_factor: 1.4 });
    let cluster = b.build();
    assert_eq!(
        cluster.node(0).service_time(SimTime::from_secs(10)),
        SimTime::from_secs(14)
    );
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let a = pingpong_rtt(4_321, 7);
    let b = pingpong_rtt(4_321, 7);
    assert_eq!(a, b);
}
