//! Property tests for the sharded object directory: deterministic ring
//! lookup, bounded remapping when membership changes, epoch safety (a
//! published table never routes to a node that was dead when it was
//! built), and bounded-memory resolution at large key counts.

use parc::scoopp::{ObjectDirectory, RingConfig};
use parc_testkit::Config;

fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("Class#{i}")).collect()
}

#[test]
fn resolution_is_deterministic_for_a_fixed_seed() {
    Config::cases(32).check(
        |src| {
            let nodes = src.usize_in(1..9);
            let seed = src.u64_any();
            let sample = src.vec_of(1..40, |s| s.string_of("abcdefgh0123#/", 1..24));
            (nodes, seed, sample)
        },
        |(nodes, seed, sample)| {
            let cfg = RingConfig { seed: *seed, ..RingConfig::default() };
            let a = ObjectDirectory::new(*nodes, cfg);
            let b = ObjectDirectory::new(*nodes, cfg);
            for key in sample {
                assert_eq!(a.resolve(key), b.resolve(key), "key {key:?}");
            }
        },
    );
}

#[test]
fn node_death_remaps_only_the_dead_nodes_keys() {
    Config::cases(16).check(
        |src| {
            let nodes = src.usize_in(3..9);
            let dead = src.usize_in(0..nodes);
            (nodes, dead)
        },
        |&(nodes, dead)| {
            let dir = ObjectDirectory::new(nodes, RingConfig::default());
            let sample = keys(2000);
            let before: Vec<usize> =
                sample.iter().map(|k| dir.resolve(k).unwrap().0).collect();
            dir.set_alive(dead, false);
            let mut remapped = 0usize;
            for (key, &was) in sample.iter().zip(&before) {
                let (now, _) = dir.resolve(key).unwrap();
                if was == dead {
                    assert_ne!(now, dead, "key {key:?} still routed to the dead node");
                    remapped += 1;
                } else {
                    // Consistent hashing: only the dead node's virtual
                    // nodes leave the ring, so everyone else's keys stay.
                    assert_eq!(now, was, "stable key {key:?} moved");
                }
            }
            // The dead node owned ~1/N of the keys; allow 2× slack for
            // hash-spread variance.
            let bound = 2 * sample.len() / nodes;
            assert!(
                remapped <= bound,
                "{remapped} of {} keys remapped, bound {bound} (N={nodes})",
                sample.len()
            );
            // Revival restores the original mapping exactly.
            dir.set_alive(dead, true);
            for (key, &was) in sample.iter().zip(&before) {
                assert_eq!(dir.resolve(key).unwrap().0, was);
            }
        },
    );
}

#[test]
fn published_tables_never_route_to_a_node_dead_at_their_epoch() {
    Config::cases(24).check(
        |src| {
            let nodes = src.usize_in(2..6);
            let toggles = src.vec_of(1..24, |s| {
                let node = s.usize_in(0..5);
                (node, s.bool_any())
            });
            (nodes, toggles)
        },
        |(nodes, toggles)| {
            let nodes = *nodes;
            let dir = ObjectDirectory::new(nodes, RingConfig::default());
            let mut alive = vec![true; nodes];
            let sample = keys(64);
            for &(node, up) in toggles {
                let node = node % nodes;
                alive[node] = up;
                let epoch = dir.set_alive(node, up);
                assert_eq!(dir.epoch(), epoch);
                for key in &sample {
                    match dir.resolve(key) {
                        Some((n, e)) => {
                            // The resolved epoch is the published table's;
                            // a node dead at that epoch got zero virtual
                            // nodes, so it cannot be the answer.
                            assert_eq!(e, epoch);
                            assert!(
                                alive[n],
                                "key {key:?} routed to dead node {n} at epoch {e}"
                            );
                        }
                        None => assert!(
                            alive.iter().all(|&a| !a),
                            "resolution failed with live nodes present"
                        ),
                    }
                }
            }
        },
    );
}

#[test]
fn epoch_bump_changes_no_routing_but_advances_the_clock() {
    let dir = ObjectDirectory::new(4, RingConfig::default());
    let sample = keys(500);
    let before: Vec<usize> = sample.iter().map(|k| dir.resolve(k).unwrap().0).collect();
    let e0 = dir.epoch();
    let e1 = dir.bump_epoch();
    assert!(e1 > e0);
    for (key, &was) in sample.iter().zip(&before) {
        let (now, epoch) = dir.resolve(key).unwrap();
        assert_eq!(now, was);
        assert_eq!(epoch, e1);
    }
}

#[test]
fn a_million_keys_resolve_with_bounded_memory_and_even_spread() {
    let nodes = 8;
    let dir = ObjectDirectory::new(nodes, RingConfig::default());
    let mut counts = vec![0u64; nodes];
    for i in 0..1_000_000u64 {
        let (node, _) = dir.resolve(&format!("obj#{i}")).expect("all nodes alive");
        counts[node] += 1;
    }
    let mean = 1_000_000.0 / nodes as f64;
    for (node, &count) in counts.iter().enumerate() {
        let ratio = count as f64 / mean;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "node {node} holds {count} keys ({ratio:.2}× mean)"
        );
    }
    // Placement is pure hashing: resolving a million keys leaves no
    // per-key state behind.
    assert_eq!(dir.placed_count(), 0);
}
