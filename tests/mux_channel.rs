//! Property and stress tests for the multiplexed TCP channel: the v2
//! frame codec under arbitrary inputs, demux correctness when replies
//! arrive out of order or carry unknown correlation IDs, and K threads
//! pipelining calls over one connection.

use std::io::Write;
use std::net::TcpListener;
use std::sync::Arc;

use parc_testkit::Config;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::frame::{
    read_frame_into, write_frame, FrameHeader, FrameRead, FLAG_ONEWAY, HEADER_LEN, MAX_FRAME,
};
use parc::remoting::tcp::{TcpClientChannel, TcpServerChannel};
use parc::remoting::{ClientChannel, RemoteObject, RemotingError};
use parc::serial::Value;

/// Any corr id / flags / payload combination survives the frame codec.
#[test]
fn frame_corr_id_roundtrips_for_arbitrary_frames() {
    Config::cases(128).check(
        |src| {
            let corr_id = src.u64_any();
            let oneway = src.bool_any();
            let payload = src.bytes(0..512);
            (corr_id, oneway, payload)
        },
        |(corr_id, oneway, payload)| {
            let flags = if *oneway { FLAG_ONEWAY } else { 0 };
            let mut wire = Vec::new();
            write_frame(&mut wire, *corr_id, flags, payload).unwrap();
            assert_eq!(wire.len(), HEADER_LEN + payload.len());
            let mut cursor = std::io::Cursor::new(wire);
            let mut out = Vec::new();
            let FrameRead::Frame(h) = read_frame_into(&mut cursor, &mut out).unwrap() else {
                panic!("expected a frame");
            };
            assert_eq!(h.corr_id, *corr_id);
            assert_eq!(h.oneway(), *oneway);
            assert_eq!(&out, payload);
            assert_eq!(read_frame_into(&mut cursor, &mut out).unwrap(), FrameRead::Eof);
        },
    );
}

/// Frames written in any interleaving come back in exactly that order
/// with their ids still attached — the invariant the demux loop needs.
#[test]
fn interleaved_frames_preserve_id_payload_pairing() {
    Config::cases(64).check(
        |src| {
            src.vec_of(1..12, |s| {
                let corr_id = s.u64_any();
                let payload = s.bytes(0..64);
                (corr_id, payload)
            })
        },
        |frames| {
            let mut wire = Vec::new();
            for (corr_id, payload) in frames {
                write_frame(&mut wire, *corr_id, 0, payload).unwrap();
            }
            let mut cursor = std::io::Cursor::new(wire);
            let mut out = Vec::new();
            for (corr_id, payload) in frames {
                let FrameRead::Frame(h) = read_frame_into(&mut cursor, &mut out).unwrap()
                else {
                    panic!("expected a frame");
                };
                assert_eq!(h.corr_id, *corr_id, "ids arrive in write order");
                assert_eq!(&out, payload, "payload stays paired with its id");
            }
            assert_eq!(read_frame_into(&mut cursor, &mut out).unwrap(), FrameRead::Eof);
        },
    );
}

/// Truncating a frame at any byte boundary is an error, never a hang or a
/// bogus frame.
#[test]
fn truncated_frames_error_at_every_cut_point() {
    Config::cases(64).check(
        |src| {
            let payload = src.bytes(1..64);
            let cut = src.usize_in(1..HEADER_LEN + payload.len());
            (payload, cut)
        },
        |(payload, cut)| {
            let mut wire = Vec::new();
            write_frame(&mut wire, 9, 0, payload).unwrap();
            let mut cursor = std::io::Cursor::new(wire[..*cut].to_vec());
            let mut out = Vec::new();
            let err = read_frame_into(&mut cursor, &mut out).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
        },
    );
}

/// Any declared length beyond MAX_FRAME is rejected from the header
/// alone, before any payload allocation.
#[test]
fn oversized_declared_lengths_are_rejected() {
    Config::cases(64).check(
        |src| src.u64_in(MAX_FRAME as u64 + 1..u32::MAX as u64 + 1),
        |len| {
            let mut raw = FrameHeader { corr_id: 1, flags: 0, len: 0 }.to_bytes();
            raw[0..4].copy_from_slice(&(*len as u32).to_be_bytes());
            let err = FrameHeader::from_bytes(&raw).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        },
    );
}

fn start_echo_server() -> TcpServerChannel {
    let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
    server.objects().register_singleton(
        "Echo",
        Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
            "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
            _ => Err(RemotingError::MethodNotFound {
                object: "Echo".into(),
                method: method.into(),
            }),
        })),
    );
    server
}

/// K threads × M calls over ONE multiplexed connection: every caller gets
/// exactly its own replies back, for arbitrary thread/call counts and
/// payload sizes.
#[test]
fn stress_many_threads_pipeline_one_connection() {
    let server = start_echo_server();
    let addr = server.local_addr().to_string();
    Config::cases(4).check(
        |src| {
            let threads = src.usize_in(2..6);
            let calls = src.usize_in(10..40);
            let payload_len = src.usize_in(0..256);
            (threads, calls, payload_len)
        },
        |(threads, calls, payload_len)| {
            let chan = Arc::new(TcpClientChannel::connect_pooled(&addr, 1).unwrap());
            std::thread::scope(|scope| {
                for t in 0..*threads {
                    let chan = Arc::clone(&chan);
                    scope.spawn(move || {
                        let proxy =
                            RemoteObject::new(chan as Arc<dyn ClientChannel>, "Echo");
                        for i in 0..*calls {
                            // A payload unique to (thread, call) so a
                            // misrouted reply cannot pass the equality check.
                            let tag = (t * 1_000_000 + i) as i32;
                            let mut arr = vec![tag; *payload_len];
                            arr.push(tag);
                            let sent = Value::I32Array(arr);
                            let got = proxy.call("echo", vec![sent.clone()]).unwrap();
                            assert_eq!(got, sent, "thread {t} call {i}");
                        }
                    });
                }
            });
        },
    );
}

/// A spurious reply frame with a correlation ID nobody is waiting on must
/// be dropped without disturbing the real call's reply.
#[test]
fn unknown_corr_id_replies_are_tolerated() {
    // Hand-rolled v2 server: for each request it first emits a garbage
    // frame with an unknown id, then the real (echoed) reply.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut payload = Vec::new();
        for round in 0..5u64 {
            let FrameRead::Frame(h) = read_frame_into(&mut stream, &mut payload).unwrap()
            else {
                panic!("expected request frame");
            };
            // Unknown id (never allocated by the client, which starts at 1
            // and counts up) with a payload that is not even a valid
            // message.
            write_frame(&mut stream, u64::MAX - round, 0, b"noise").unwrap();
            stream.flush().unwrap();
            // Now the real reply: echo the request payload back.
            write_frame(&mut stream, h.corr_id, 0, &payload).unwrap();
        }
    });

    let chan = TcpClientChannel::connect_pooled(&addr, 1).unwrap();
    let proxy = RemoteObject::new(Arc::new(chan) as Arc<dyn ClientChannel>, "Echo");
    for i in 0..5 {
        // The fake server echoes the encoded CallMessage bytes, which the
        // client cannot decode as a ReturnMessage — but the decode error
        // itself proves the *right* frame reached the right slot (a
        // dropped frame would time out; the noise frame would fail with
        // BadMagic-style garbage too, so check the error mentions decode,
        // not timeout).
        match proxy.call("echo", vec![Value::I32(i)]) {
            Err(RemotingError::Serial(_)) => {}
            other => panic!("expected a decode error from the echoed call bytes, got {other:?}"),
        }
    }
    server.join().unwrap();
}
