//! Property tests for the observability substrate, driven by the
//! in-tree `parc-testkit` tape generator: ring overwrite semantics,
//! histogram bucket/percentile invariants, and span-nesting depths.

use parc::obs::kinds;
use parc::obs::metrics::{bucket_index, bucket_upper_bound, Histogram, BUCKETS};
use parc::obs::ring::{EventRecord, Record, Ring, SpanRecord};
use parc_testkit::Config;

#[test]
fn ring_keeps_the_most_recent_capacity_records() {
    Config::cases(128).check(
        |src| {
            let capacity = src.usize_in(1..48);
            let pushes = src.usize_in(0..160);
            (capacity, pushes)
        },
        |&(capacity, pushes)| {
            let ring = Ring::new(capacity);
            for i in 0..pushes {
                ring.push(Record::Event(EventRecord {
                    kind: kinds::TICK,
                    at_ns: i as u64,
                    tid: 0,
                    node: parc::obs::trace::NODE_UNSET,
                    detail: i.to_string(),
                }));
            }
            assert_eq!(ring.pushed(), pushes as u64);
            let snap = ring.snapshot();
            assert_eq!(snap.len(), pushes.min(capacity), "ring never exceeds capacity");
            // Oldest-first, and exactly the latest `len` pushes survive.
            let first_kept = pushes - snap.len();
            for (offset, record) in snap.iter().enumerate() {
                match record {
                    Record::Event(e) => {
                        assert_eq!(e.at_ns, (first_kept + offset) as u64, "overwrite-oldest order")
                    }
                    Record::Span(_) => panic!("only events were pushed"),
                }
            }
        },
    );
}

#[test]
fn histogram_totals_and_percentiles_track_the_raw_samples() {
    Config::cases(96).check(
        |src| {
            let n = src.usize_in(1..64);
            (0..n).map(|_| src.u64_in(1..2_000_000_000)).collect::<Vec<u64>>()
        },
        |samples| {
            let h = Histogram::new();
            for &v in samples {
                h.record(v);
            }
            let min = *samples.iter().min().unwrap();
            let max = *samples.iter().max().unwrap();
            assert_eq!(h.count(), samples.len() as u64);
            assert_eq!(h.sum(), samples.iter().sum::<u64>());
            assert_eq!(h.min(), Some(min), "min is exact, not bucketed");
            assert_eq!(h.max(), max, "max is exact, not bucketed");
            for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
                let q = h.percentile(p);
                assert!(q >= min && q <= max, "p{p} = {q} outside [{min}, {max}]");
            }
            assert!(h.percentile(50.0) <= h.percentile(95.0));
            assert!(h.percentile(95.0) <= h.percentile(99.0));
        },
    );
}

#[test]
fn bucket_mapping_is_monotone_and_bounds_every_value() {
    Config::cases(96).check(
        |src| {
            let n = src.usize_in(2..64);
            let mut vals: Vec<u64> = (0..n).map(|_| src.u64_any() >> src.u64_in(0..40)).collect();
            vals.sort_unstable();
            vals
        },
        |vals| {
            for window in vals.windows(2) {
                assert!(
                    bucket_index(window[0]) <= bucket_index(window[1]),
                    "bucket_index must be monotone: {} vs {}",
                    window[0],
                    window[1]
                );
            }
            for &v in vals {
                let idx = bucket_index(v);
                assert!(idx < BUCKETS, "index {idx} out of range for {v}");
                let upper = bucket_upper_bound(idx);
                assert!(upper >= v, "upper bound {upper} below value {v}");
                // Log-linear with 4 sub-buckets per octave: the bucket's
                // upper bound overshoots by at most ~25% (plus slack for
                // the tiny exact buckets).
                assert!(
                    upper <= v.saturating_mul(2),
                    "bucket too coarse: {v} mapped under {upper}"
                );
            }
        },
    );
}

#[test]
fn nested_spans_record_matching_depths_and_containment() {
    fn nest(levels: usize) {
        let _span = parc::obs::Span::enter(kinds::CALL);
        if levels > 1 {
            nest(levels - 1);
        }
    }

    let _guard = parc::obs::test_lock();
    parc::obs::set_enabled(true);
    Config::cases(32).check(
        |src| src.usize_in(1..24),
        |&levels| {
            parc::obs::reset();
            nest(levels);
            let spans: Vec<SpanRecord> = parc::obs::recorder()
                .snapshot()
                .into_iter()
                .filter_map(|r| match r {
                    Record::Span(s) => Some(s),
                    Record::Event(_) => None,
                })
                .collect();
            assert_eq!(spans.len(), levels, "one record per nesting level");
            // Spans complete innermost-first, so the ring holds depths
            // levels-1 .. 0 in push order.
            for (i, span) in spans.iter().enumerate() {
                assert_eq!(span.depth as usize, levels - 1 - i);
            }
            // Each parent's window contains its child's.
            for pair in spans.windows(2) {
                let (child, parent) = (&pair[0], &pair[1]);
                assert!(parent.start_ns <= child.start_ns);
                assert!(parent.start_ns + parent.dur_ns >= child.start_ns + child.dur_ns);
            }
        },
    );
    parc::obs::set_enabled(false);
    parc::obs::reset();
}
