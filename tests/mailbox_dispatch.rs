//! Stress and property tests for per-object mailbox dispatch (the
//! work-stealing executor behind the TCP server and inproc endpoints):
//!
//! * per-object FIFO holds under K client threads × M objects sharing one
//!   pipelined connection (generated with testkit tapes);
//! * calls to distinct objects overlap in time while calls to one object
//!   never do;
//! * a stalled object blocks neither other objects nor the reader thread;
//! * the scheduler's observability signals (`dispatch.mailbox_wait`,
//!   `dispatch.steal`) actually fire under load — the smoke check
//!   `scripts/verify.sh` gates on;
//! * the inline pre-mailbox baseline still serves traffic.

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use parc_sync::Mutex;
use parc_testkit::Config;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::tcp::{DispatchMode, TcpClientChannel, TcpServerChannel};
use parc::remoting::{ClientChannel, MailboxScheduler, RemoteObject, RemotingError};
use parc::serial::Value;

/// Registers an object that logs `record(client, seq)` posts and answers
/// `count` with how many it has seen.
fn register_recorder(server: &TcpServerChannel, name: &str) -> Arc<Mutex<Vec<(i64, i64)>>> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    let object = name.to_string();
    server.objects().register_singleton(
        name,
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "record" => {
                let client = args[0].as_i64().unwrap_or(-1);
                let seq = args[1].as_i64().unwrap_or(-1);
                sink.lock().push((client, seq));
                Ok(Value::Null)
            }
            "count" => Ok(Value::I64(sink.lock().len() as i64)),
            _ => Err(RemotingError::MethodNotFound {
                object: object.clone(),
                method: method.into(),
            }),
        })),
    );
    log
}

/// Under K posting clients × M objects multiplexed over one connection,
/// every client's posts to any given object are dispatched in that
/// client's program order (the per-object FIFO guarantee), even though
/// the executing workers steal freely across objects.
#[test]
fn per_object_fifo_holds_under_concurrent_clients() {
    Config::cases(8).check(
        |src| {
            let objects = src.usize_in(2..5);
            let clients = src.usize_in(2..5);
            let tapes: Vec<Vec<usize>> = (0..clients)
                .map(|_| src.vec_of(5..25, |s| s.usize_in(0..objects)))
                .collect();
            (objects, tapes)
        },
        |(objects, tapes)| {
            let server =
                TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox {
                    workers: 4,
                })
                .unwrap();
            let names: Vec<String> = (0..*objects).map(|o| format!("Obj{o}")).collect();
            let logs: Vec<_> =
                names.iter().map(|n| register_recorder(&server, n)).collect();
            let addr = server.local_addr().to_string();
            let chan: Arc<dyn ClientChannel> =
                Arc::new(TcpClientChannel::connect_pooled(&addr, 1).unwrap());

            std::thread::scope(|scope| {
                for (client, tape) in tapes.iter().enumerate() {
                    let chan = Arc::clone(&chan);
                    let names = &names;
                    scope.spawn(move || {
                        for (seq, &obj) in tape.iter().enumerate() {
                            RemoteObject::new(Arc::clone(&chan), names[obj].clone())
                                .post(
                                    "record",
                                    vec![
                                        Value::I64(client as i64),
                                        Value::I64(seq as i64),
                                    ],
                                )
                                .unwrap();
                        }
                    });
                }
            });

            // A two-way call rides the same mailbox as the posts, so by the
            // time `count` answers, every `record` enqueued before it on
            // that object has executed.
            let mut expected: Vec<usize> = vec![0; *objects];
            for tape in tapes {
                for &obj in tape {
                    expected[obj] += 1;
                }
            }
            for (obj, name) in names.iter().enumerate() {
                let remote = RemoteObject::new(Arc::clone(&chan), name.clone());
                let got = remote.call("count", vec![]).unwrap();
                assert_eq!(got, Value::I64(expected[obj] as i64), "object {name}");
            }

            for (name, log) in names.iter().zip(&logs) {
                let log = log.lock();
                for client in 0..tapes.len() as i64 {
                    let seqs: Vec<i64> = log
                        .iter()
                        .filter(|(c, _)| *c == client)
                        .map(|(_, s)| *s)
                        .collect();
                    assert!(
                        seqs.windows(2).all(|w| w[0] < w[1]),
                        "client {client} posts to {name} ran out of order: {seqs:?}"
                    );
                }
            }
        },
    );
}

/// Builds a `nap` object that sleeps while asserting no second call to
/// itself overlaps, and bumps a global concurrency high-water mark.
fn register_sleepy(
    server: &TcpServerChannel,
    name: &str,
    nap: Duration,
    global_in_flight: Arc<AtomicUsize>,
    high_water: Arc<AtomicUsize>,
) {
    let object = name.to_string();
    let my_in_flight = AtomicUsize::new(0);
    server.objects().register_singleton(
        name,
        Arc::new(FnInvokable(move |method: &str, _args: &[Value]| match method {
            "nap" => {
                let mine = my_in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                assert_eq!(mine, 1, "two calls overlapped on one object");
                let concurrent = global_in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                high_water.fetch_max(concurrent, Ordering::SeqCst);
                std::thread::sleep(nap);
                global_in_flight.fetch_sub(1, Ordering::SeqCst);
                my_in_flight.fetch_sub(1, Ordering::SeqCst);
                Ok(Value::Null)
            }
            _ => Err(RemotingError::MethodNotFound {
                object: object.clone(),
                method: method.into(),
            }),
        })),
    );
}

/// Four objects × one pipelined connection: the four sleeps overlap
/// (wall clock well under the serial sum) while each object still runs
/// its own calls strictly one at a time.
#[test]
fn distinct_objects_overlap_but_each_is_serial() {
    let server = TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox {
        workers: 4,
    })
    .unwrap();
    let nap = Duration::from_millis(100);
    let global_in_flight = Arc::new(AtomicUsize::new(0));
    let high_water = Arc::new(AtomicUsize::new(0));
    let names: Vec<String> = (0..4).map(|i| format!("Sleepy{i}")).collect();
    for name in &names {
        register_sleepy(
            &server,
            name,
            nap,
            Arc::clone(&global_in_flight),
            Arc::clone(&high_water),
        );
    }
    let addr = server.local_addr().to_string();
    let chan: Arc<dyn ClientChannel> =
        Arc::new(TcpClientChannel::connect_pooled(&addr, 1).unwrap());

    let start = Instant::now();
    std::thread::scope(|scope| {
        for name in &names {
            let chan = Arc::clone(&chan);
            scope.spawn(move || {
                // Two serial rounds per object: per-object order is also
                // exercised, not just cross-object overlap.
                let remote = RemoteObject::new(chan, name.clone());
                remote.call("nap", vec![]).unwrap();
                remote.call("nap", vec![]).unwrap();
            });
        }
    });
    let elapsed = start.elapsed();
    // 8 naps of 100ms: fully serial is 800ms, perfectly parallel is
    // 200ms. Anything under 600ms proves real cross-object overlap.
    assert!(elapsed < Duration::from_millis(600), "no overlap: {elapsed:?}");
    assert!(
        high_water.load(Ordering::SeqCst) >= 2,
        "never saw two objects in flight at once"
    );
}

/// A method stuck inside one object's mailbox must not stall other
/// objects (their calls keep completing) nor the reader thread (posts
/// queued behind the stall are all accepted and run after release, in
/// order).
#[test]
fn stalled_object_blocks_neither_reader_nor_other_objects() {
    let server = TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox {
        workers: 2,
    })
    .unwrap();

    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    let stuck_log = Arc::new(Mutex::new(Vec::<i64>::new()));
    let stuck_sink = Arc::clone(&stuck_log);
    server.objects().register_singleton(
        "Stuck",
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "block" => {
                let _ = gate_rx.lock().recv_timeout(Duration::from_secs(10));
                Ok(Value::Null)
            }
            "mark" => {
                stuck_sink.lock().push(args[0].as_i64().unwrap_or(-1));
                Ok(Value::Null)
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Stuck".into(),
                method: method.into(),
            }),
        })),
    );
    let live_hits = Arc::new(AtomicI64::new(0));
    let live_sink = Arc::clone(&live_hits);
    server.objects().register_singleton(
        "Live",
        Arc::new(FnInvokable(move |method: &str, _args: &[Value]| match method {
            "ping" => Ok(Value::I64(live_sink.fetch_add(1, Ordering::SeqCst) + 1)),
            _ => Err(RemotingError::MethodNotFound {
                object: "Live".into(),
                method: method.into(),
            }),
        })),
    );

    let addr = server.local_addr().to_string();
    let chan: Arc<dyn ClientChannel> =
        Arc::new(TcpClientChannel::connect_pooled(&addr, 1).unwrap());
    let stuck = RemoteObject::new(Arc::clone(&chan), "Stuck");
    let live = RemoteObject::new(Arc::clone(&chan), "Live");

    stuck.post("block", vec![]).unwrap();
    for i in 0..20 {
        stuck.post("mark", vec![Value::I64(i)]).unwrap();
    }

    // All Live traffic flows over the SAME connection the stalled posts
    // used; a blocked reader or a head-of-line-blocked dispatcher would
    // hang these calls.
    let start = Instant::now();
    for i in 1..=10 {
        assert_eq!(live.call("ping", vec![]).unwrap(), Value::I64(i));
    }
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "Live calls stalled behind the Stuck mailbox"
    );

    // The backlog is visible as backpressure while the stall holds.
    let depth = server.dispatch_depth().expect("mailbox mode exposes depth");
    assert!(
        depth.object_depth("Stuck") >= 1,
        "expected a visible backlog on the stalled object"
    );
    assert!(stuck_log.lock().is_empty(), "marks ran past the stalled call");

    gate_tx.send(()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if stuck_log.lock().len() == 20 {
            break;
        }
        assert!(Instant::now() < deadline, "queued marks never drained");
        std::thread::sleep(Duration::from_millis(2));
    }
    let marks = stuck_log.lock().clone();
    assert_eq!(marks, (0..20).collect::<Vec<i64>>(), "release must preserve FIFO");
}

/// Under load with one worker pinned, the scheduler records mailbox-wait
/// samples and steal events into `parc-obs` — the signal the verify
/// script's observability gate checks for.
#[test]
fn obs_records_mailbox_wait_and_steals_under_load() {
    let _guard = parc::obs::test_lock();
    parc::obs::set_enabled(true);
    parc::obs::reset();

    let sched = MailboxScheduler::with_workers(2);
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    // Pin one of the two workers inside a long-running job...
    sched.enqueue("anchor", move || {
        let _ = gate_rx.recv_timeout(Duration::from_secs(10));
    });
    // ...then spread work over many objects; whichever run queue the
    // pinned worker owns, the free worker must steal its share.
    for i in 0..50 {
        sched.enqueue(&format!("obj-{i}"), || {
            std::thread::sleep(Duration::from_micros(200));
        });
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while sched.stats().pending > 1 {
        assert!(Instant::now() < deadline, "load never drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    gate_tx.send(()).unwrap();
    let stats = sched.stats();
    drop(sched);

    assert!(stats.executed >= 50, "executed only {}", stats.executed);
    assert!(stats.stolen > 0, "free worker never stole from the pinned one");
    assert!(
        parc::obs::histogram(parc::obs::kinds::MAILBOX_WAIT).count() > 0,
        "no dispatch.mailbox_wait samples recorded"
    );
    assert!(
        parc::obs::counter(parc::obs::kinds::MAILBOX_STEAL).get() > 0,
        "no dispatch.steal events recorded"
    );

    parc::obs::set_enabled(false);
    parc::obs::reset();
}

/// One-way posts and two-way calls from one connection to one object
/// interleave in program order: the call observes every earlier post.
#[test]
fn oneway_then_call_interleave_in_program_order() {
    let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
    register_recorder(&server, "Tally");
    let addr = server.local_addr().to_string();
    let chan: Arc<dyn ClientChannel> =
        Arc::new(TcpClientChannel::connect_pooled(&addr, 1).unwrap());
    let remote = RemoteObject::new(chan, "Tally");
    for round in 1..=10i64 {
        remote.post("record", vec![Value::I64(0), Value::I64(round)]).unwrap();
        assert_eq!(
            remote.call("count", vec![]).unwrap(),
            Value::I64(round),
            "two-way call overtook an earlier one-way post"
        );
    }
}

/// The pre-mailbox inline baseline still serves mixed traffic and
/// reports no scheduler to observe.
#[test]
fn inline_baseline_serves_and_exposes_no_depth() {
    let server =
        TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Inline).unwrap();
    assert!(server.dispatch_depth().is_none());
    assert!(server.dispatch_stats().is_none());
    register_recorder(&server, "Tally");
    let addr = server.local_addr().to_string();
    let chan: Arc<dyn ClientChannel> =
        Arc::new(TcpClientChannel::connect_pooled(&addr, 1).unwrap());
    let remote = RemoteObject::new(chan, "Tally");
    for round in 1..=10i64 {
        remote.post("record", vec![Value::I64(0), Value::I64(round)]).unwrap();
        assert_eq!(remote.call("count", vec![]).unwrap(), Value::I64(round));
    }
}
