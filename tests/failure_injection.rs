//! Failure-injection integration tests: dead endpoints, dropped servers,
//! lease expiry, oversized frames, poisoned payloads.

use std::sync::Arc;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::inproc::InprocNetwork;
use parc::remoting::tcp::{TcpChannelProvider, TcpServerChannel};
use parc::remoting::{Activator, LeaseManager, RemotingError};
use parc::serial::{BinaryFormatter, Formatter, SerialError, Value};

fn echo() -> Arc<dyn parc::remoting::Invokable> {
    Arc::new(FnInvokable(|_: &str, args: &[Value]| {
        Ok(args.first().cloned().unwrap_or(Value::Null))
    }))
}

#[test]
fn tcp_server_dropped_mid_session_surfaces_as_transport_error() {
    let provider = TcpChannelProvider::new();
    let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
    server.objects().register_singleton("Echo", echo());
    let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
    assert!(proxy.call("echo", vec![Value::I32(1)]).is_ok());
    drop(server); // listener closes, connection threads unwind on EOF
    // The established (cached) connection must start failing; allow a few
    // in-flight successes while the close propagates. (Probing the *port*
    // would be racy — parallel tests may rebind it.)
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match proxy.call("echo", vec![Value::I32(2)]) {
            Err(RemotingError::Transport { .. }) | Err(RemotingError::Timeout) => break,
            Err(other) => panic!("unexpected error class: {other:?}"),
            Ok(_) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "dead server's connection kept answering"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
}

#[test]
fn unregistering_an_object_breaks_existing_proxies_cleanly() {
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("n").unwrap();
    ep.objects().register_singleton("Echo", echo());
    let proxy = Activator::get_object(&net, "inproc://n/Echo").unwrap();
    assert!(proxy.call("echo", vec![]).is_ok());
    assert!(ep.objects().unregister("Echo"));
    match proxy.call("echo", vec![]) {
        Err(RemotingError::ServerFault { detail }) => {
            assert!(detail.contains("Echo"), "{detail}");
        }
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn lease_expiry_collects_objects_and_calls_fail_afterwards() {
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("leased").unwrap();
    ep.objects().register_singleton("Transient", echo());
    ep.objects().register_singleton("Pinned", echo());
    let leases = LeaseManager::new(1_000);
    leases.grant("Transient", 0);

    let transient = Activator::get_object(&net, "inproc://leased/Transient").unwrap();
    let pinned = Activator::get_object(&net, "inproc://leased/Pinned").unwrap();
    assert!(transient.call("m", vec![]).is_ok());

    // Renewal keeps it alive across a sweep...
    leases.renew("Transient", 900);
    assert!(leases.sweep(ep.objects(), 1_500).is_empty());
    assert!(transient.call("m", vec![]).is_ok());

    // ...but once the lease lapses, the sweep collects it.
    assert_eq!(leases.sweep(ep.objects(), 5_000), vec!["Transient"]);
    assert!(transient.call("m", vec![]).is_err());
    assert!(pinned.call("m", vec![]).is_ok(), "unleased objects are immortal");
}

#[test]
fn corrupt_frames_fault_without_killing_the_endpoint() {
    // Send garbage bytes straight through a raw inproc client by abusing a
    // CallMessage whose args decode fine but whose target misbehaves —
    // then verify real garbage at the formatter level errors cleanly too.
    let f = BinaryFormatter::new();
    assert!(matches!(
        f.deserialize(&[0xde, 0xad, 0xbe, 0xef]),
        Err(SerialError::BadMagic { .. })
    ));
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("robust").unwrap();
    ep.objects().register_singleton("Echo", echo());
    let proxy = Activator::get_object(&net, "inproc://robust/Echo").unwrap();
    // Hammer with calls that serialize deep nested structures and verify
    // the endpoint keeps serving.
    let mut nested = Value::I32(1);
    for _ in 0..100 {
        nested = Value::List(vec![nested]);
    }
    for _ in 0..10 {
        assert!(proxy.call("echo", vec![nested.clone()]).is_ok());
    }
    assert!(proxy.call("echo", vec![Value::I32(2)]).is_ok());
}

#[test]
fn scoopp_create_on_dead_class_does_not_wedge_the_node() {
    let mut b = parc::scoopp::ParcRuntime::builder();
    b.nodes(2);
    let rt = b.build().unwrap();
    rt.register_class("Good", echo);
    assert!(rt.create("Missing").is_err());
    // The node's factory still works afterwards.
    let po = rt.create("Good").unwrap();
    assert!(po.call("m", vec![]).is_ok());
}

#[test]
fn mpi_deadlock_surfaces_as_timeout_not_hang() {
    // A receive that can never be matched must time out, not hang the
    // suite: rank 0 waits on a message nobody sends.
    let errs = parc::mpi::World::run(1, |comm| {
        comm.recv_with_timeout(0, 42, std::time::Duration::from_millis(50))
            .expect_err("no sender exists")
    });
    assert!(matches!(errs[0], parc::mpi::MpiError::Timeout { .. }));
}
