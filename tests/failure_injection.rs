//! Failure-injection integration tests: dead endpoints, dropped servers,
//! lease expiry, oversized frames, poisoned payloads — plus the seeded
//! chaos suite (deterministic [`FaultPlan`] schedules driving retry,
//! reconnect, and runtime-failover recovery end to end).
//!
//! Chaos tests build their plans explicitly (`FaultPlan::new`) instead of
//! mutating `PARC_CHAOS`: the test runner is threaded and process
//! environment is shared. `scripts/verify.sh` exercises the env-var path.

use std::sync::Arc;
use std::time::Duration;

use parc::remoting::channel::RemoteObject;
use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::inproc::InprocNetwork;
use parc::remoting::reactor::{ReactorClientChannel, ReactorServerChannel};
use parc::remoting::tcp::{TcpChannelProvider, TcpClientChannel, TcpServerChannel};
use parc::remoting::wellknown::ObjectTable;
use parc::remoting::{
    Activator, ChaosChannel, FaultPlan, FaultSpec, LeaseManager, RemotingError, RetryPolicy,
};
use parc::scoopp::{Farm, GrainConfig, ParcRuntime, Pipeline};
use parc::serial::{BinaryFormatter, Formatter, SerialError, Value};

fn echo() -> Arc<dyn parc::remoting::Invokable> {
    Arc::new(FnInvokable(|_: &str, args: &[Value]| {
        Ok(args.first().cloned().unwrap_or(Value::Null))
    }))
}

#[test]
fn tcp_server_dropped_mid_session_surfaces_as_transport_error() {
    let provider = TcpChannelProvider::new();
    let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
    server.objects().register_singleton("Echo", echo());
    let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
    assert!(proxy.call("echo", vec![Value::I32(1)]).is_ok());
    drop(server); // listener closes, connection threads unwind on EOF
    // The established (cached) connection must start failing; allow a few
    // in-flight successes while the close propagates. (Probing the *port*
    // would be racy — parallel tests may rebind it.)
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        match proxy.call("echo", vec![Value::I32(2)]) {
            Err(RemotingError::Transport { .. }) | Err(RemotingError::Timeout { .. }) => break,
            Err(other) => panic!("unexpected error class: {other:?}"),
            Ok(_) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "dead server's connection kept answering"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

#[test]
fn unregistering_an_object_breaks_existing_proxies_cleanly() {
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("n").unwrap();
    ep.objects().register_singleton("Echo", echo());
    let proxy = Activator::get_object(&net, "inproc://n/Echo").unwrap();
    assert!(proxy.call("echo", vec![]).is_ok());
    assert!(ep.objects().unregister("Echo"));
    match proxy.call("echo", vec![]) {
        Err(RemotingError::ServerFault { detail }) => {
            assert!(detail.contains("Echo"), "{detail}");
        }
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn lease_expiry_collects_objects_and_calls_fail_afterwards() {
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("leased").unwrap();
    ep.objects().register_singleton("Transient", echo());
    ep.objects().register_singleton("Pinned", echo());
    let leases = LeaseManager::new(1_000);
    leases.grant("Transient", 0);

    let transient = Activator::get_object(&net, "inproc://leased/Transient").unwrap();
    let pinned = Activator::get_object(&net, "inproc://leased/Pinned").unwrap();
    assert!(transient.call("m", vec![]).is_ok());

    // Renewal keeps it alive across a sweep...
    leases.renew("Transient", 900);
    assert!(leases.sweep(ep.objects(), 1_500).is_empty());
    assert!(transient.call("m", vec![]).is_ok());

    // ...but once the lease lapses, the sweep collects it.
    assert_eq!(leases.sweep(ep.objects(), 5_000), vec!["Transient"]);
    assert!(transient.call("m", vec![]).is_err());
    assert!(pinned.call("m", vec![]).is_ok(), "unleased objects are immortal");
}

#[test]
fn corrupt_frames_fault_without_killing_the_endpoint() {
    // Send garbage bytes straight through a raw inproc client by abusing a
    // CallMessage whose args decode fine but whose target misbehaves —
    // then verify real garbage at the formatter level errors cleanly too.
    let f = BinaryFormatter::new();
    assert!(matches!(
        f.deserialize(&[0xde, 0xad, 0xbe, 0xef]),
        Err(SerialError::BadMagic { .. })
    ));
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("robust").unwrap();
    ep.objects().register_singleton("Echo", echo());
    let proxy = Activator::get_object(&net, "inproc://robust/Echo").unwrap();
    // Hammer with calls that serialize deep nested structures and verify
    // the endpoint keeps serving.
    let mut nested = Value::I32(1);
    for _ in 0..100 {
        nested = Value::List(vec![nested]);
    }
    for _ in 0..10 {
        assert!(proxy.call("echo", vec![nested.clone()]).is_ok());
    }
    assert!(proxy.call("echo", vec![Value::I32(2)]).is_ok());
}

#[test]
fn scoopp_create_on_dead_class_does_not_wedge_the_node() {
    let mut b = ParcRuntime::builder();
    b.nodes(2);
    let rt = b.build().unwrap();
    rt.register_class("Good", echo);
    assert!(rt.create("Missing").is_err());
    // The node's factory still works afterwards.
    let po = rt.create("Good").unwrap();
    assert!(po.call("m", vec![]).is_ok());
}

#[test]
fn mpi_deadlock_surfaces_as_timeout_not_hang() {
    // A receive that can never be matched must time out, not hang the
    // suite: rank 0 waits on a message nobody sends.
    let errs = parc::mpi::World::run(1, |comm| {
        comm.recv_with_timeout(0, 42, Duration::from_millis(50))
            .expect_err("no sender exists")
    });
    assert!(matches!(errs[0], parc::mpi::MpiError::Timeout { .. }));
}

// ---------------------------------------------------------------------------
// Chaos suite: seeded fault plans
// ---------------------------------------------------------------------------

/// A registry object whose `put(k)` records k exactly once per *effect*
/// (set semantics) and whose `count(k)` reports how many times the raw
/// method body ran for k — separating "effect applied" from "message
/// executed" so the suite can tell exactly-once effects from at-least-once
/// execution.
fn registry_object() -> Arc<dyn parc::remoting::Invokable> {
    let seen: parc_sync::Mutex<std::collections::HashMap<i64, i64>> =
        parc_sync::Mutex::new(std::collections::HashMap::new());
    Arc::new(FnInvokable(move |method: &str, args: &[Value]| {
        let key = args.first().and_then(Value::as_i64).unwrap_or(-1);
        match method {
            "put" => {
                *seen.lock().entry(key).or_insert(0) += 1;
                Ok(Value::Null)
            }
            "count" => Ok(Value::I64(seen.lock().get(&key).copied().unwrap_or(0))),
            "total" => Ok(Value::I64(seen.lock().values().sum())),
            _ => Err(RemotingError::MethodNotFound {
                object: "Registry".into(),
                method: method.into(),
            }),
        }
    }))
}

/// Opens a chaos-wrapped proxy to `object` on `authority`, drawing faults
/// from `plan`, with `attempts` transparent retries for idempotent calls.
fn chaotic_proxy(
    net: &InprocNetwork,
    authority: &str,
    object: &str,
    plan: &Arc<FaultPlan>,
    attempts: u32,
) -> RemoteObject {
    let uri: parc::remoting::ObjectUri =
        format!("inproc://{authority}/{object}").parse().unwrap();
    // open_with_timeout is never env-chaos-wrapped; wrap explicitly so the
    // test owns the plan (and its trace) regardless of PARC_CHAOS.
    let inner = net.open_with_timeout(&uri, Duration::from_secs(5)).unwrap();
    let chan: Arc<dyn parc::remoting::ClientChannel> =
        Arc::new(ChaosChannel::new(inner, Arc::clone(plan)));
    RemoteObject::new(chan, object)
        .with_retry(RetryPolicy::new(attempts, Duration::ZERO, Duration::ZERO))
}

#[test]
fn idempotent_retries_produce_exactly_once_effects_under_drop_chaos() {
    // K clients hammer M objects through one seeded lossy plan. Dropped
    // calls surface as transport errors and call_idempotent retries them;
    // every put must land as an *effect* exactly once even if a retried
    // execution ran more than once server-side.
    const CLIENTS: usize = 4;
    const OBJECTS: usize = 3;
    const PUTS_PER_CLIENT: i64 = 25;
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("chaosnode").unwrap();
    for o in 0..OBJECTS {
        ep.objects().register_singleton(format!("Reg{o}"), registry_object());
    }
    // drop ≈ 20% of messages; plenty of retries so the run always finishes.
    let plan = Arc::new(FaultPlan::new(0xC0FFEE, FaultSpec::parse("drop=0.2")));
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let net = &net;
            let plan = &plan;
            scope.spawn(move || {
                for o in 0..OBJECTS {
                    let proxy =
                        chaotic_proxy(net, "chaosnode", &format!("Reg{o}"), plan, 20);
                    for i in 0..PUTS_PER_CLIENT {
                        let key = (c as i64) * 1_000 + i;
                        proxy.call_idempotent("put", vec![Value::I64(key)]).unwrap();
                    }
                }
            });
        }
    });
    assert!(plan.messages_seen() > (CLIENTS * OBJECTS) as u64 * PUTS_PER_CLIENT as u64 / 2);
    // Exactly-once effects: every key present. (Execution may exceed one
    // per key — a reply lost after the server ran the body re-executes on
    // retry — but the *effect*, keyed idempotently, applies once.)
    for o in 0..OBJECTS {
        let uri: parc::remoting::ObjectUri =
            format!("inproc://chaosnode/Reg{o}").parse().unwrap();
        let chan = net.open_with_timeout(&uri, Duration::from_secs(5)).unwrap();
        let clean = RemoteObject::new(chan, format!("Reg{o}"));
        for c in 0..CLIENTS {
            for i in 0..PUTS_PER_CLIENT {
                let key = (c as i64) * 1_000 + i;
                let count = clean
                    .call("count", vec![Value::I64(key)])
                    .unwrap()
                    .as_i64()
                    .unwrap();
                assert!(count >= 1, "Reg{o} lost put({key}) despite retries");
            }
        }
    }
}

#[test]
fn non_idempotent_calls_are_at_most_once_under_drop_chaos() {
    // Plain `call` never auto-retries: a dropped frame is a surfaced
    // error, not a hidden re-execution, so the server-side execution count
    // for every key stays at most one. (Only drop faults here — dup would
    // deliberately violate at-most-once at the transport.)
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("amonode").unwrap();
    ep.objects().register_singleton("Reg", registry_object());
    let plan = Arc::new(FaultPlan::new(42, FaultSpec::parse("drop=0.3")));
    let proxy = chaotic_proxy(&net, "amonode", "Reg", &plan, 1);
    let mut failed = 0u32;
    for i in 0..100i64 {
        if proxy.call("put", vec![Value::I64(i)]).is_err() {
            failed += 1;
        }
    }
    assert!(failed > 0, "a 30% drop plan over 100 calls never dropping is wrong");
    let uri: parc::remoting::ObjectUri = "inproc://amonode/Reg".parse().unwrap();
    let clean = RemoteObject::new(
        net.open_with_timeout(&uri, Duration::from_secs(5)).unwrap(),
        "Reg",
    );
    for i in 0..100i64 {
        let count =
            clean.call("count", vec![Value::I64(i)]).unwrap().as_i64().unwrap();
        assert!(count <= 1, "put({i}) executed {count} times — at-most-once broken");
    }
}

#[test]
fn same_seed_chaos_runs_inject_identical_traces() {
    // One client, sequential calls: the message-index → fault mapping is a
    // pure function of the seed, so two runs produce identical traces.
    let run = |seed: u64| -> (String, Vec<bool>) {
        let net = InprocNetwork::new();
        let ep = net.create_endpoint("det").unwrap();
        ep.objects().register_singleton("Echo", echo());
        let plan =
            Arc::new(FaultPlan::new(seed, FaultSpec::parse("drop=0.25,delay=0.1:1,kill@40")));
        let proxy = chaotic_proxy(&net, "det", "Echo", &plan, 1);
        let outcomes: Vec<bool> =
            (0..50).map(|i| proxy.call("echo", vec![Value::I32(i)]).is_ok()).collect();
        (plan.trace_string(), outcomes)
    };
    let (trace_a, outcomes_a) = run(7);
    let (trace_b, outcomes_b) = run(7);
    assert!(!trace_a.is_empty(), "this spec always injects something in 50 messages");
    assert_eq!(trace_a, trace_b, "same seed must inject the same schedule");
    assert_eq!(outcomes_a, outcomes_b, "same schedule must produce the same outcomes");
    let (trace_c, _) = run(8);
    assert_ne!(trace_a, trace_c, "different seeds should diverge (not a constant plan)");
}

#[test]
fn tcp_reconnect_recovers_idempotent_calls_under_mailbox_dispatch() {
    // Kill every pooled connection under a mailbox-dispatch server; the
    // retrying idempotent call revives the pool transparently, with fresh
    // correlation state.
    let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
    server.objects().register_singleton("Reg", registry_object());
    let addr = server.uri_for("Reg");
    let addr = addr.strip_prefix("tcp://").unwrap().split('/').next().unwrap().to_string();
    let raw = Arc::new(
        TcpClientChannel::connect_pooled_with_timeout(&addr, 2, Duration::from_secs(5)).unwrap(),
    );
    let channel: Arc<dyn parc::remoting::ClientChannel> = Arc::clone(&raw) as _;
    let proxy = RemoteObject::new(channel, "Reg")
        .with_retry(RetryPolicy::new(5, Duration::ZERO, Duration::ZERO));
    proxy.call_idempotent("put", vec![Value::I64(1)]).unwrap();
    // Sever all sockets behind the proxy's back.
    raw.break_connections();
    // The next idempotent call reconnects and lands.
    proxy.call_idempotent("put", vec![Value::I64(2)]).unwrap();
    assert_eq!(
        proxy.call_idempotent("total", vec![]).unwrap(),
        Value::I64(2),
        "both puts survived the severed connections"
    );
}

// ---------------------------------------------------------------------------
// Chaos suite: reactor transport parity
// ---------------------------------------------------------------------------
//
// The reactor transport must be *chaos-indistinguishable* from the mux
// baseline: the same seeded plan over the same call sequence injects the
// same schedule, produces the same outcomes, and leaves the same
// server-side execution counts. Any divergence means the reactor changed
// observable semantics, not just mechanics.

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WireTransport {
    Mux,
    Reactor,
}

enum WireServer {
    Threaded(TcpServerChannel),
    Reactor(ReactorServerChannel),
}

impl WireServer {
    fn bind(transport: WireTransport) -> WireServer {
        match transport {
            WireTransport::Mux => {
                WireServer::Threaded(TcpServerChannel::bind("127.0.0.1:0").unwrap())
            }
            WireTransport::Reactor => {
                WireServer::Reactor(ReactorServerChannel::bind("127.0.0.1:0").unwrap())
            }
        }
    }

    fn objects(&self) -> &ObjectTable {
        match self {
            WireServer::Threaded(s) => s.objects(),
            WireServer::Reactor(s) => s.objects(),
        }
    }

    fn addr(&self) -> String {
        match self {
            WireServer::Threaded(s) => s.local_addr().to_string(),
            WireServer::Reactor(s) => s.local_addr().to_string(),
        }
    }
}

fn wire_client(transport: WireTransport, addr: &str) -> Arc<dyn parc::remoting::ClientChannel> {
    match transport {
        WireTransport::Mux => Arc::new(
            TcpClientChannel::connect_pooled_with_timeout(addr, 1, Duration::from_secs(5))
                .unwrap(),
        ),
        WireTransport::Reactor => Arc::new(
            ReactorClientChannel::connect_with_timeout(addr, Duration::from_secs(5)).unwrap(),
        ),
    }
}

#[test]
fn same_seed_chaos_schedules_match_between_mux_and_reactor_tcp() {
    // Sequential calls through one seeded drop/delay/kill plan: the
    // injected schedule is a pure function of the seed, so mux and
    // reactor must agree message for message — including everything
    // after the kill permanently poisons the wrapper.
    let run = |transport: WireTransport, seed: u64| -> (String, Vec<bool>) {
        let server = WireServer::bind(transport);
        server.objects().register_singleton("Echo", echo());
        let plan =
            Arc::new(FaultPlan::new(seed, FaultSpec::parse("drop=0.25,delay=0.05:1,kill@40")));
        let chan: Arc<dyn parc::remoting::ClientChannel> =
            Arc::new(ChaosChannel::new(wire_client(transport, &server.addr()), Arc::clone(&plan)));
        let proxy = RemoteObject::new(chan, "Echo");
        let outcomes: Vec<bool> =
            (0..50).map(|i| proxy.call("echo", vec![Value::I32(i)]).is_ok()).collect();
        (plan.trace_string(), outcomes)
    };
    let (trace_mux, outcomes_mux) = run(WireTransport::Mux, 7);
    let (trace_reactor, outcomes_reactor) = run(WireTransport::Reactor, 7);
    assert!(!trace_mux.is_empty(), "this spec always injects something in 50 messages");
    assert_eq!(trace_mux, trace_reactor, "same seed must inject the same schedule");
    assert_eq!(
        outcomes_mux, outcomes_reactor,
        "same schedule must produce the same outcomes on both transports"
    );
    let (trace_again, outcomes_again) = run(WireTransport::Reactor, 7);
    assert_eq!(trace_reactor, trace_again, "reactor chaos runs must be reproducible");
    assert_eq!(outcomes_reactor, outcomes_again);
    let (trace_other, _) = run(WireTransport::Reactor, 8);
    assert_ne!(trace_reactor, trace_other, "different seeds should diverge");
}

#[test]
fn chaos_drop_effects_are_identical_across_mux_and_reactor_tcp() {
    // Idempotent retries under a 20% drop plan: drops suppress the send
    // entirely, so the set of attempts that reach the server is a pure
    // function of the seed. Exactly-once effects AND identical per-key
    // execution counts on both transports.
    let run = |transport: WireTransport| -> Vec<i64> {
        let server = WireServer::bind(transport);
        server.objects().register_singleton("Reg", registry_object());
        let plan = Arc::new(FaultPlan::new(0xBEEF, FaultSpec::parse("drop=0.2")));
        let chan: Arc<dyn parc::remoting::ClientChannel> =
            Arc::new(ChaosChannel::new(wire_client(transport, &server.addr()), Arc::clone(&plan)));
        let proxy = RemoteObject::new(chan, "Reg")
            .with_retry(RetryPolicy::new(20, Duration::ZERO, Duration::ZERO));
        for i in 0..40i64 {
            proxy.call_idempotent("put", vec![Value::I64(i)]).unwrap();
        }
        let clean = RemoteObject::new(wire_client(transport, &server.addr()), "Reg");
        (0..40i64)
            .map(|i| clean.call("count", vec![Value::I64(i)]).unwrap().as_i64().unwrap())
            .collect()
    };
    let counts_mux = run(WireTransport::Mux);
    let counts_reactor = run(WireTransport::Reactor);
    assert!(
        counts_mux.iter().all(|&c| c >= 1),
        "every put must land as an effect despite drops"
    );
    assert_eq!(
        counts_mux, counts_reactor,
        "same seed must leave identical execution counts on both transports"
    );
}

// ---------------------------------------------------------------------------
// Chaos suite: runtime failover end to end
// ---------------------------------------------------------------------------

/// Registers the sieve stage class: each stage is assigned one fixed prime
/// (`set_prime`) and forwards candidates not divisible by it; a candidate
/// surviving every filter lands in the shared `found` sink.
fn sieve_class(rt: &ParcRuntime, found: Arc<parc_sync::Mutex<Vec<i64>>>) {
    let net: InprocNetwork = rt.network().clone();
    rt.register_class("PrimeFilter", move || {
        let prime: parc_sync::Mutex<Option<i64>> = parc_sync::Mutex::new(None);
        let next: parc_sync::Mutex<Option<RemoteObject>> = parc_sync::Mutex::new(None);
        let net = net.clone();
        let found = Arc::clone(&found);
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "connect" => {
                let uri = args[0].as_str().unwrap_or_default();
                *next.lock() = Some(
                    Activator::get_object(&net, uri)
                        .map_err(|e| RemotingError::Transport { detail: e.to_string() })?,
                );
                Ok(Value::Null)
            }
            "set_prime" => {
                *prime.lock() = args[0].as_i64();
                Ok(Value::Null)
            }
            "candidate" => {
                let n = args[0].as_i64().unwrap_or(0);
                let divisible = prime.lock().is_some_and(|p| p != 0 && n % p == 0);
                if !divisible {
                    match next.lock().as_ref() {
                        Some(next) => {
                            next.post("candidate", vec![Value::I64(n)])?;
                        }
                        None => found.lock().push(n),
                    }
                }
                Ok(Value::Null)
            }
            "drain" => Ok(Value::Null), // sync no-op: per-stage barrier
            _ => Err(RemotingError::MethodNotFound {
                object: "PrimeFilter".into(),
                method: method.into(),
            }),
        }))
    });
}

fn run_sieve(pipeline: &Pipeline, candidates: std::ops::RangeInclusive<i64>) {
    for n in candidates {
        pipeline.feed("candidate", vec![Value::I64(n)]).unwrap();
    }
    pipeline.flush().unwrap();
    for stage in pipeline.stages() {
        stage.call("drain", vec![]).unwrap();
    }
}

fn primes_up_to(n: i64) -> Vec<i64> {
    (2..=n).filter(|&x| (2..x).all(|d| x % d != 0)).collect()
}

#[test]
fn sieve_keeps_producing_correct_primes_after_killing_a_node() {
    // 4 nodes, 3 filter stages (primes 2,3,5) on nodes 0..=2 — node 3
    // hosts no stage. Killing node 3 mid-run exercises detector + placement
    // drain without touching stage state: the primes must stay correct.
    let mut b = ParcRuntime::builder();
    b.nodes(4).grain(GrainConfig { aggregation_factor: 4, ..GrainConfig::default() });
    let rt = b.build().unwrap();
    let found = Arc::new(parc_sync::Mutex::new(Vec::new()));
    sieve_class(&rt, Arc::clone(&found));
    let pipeline = Pipeline::new(&rt, "PrimeFilter", 3, "connect").unwrap();
    for (stage, p) in pipeline.stages().iter().zip([2i64, 3, 5]) {
        stage.call("set_prime", vec![Value::I64(p)]).unwrap();
    }
    // First half of the run, then the kill, then the rest. Filters 2,3,5
    // leave exactly the primes in (5, 49) — every composite below 7² has a
    // factor in {2,3,5}.
    run_sieve(&pipeline, 6..=24);
    assert!(rt.kill_node(3), "node 3 was alive");
    run_sieve(&pipeline, 25..=48);
    let mut got = found.lock().clone();
    got.sort_unstable();
    let want: Vec<i64> = primes_up_to(48).into_iter().filter(|&p| p > 5).collect();
    assert_eq!(got, want, "sieve output wrong after mid-run node kill");

    // Now kill a stage-hosting node. Stage state (its prime) dies with it,
    // so recovery is by reconstruction: rebuild the pipeline on the
    // survivors and verify the sieve is correct again.
    assert!(rt.kill_node(0), "node 0 was alive");
    found.lock().clear();
    let rebuilt = Pipeline::new(&rt, "PrimeFilter", 3, "connect").unwrap();
    for (stage, p) in rebuilt.stages().iter().zip([2i64, 3, 5]) {
        stage.call("set_prime", vec![Value::I64(p)]).unwrap();
        assert_ne!(stage.node(), Some(0), "rebuilt stages avoid the dead node");
    }
    run_sieve(&rebuilt, 6..=48);
    let mut got = found.lock().clone();
    got.sort_unstable();
    assert_eq!(got, want, "rebuilt sieve wrong after killing a stage node");
}

#[test]
fn farm_map_completes_while_a_node_is_killed_mid_run() {
    // Stateless workers + transparent failover: killing one of three
    // nodes *while* the map runs must not lose or corrupt any result.
    let mut b = ParcRuntime::builder();
    b.nodes(3);
    let rt = Arc::new(b.build().unwrap());
    rt.register_class("Squarer", || {
        Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
            "square" => {
                let x = args[0].as_i64().unwrap_or(0);
                Ok(Value::I64(x * x))
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Squarer".into(),
                method: method.into(),
            }),
        }))
    });
    let farm = Farm::new(&rt, "Squarer", 6).unwrap();
    let killer = {
        let rt = Arc::clone(&rt);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            rt.kill_node(1)
        })
    };
    let items: Vec<Vec<Value>> = (0..500).map(|i| vec![Value::I64(i)]).collect();
    let out = farm.map("square", items).unwrap();
    assert!(killer.join().unwrap(), "the killer thread took node 1 down");
    let squares: Vec<i64> = out.iter().map(|v| v.as_i64().unwrap()).collect();
    assert_eq!(squares, (0..500).map(|i| i * i).collect::<Vec<i64>>());
    assert!(
        farm.workers().iter().all(|w| w.node() != Some(1)),
        "no worker may still claim the dead node"
    );
}

// ---------------------------------------------------------------------------
// Live migration under failure injection
// ---------------------------------------------------------------------------

/// Registers a migratable cell whose `__snapshot` is deliberately slow, so
/// a concurrent kill can land while a migration is mid-flight.
fn register_slow_snap(rt: &ParcRuntime, snapshot_delay: Duration) {
    rt.register_class("SlowSnap", move || {
        let v = std::sync::atomic::AtomicI64::new(0);
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "set" | "__restore" => {
                v.store(
                    args.first().and_then(Value::as_i64).unwrap_or(0),
                    std::sync::atomic::Ordering::SeqCst,
                );
                Ok(Value::Null)
            }
            "__snapshot" => {
                std::thread::sleep(snapshot_delay);
                Ok(Value::I64(v.load(std::sync::atomic::Ordering::SeqCst)))
            }
            "get" => Ok(Value::I64(v.load(std::sync::atomic::Ordering::SeqCst))),
            _ => Err(RemotingError::MethodNotFound {
                object: "SlowSnap".into(),
                method: method.into(),
            }),
        }))
    });
}

#[test]
fn source_node_killed_mid_migration_completes_or_aborts_cleanly() {
    // The source node dies while the object's (slow) snapshot is being
    // taken. Two outcomes are legal, and both must leave the system
    // consistent: the migration wins the race (object serves at the
    // destination, state intact) or it loses (the move errors, and the
    // proxy recovers through the ordinary failover path). What is *not*
    // legal: a hang, a half-registered copy, or a proxy that stays broken.
    let rt = Arc::new(ParcRuntime::builder().nodes(2).build().unwrap());
    register_slow_snap(&rt, Duration::from_millis(60));
    let po = rt.create_on("SlowSnap", 0).unwrap();
    po.call("set", vec![Value::I64(99)]).unwrap();
    let killer = {
        let rt = Arc::clone(&rt);
        std::thread::spawn(move || {
            // Land inside the 60 ms snapshot window.
            std::thread::sleep(Duration::from_millis(20));
            rt.kill_node(0)
        })
    };
    let outcome = rt.migrate(&po, 1);
    assert!(killer.join().unwrap(), "killer thread took node 0 down");
    match outcome {
        Ok(new_uri) => {
            // The move beat the kill: the copy at node 1 carries the state
            // and the old address is irrelevant (its node is gone).
            assert_eq!(po.node(), Some(1));
            assert_eq!(po.call("get", vec![]).unwrap(), Value::I64(99));
            assert!(new_uri.contains("node1"), "{new_uri}");
        }
        Err(_) => {
            // Clean abort from the caller's view: the proxy recovers via
            // failover on its next call (state resets — the documented
            // failover contract). The dying node's worker may still
            // finish the move server-side after the client gave up; that
            // stray copy is unreachable garbage, not a correctness issue,
            // so no assertion on the destination's load here.
            po.call("set", vec![Value::I64(1)]).unwrap();
            assert_eq!(po.node(), Some(1), "proxy failed over to the survivor");
            assert_eq!(po.call("get", vec![]).unwrap(), Value::I64(1));
        }
    }
    // Either way the cluster still creates and serves objects.
    let fresh = rt.create("SlowSnap").unwrap();
    fresh.call("set", vec![Value::I64(5)]).unwrap();
    assert_eq!(fresh.call("get", vec![]).unwrap(), Value::I64(5));
}

#[test]
fn destination_killed_mid_migration_leaves_source_serving() {
    // Symmetric case: the *destination* dies mid-move. The migration must
    // abort and the object must keep serving at the source with its state.
    let rt = Arc::new(ParcRuntime::builder().nodes(2).build().unwrap());
    register_slow_snap(&rt, Duration::from_millis(60));
    let po = rt.create_on("SlowSnap", 0).unwrap();
    po.call("set", vec![Value::I64(7)]).unwrap();
    let killer = {
        let rt = Arc::clone(&rt);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            rt.kill_node(1)
        })
    };
    let outcome = rt.migrate(&po, 1);
    assert!(killer.join().unwrap());
    // The kill may land before validation (dead-destination error) or
    // mid-protocol (remote create fails); both abort.
    assert!(outcome.is_err(), "migration to a dying node must not report success");
    assert_eq!(po.node(), Some(0), "object still lives at the source");
    assert_eq!(po.call("get", vec![]).unwrap(), Value::I64(7), "state intact");
}

#[test]
fn same_seed_chaos_injects_identical_traces_through_a_forwarder() {
    // The forwarding hop is an ordinary channel, so the seeded chaos layer
    // composes with it: same seed, same fault schedule, same per-call
    // outcomes — migration forwarding stays deterministic under test.
    use parc::remoting::Forwarder;
    let run = |seed: u64| -> (String, Vec<bool>) {
        let net = InprocNetwork::new();
        let a = net.create_endpoint("fwd-old").unwrap();
        let b = net.create_endpoint("fwd-new").unwrap();
        b.objects().register_singleton("real", echo());
        let inner = net
            .open_with_timeout(&"inproc://fwd-new/real".parse().unwrap(), Duration::from_secs(5))
            .unwrap();
        let plan = Arc::new(FaultPlan::new(seed, FaultSpec::parse("drop=0.25,delay=0.1:1")));
        let chaotic: Arc<dyn parc::remoting::ClientChannel> =
            Arc::new(ChaosChannel::new(inner, Arc::clone(&plan)));
        a.objects().register_singleton(
            "old",
            Arc::new(Forwarder::new(
                RemoteObject::new(chaotic, "real"),
                "inproc://fwd-new/real",
            )),
        );
        let proxy = RemoteObject::new(
            net.open_with_timeout(
                &"inproc://fwd-old/old".parse().unwrap(),
                Duration::from_secs(5),
            )
            .unwrap(),
            "old",
        );
        let outcomes: Vec<bool> =
            (0..50).map(|i| proxy.call("echo", vec![Value::I32(i)]).is_ok()).collect();
        (plan.trace_string(), outcomes)
    };
    let (trace_a, outcomes_a) = run(11);
    let (trace_b, outcomes_b) = run(11);
    assert!(!trace_a.is_empty(), "this spec always injects within 50 relayed calls");
    assert_eq!(trace_a, trace_b, "same seed must inject the same schedule");
    assert_eq!(outcomes_a, outcomes_b, "same schedule, same forwarded outcomes");
    let (trace_c, _) = run(12);
    assert_ne!(trace_a, trace_c, "different seeds must diverge");
}
