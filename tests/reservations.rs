//! Multi-object reservation integration suite: deadlock freedom under
//! adversarial acquisition orders, conservation invariants under seeded
//! chaos, deterministic same-seed trace replay, lease-based recovery
//! when holders die, migration interaction (completed-then-forwarded,
//! never split), and the dropped-guard-during-failover regression.
//!
//! Chaos tests build their [`FaultPlan`]s explicitly (one per client)
//! instead of mutating `PARC_CHAOS`: the test runner is threaded and the
//! process environment is shared. Per-client plans also make the traces
//! deterministic regardless of thread interleaving — each client's fault
//! schedule depends only on its own message count. `scripts/verify.sh`
//! gate 11 exercises the env-var path end to end.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parc::remoting::channel::{ChannelProvider, RemoteObject};
use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::inproc::InprocNetwork;
use parc::remoting::{
    ChaosChannel, ClaimTable, FaultPlan, FaultSpec, Invokable, RemotingError,
    CLAIM_METHOD, RELEASE_METHOD,
};
use parc::scoopp::{ParcRuntime, Po};
use parc::serial::Value;
use parc_testkit::Config;

/// A registered "Cell" class: an i64 the holder can `add` to and `get`.
fn cell_runtime(nodes: usize, claim_ttl: Duration) -> ParcRuntime {
    let rt = ParcRuntime::builder()
        .nodes(nodes)
        .claim_lease_ttl(claim_ttl)
        .build()
        .expect("booting runtime");
    rt.register_class("Cell", || {
        let v = parc_sync::Mutex::new(0i64);
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "add" => {
                let mut v = v.lock();
                *v += args.first().and_then(Value::as_i64).unwrap_or(0);
                Ok(Value::I64(*v))
            }
            "get" => Ok(Value::I64(*v.lock())),
            // State capture, so migration carries the count instead of
            // resetting it (see `tests/migration.rs` for the contract).
            "__snapshot" => Ok(Value::I64(*v.lock())),
            "__restore" => {
                *v.lock() = args.first().and_then(Value::as_i64).unwrap_or(0);
                Ok(Value::Null)
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Cell".into(),
                method: method.into(),
            }),
        }))
    });
    rt
}

// ---------------------------------------------------------------------------
// Deadlock freedom
// ---------------------------------------------------------------------------

/// K threads reserve overlapping multi-object sets in adversarial
/// (generated) orders, concurrently, for several rounds. Canonical-order
/// acquisition imposes a total order on resources, so no schedule can
/// produce a wait cycle: every run must complete inside the wall bound.
#[test]
fn overlapping_reservations_in_adversarial_orders_never_deadlock() {
    const THREADS: usize = 6;
    const OBJECTS: usize = 5;
    const ROUNDS: usize = 3;
    Config::cases(4).check(
        |src| {
            // Per thread, per round: a subset of object indices in an
            // arbitrary (possibly duplicated, unsorted) order.
            (0..THREADS)
                .map(|_| {
                    (0..ROUNDS)
                        .map(|_| src.vec_of(2..5, |s| s.usize_in(0..OBJECTS)))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        },
        |schedules| {
            let rt = cell_runtime(2, Duration::from_secs(2));
            let uris: Vec<String> = (0..OBJECTS)
                .map(|i| {
                    rt.create_on("Cell", i % 2).expect("creating cell").uri().expect("remote uri")
                })
                .collect();
            let started = Instant::now();
            std::thread::scope(|scope| {
                for rounds in schedules.iter() {
                    let rt = &rt;
                    let uris = &uris;
                    scope.spawn(move || {
                        for subset in rounds {
                            let picked: Vec<&str> =
                                subset.iter().map(|&i| uris[i].as_str()).collect();
                            let res = rt.reserve(&picked).expect("reserve must not fail");
                            for uri in res.uris() {
                                res.call(uri, "add", vec![Value::I64(1)])
                                    .expect("holder call under reservation");
                            }
                            res.release().expect("release");
                        }
                    });
                }
            });
            assert!(
                started.elapsed() < Duration::from_secs(30),
                "reservation storm took {:?} — something serialized on a lease timeout",
                started.elapsed()
            );
        },
    );
}

// ---------------------------------------------------------------------------
// Conservation under chaos + deterministic replay
// ---------------------------------------------------------------------------

/// A bank account with idempotent ops: `apply(op_id, delta)` is deduped
/// by op id so chaos-driven retries and duplicate deliveries count once.
fn account() -> Arc<dyn Invokable> {
    let state = parc_sync::Mutex::new((0i64, HashSet::<String>::new()));
    Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
        "apply" => {
            let op =
                args.first().and_then(Value::as_str).unwrap_or_default().to_string();
            let delta = args.get(1).and_then(Value::as_i64).unwrap_or(0);
            let mut s = state.lock();
            if s.1.insert(op) {
                s.0 += delta;
            }
            Ok(Value::I64(s.0))
        }
        "get" => Ok(Value::I64(state.lock().0)),
        _ => Err(RemotingError::MethodNotFound {
            object: "Account".into(),
            method: method.into(),
        }),
    }))
}

/// Retries `f` while it fails with retryable transport errors, bounding
/// the attempts so a bug hangs the assertion, not the suite.
fn chaos_retry<T>(what: &str, mut f: impl FnMut() -> Result<T, RemotingError>) -> T {
    for _ in 0..400 {
        match f() {
            Ok(v) => return v,
            Err(e) if e.is_retryable() => continue,
            Err(e) => panic!("{what}: non-retryable failure: {e}"),
        }
    }
    panic!("{what}: still failing after 400 attempts");
}

/// One full chaos scenario: K clients transfer units between M gated
/// accounts through claim/release, each behind its own seeded
/// [`ChaosChannel`] (drops, delays, one mid-run connection kill).
/// Returns each client's fault-trace string and the final balances.
fn chaos_transfer_scenario(seeds: &[u64]) -> (Vec<String>, Vec<i64>) {
    const ACCOUNTS: usize = 4;
    const TRANSFERS: usize = 12;
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("bank").expect("bank endpoint");
    let claims = Arc::new(ClaimTable::with_ttl(Duration::from_secs(5)));
    let names: Vec<String> = (0..ACCOUNTS).map(|i| format!("acct{i}")).collect();
    for name in &names {
        parc::remoting::register_claimable(ep.objects(), name, account(), &claims);
    }

    let plans: Vec<Arc<FaultPlan>> = seeds
        .iter()
        .map(|&seed| {
            Arc::new(FaultPlan::new(seed, FaultSpec::parse("drop=0.12,delay=0.15:1,kill@23")))
        })
        .collect();

    std::thread::scope(|scope| {
        for (client, plan) in plans.iter().enumerate() {
            let net = net.clone();
            let names = &names;
            scope.spawn(move || {
                let uri: parc::remoting::ObjectUri =
                    "inproc://bank/acct0".parse().expect("bank uri");
                // The chaos wrapper is rebuilt after a kill (a fresh
                // connection to the same plan — the plan's message index
                // keeps advancing, so the schedule stays one stream).
                let open = || {
                    Arc::new(ChaosChannel::new(
                        net.open(&uri).expect("open bank channel"),
                        Arc::clone(plan),
                    ))
                };
                let mut chan = open();
                for k in 0..TRANSFERS {
                    let from = (client + k) % names.len();
                    let to = (client + k + 1 + k % (names.len() - 1)) % names.len();
                    if from == to {
                        continue;
                    }
                    let claim_id = format!("c{client}-{k}");
                    let mut pair = vec![names[from].clone(), names[to].clone()];
                    pair.sort();
                    // Acquire in canonical order; every step retries
                    // through chaos (claims and releases are idempotent,
                    // applies are deduped by op id).
                    let mut aliases = Vec::new();
                    for obj in &pair {
                        let alias = chaos_retry("claim", || {
                            let gate = RemoteObject::new(chan.clone(), obj.clone());
                            match gate
                                .call(CLAIM_METHOD, vec![Value::Str(claim_id.clone())])
                            {
                                Ok(v) => Ok(v.as_str().expect("alias").to_string()),
                                Err(e) => {
                                    chan = open();
                                    Err(e)
                                }
                            }
                        });
                        aliases.push(alias);
                    }
                    let amount = 1 + (k as i64 % 3);
                    for (leg, (obj, alias)) in pair.iter().zip(&aliases).enumerate() {
                        let delta = if *obj == names[from] { -amount } else { amount };
                        let op = format!("{claim_id}-leg{leg}");
                        chaos_retry("apply", || {
                            let holder = RemoteObject::new(chan.clone(), alias.clone());
                            holder
                                .call(
                                    "apply",
                                    vec![Value::Str(op.clone()), Value::I64(delta)],
                                )
                                .map_err(|e| {
                                    chan = open();
                                    e
                                })
                        });
                    }
                    for alias in aliases.iter().rev() {
                        chaos_retry("release", || {
                            let holder = RemoteObject::new(chan.clone(), alias.clone());
                            holder.call(RELEASE_METHOD, vec![]).map_err(|e| {
                                chan = open();
                                e
                            })
                        });
                    }
                }
            });
        }
    });

    let balances: Vec<i64> = names
        .iter()
        .map(|name| {
            let proxy = RemoteObject::new(
                net.open(&"inproc://bank/acct0".parse().expect("uri")).expect("open"),
                name.clone(),
            );
            proxy.call("get", vec![]).expect("reading balance").as_i64().expect("i64")
        })
        .collect();
    let traces = plans.iter().map(|p| p.trace_string()).collect();
    (traces, balances)
}

/// Units are conserved across every chaos schedule (drops, delays, a
/// mid-run kill per client), and the same seeds replay the identical
/// fault trace and final state.
#[test]
fn chaos_transfers_conserve_units_and_replay_identically() {
    let seeds = [0xA11CE, 0xB0B, 0xC0FFEE, 0xD00D];
    let (traces_a, balances_a) = chaos_transfer_scenario(&seeds);
    assert_eq!(
        balances_a.iter().sum::<i64>(),
        0,
        "transfers created or destroyed units: {balances_a:?}"
    );
    assert!(
        traces_a.iter().any(|t| t.contains("kill")),
        "the chaos schedule never killed a connection — spec regressed: {traces_a:?}"
    );
    let (traces_b, balances_b) = chaos_transfer_scenario(&seeds);
    assert_eq!(traces_a, traces_b, "same seeds must replay the identical fault trace");
    assert_eq!(balances_a, balances_b, "same seeds must replay the identical final state");
}

// ---------------------------------------------------------------------------
// Lease-based recovery
// ---------------------------------------------------------------------------

/// A holder that vanishes without releasing (leaked guard — the crash
/// stand-in) stops renewing; the lease lapses and a parked foreign call
/// proceeds. The mailbox slot is never wedged.
#[test]
fn leaked_reservation_is_reclaimed_at_lease_expiry() {
    let ttl = Duration::from_millis(150);
    let rt = cell_runtime(1, ttl);
    let po = rt.create_on("Cell", 0).expect("cell");
    let uri = po.uri().expect("uri");
    let res = rt.reserve(&[&uri]).expect("reserve");
    res.call(&uri, "add", vec![Value::I64(7)]).expect("holder call");
    // The crash: the guard is never dropped, no release is ever sent.
    std::mem::forget(res);
    let started = Instant::now();
    let seen = po.call("get", vec![]).expect("foreign call after lease expiry");
    assert_eq!(seen, Value::I64(7));
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(40),
        "foreign call ran in {waited:?} — it never parked behind the claim"
    );
    assert!(
        waited < Duration::from_secs(5),
        "reclaim took {waited:?} — lease expiry did not free the slot"
    );
    // The slot is genuinely free: a fresh reservation is granted.
    rt.reserve(&[&uri]).expect("re-reserve after reclaim").release().expect("release");
}

/// No claim outlives its lease: a holder that stalls past the TTL is
/// fenced — its next call fails with `LeaseExpired` instead of touching
/// an object someone else may now hold.
#[test]
fn stalled_holder_is_fenced_after_ttl() {
    let rt = cell_runtime(1, Duration::from_millis(120));
    let po = rt.create_on("Cell", 0).expect("cell");
    let uri = po.uri().expect("uri");
    let res = rt.reserve(&[&uri]).expect("reserve");
    std::thread::sleep(Duration::from_millis(400));
    match res.call(&uri, "add", vec![Value::I64(1)]) {
        Err(parc::scoopp::ParcError::Remoting(RemotingError::LeaseExpired { .. }))
        | Err(parc::scoopp::ParcError::Remoting(RemotingError::ServerFault { .. })) => {}
        other => panic!("stalled holder's call must be fenced, got {other:?}"),
    }
    assert_eq!(po.call("get", vec![]).expect("object reclaimed"), Value::I64(0));
}

// ---------------------------------------------------------------------------
// Migration interaction
// ---------------------------------------------------------------------------

/// `__migrate` on a claimed object parks behind the reservation like any
/// foreign call: the move happens after release, never splitting the
/// compound operation across two homes.
#[test]
fn migration_waits_for_release_and_never_splits_a_reservation() {
    let rt = Arc::new(cell_runtime(2, Duration::from_secs(3)));
    let po = rt.create_on("Cell", 0).expect("cell");
    let uri = po.uri().expect("uri");
    let res = rt.reserve(&[&uri]).expect("reserve");
    res.call(&uri, "add", vec![Value::I64(1)]).expect("first leg");

    let migrated = Arc::new(AtomicUsize::new(0));
    let mover = std::thread::spawn({
        let rt = Arc::clone(&rt);
        let uri = uri.clone();
        let migrated = Arc::clone(&migrated);
        move || {
            let new_uri = rt.migrate_uri(&uri, 1).expect("migration after release");
            migrated.store(1, Ordering::SeqCst);
            new_uri
        }
    });
    // The move is parked: the holder finishes its compound op unsplit.
    std::thread::sleep(Duration::from_millis(80));
    assert_eq!(migrated.load(Ordering::SeqCst), 0, "migration ran under the claim");
    res.call(&uri, "add", vec![Value::I64(1)]).expect("second leg, same home");
    res.release().expect("release");

    let new_uri = mover.join().expect("mover thread");
    assert!(new_uri.contains("node1"), "object did not move: {new_uri}");
    let moved = rt.proxy_from_uri(&new_uri).expect("proxy at new home");
    assert_eq!(moved.call("get", vec![]).expect("call at new home"), Value::I64(2));
}

/// A claim addressed to an object's *old* home after migration follows
/// the forwarder: the grant is issued by the destination gate and the
/// alias lives there — the reservation works through the moved address.
#[test]
fn claims_follow_forwarders_to_the_new_home() {
    let rt = cell_runtime(2, Duration::from_secs(3));
    let po = rt.create_on("Cell", 0).expect("cell");
    let old_uri = po.uri().expect("uri");
    po.call("add", vec![Value::I64(5)]).expect("seed state");
    rt.migrate_uri(&old_uri, 1).expect("migration");

    let res = rt.reserve(&[&old_uri]).expect("reserve through forwarder");
    assert_eq!(
        res.call(&old_uri, "get", vec![]).expect("holder call at new home"),
        Value::I64(5),
        "claim did not reach the migrated state"
    );
    res.release().expect("release");
}

// ---------------------------------------------------------------------------
// Regression: dropped guard during failover
// ---------------------------------------------------------------------------

/// A `Reservation` dropped while its node is mid-failover must not hang
/// (the release fails fast on the stopped endpoint) and must not wedge
/// anything: after the lease would have lapsed, the proxy serves new
/// calls via failover re-creation, and surviving objects released
/// normally.
#[test]
fn dropped_guard_on_a_killed_node_does_not_wedge() {
    let ttl = Duration::from_millis(150);
    let rt = cell_runtime(2, ttl);
    let on_dead = rt.create_on("Cell", 0).expect("cell on node0");
    let on_live = rt.create_on("Cell", 1).expect("cell on node1");
    let (dead_uri, live_uri) = (on_dead.uri().expect("uri"), on_live.uri().expect("uri"));

    let res = rt.reserve(&[&dead_uri, &live_uri]).expect("reserve across nodes");
    res.call(&dead_uri, "add", vec![Value::I64(1)]).expect("call before the kill");
    assert!(rt.kill_node(0), "node0 must die");

    let started = Instant::now();
    drop(res);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "dropping the guard hung for {:?} against the dead node",
        started.elapsed()
    );

    // The survivor's claim was released by the drop: served immediately.
    assert_eq!(on_live.call("get", vec![]).expect("live object serves"), Value::I64(0));
    // Past the lease horizon, the dead object's proxy serves new calls
    // again — failed over to a survivor (fresh state, by contract).
    std::thread::sleep(ttl + Duration::from_millis(50));
    assert_eq!(
        on_dead.call("get", vec![]).expect("failover re-creation"),
        Value::I64(0),
        "failed-over replacement starts from the class constructor"
    );
    // And the failed-over object is claimable like any other.
    let uri2 = on_dead.uri().expect("post-failover uri");
    rt.reserve(&[&uri2]).expect("reserve after failover").release().expect("release");
}

/// Telemetry plumbing rides along: claim grants and lease-expiry aborts
/// surface in the 25-field node snapshot (`claims_acquired`,
/// `claims_aborted`) that `parc-top` renders.
#[test]
fn claim_counters_surface_in_node_telemetry() {
    let rt = cell_runtime(1, Duration::from_millis(120));
    let po = rt.create_on("Cell", 0).expect("cell");
    let uri = po.uri().expect("uri");
    rt.reserve(&[&uri]).expect("reserve").release().expect("release");
    // One leaked claim, reclaimed by expiry → claims_aborted.
    std::mem::forget(rt.reserve(&[&uri]).expect("reserve to leak"));
    let _ = po.call("get", vec![]).expect("parked foreign call reclaims");

    let telemetry = rt.telemetry();
    let row = telemetry.poll_node(0).expect("node telemetry");
    assert!(
        row.claims_acquired >= 2,
        "claims_acquired must count both grants, got {}",
        row.claims_acquired
    );
    assert!(
        row.claims_aborted >= 1,
        "claims_aborted must count the lease-expiry reclaim, got {}",
        row.claims_aborted
    );
}

// Keep `Po` in the public-API surface this suite compiles against: the
// reservation flow is meant to compose with ordinary proxies.
#[allow(dead_code)]
fn _po_is_compatible(po: &Po) -> Option<String> {
    po.uri()
}
