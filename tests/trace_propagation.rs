//! Cross-node trace propagation: the wire-level trace extension must turn
//! per-node span soups into one causally linked tree — server dispatch
//! spans are children of the originating client's send, across multiple
//! hops, on every transport, and the links must survive chaos (dropped,
//! duplicated and delayed frames).
//!
//! The global recorder is process-wide state, so every test holds
//! `parc::obs::test_lock()` for its full body.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parc::apps::sieve::{reference_primes, register_prime_filter_class, PRIME_SERVER_CLASS};
use parc::obs::kinds;
use parc::obs::ring::{Record, SpanRecord};
use parc::obs::trace::NODE_UNSET;
use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::reactor::{ReactorClientChannel, ReactorServerChannel};
use parc::remoting::tcp::{DispatchMode, TcpClientChannel, TcpServerChannel};
use parc::remoting::{
    ChaosChannel, ClientChannel, FaultPlan, FaultSpec, Invokable, RemoteObject, RetryPolicy,
};
use parc::scoopp::{ParcRuntime, Pipeline};
use parc::serial::Value;

fn spans() -> Vec<SpanRecord> {
    parc::obs::recorder()
        .snapshot()
        .into_iter()
        .filter_map(|r| match r {
            Record::Span(s) => Some(s),
            Record::Event(_) => None,
        })
        .collect()
}

/// Waits (bounded) until the ring holds at least `n` dispatch spans —
/// server workers finish a hair after the client side returns.
fn wait_for_dispatches(n: usize) -> Vec<SpanRecord> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let all = spans();
        if all.iter().filter(|s| s.kind == kinds::DISPATCH).count() >= n
            || Instant::now() > deadline
        {
            return all;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The invariants every traced run must satisfy, chaos or not:
/// * traced span ids are unique (duplicated frames re-dispatch under a
///   *fresh* span id, they never clone one);
/// * every traced dispatch has a parent, and if that parent is in the
///   ring it is the client's `channel.send`;
/// * parent chains are acyclic and terminate at a root.
fn assert_causally_well_formed(all: &[SpanRecord]) {
    let traced: Vec<&SpanRecord> = all.iter().filter(|s| s.trace_id != 0).collect();
    assert!(!traced.is_empty(), "expected traced spans in the ring");

    let mut by_id: HashMap<u64, &SpanRecord> = HashMap::with_capacity(traced.len());
    for s in &traced {
        assert_ne!(s.span_id, 0, "traced span {} has a zero span id", s.kind);
        assert!(
            by_id.insert(s.span_id, s).is_none(),
            "span id {:016x} ({}) appears twice",
            s.span_id,
            s.kind
        );
    }

    for s in &traced {
        if s.kind == kinds::DISPATCH {
            assert_ne!(s.parent_span_id, 0, "dispatch span has no parent link");
            if let Some(parent) = by_id.get(&s.parent_span_id) {
                assert_eq!(
                    parent.kind,
                    kinds::CHANNEL_SEND,
                    "a dispatch's remote parent must be the client's send"
                );
                assert_eq!(parent.trace_id, s.trace_id, "parent is in another trace");
            }
        }
        // Acyclic: a chain longer than the span population is a loop.
        let mut cursor = s.parent_span_id;
        let mut hops = 0usize;
        while cursor != 0 {
            hops += 1;
            assert!(hops <= traced.len(), "cyclic parent chain from {:016x}", s.span_id);
            cursor = match by_id.get(&cursor) {
                Some(p) => p.parent_span_id,
                None => 0, // parent predates the snapshot; chain ends here
            };
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-hop propagation through the full runtime (inproc transport)
// ---------------------------------------------------------------------------

#[test]
fn pipeline_dispatches_link_back_to_the_client_call_chain_across_hops() {
    let _guard = parc::obs::test_lock();
    parc::obs::set_enabled(true);
    parc::obs::reset();

    let limit = 60u32;
    let expected = reference_primes(limit);
    let mut builder = ParcRuntime::builder();
    builder.nodes(3).aggregation(8);
    let runtime = builder.build().unwrap();
    register_prime_filter_class(&runtime);
    let pipeline = Pipeline::new(&runtime, PRIME_SERVER_CLASS, expected.len(), "connect").unwrap();
    for candidate in 2..=limit {
        pipeline.feed("process", vec![Value::I32Array(vec![candidate as i32])]).unwrap();
    }
    pipeline.flush().unwrap();
    for stage in pipeline.stages() {
        stage.call("drain", vec![]).unwrap();
    }

    let all = wait_for_dispatches(expected.len());
    parc::obs::set_enabled(false);
    assert_causally_well_formed(&all);

    let traced: HashMap<u64, &SpanRecord> =
        all.iter().filter(|s| s.trace_id != 0).map(|s| (s.span_id, s)).collect();
    let dispatches: Vec<&&SpanRecord> =
        traced.values().filter(|s| s.kind == kinds::DISPATCH).collect();

    // At least one dispatch's ancestry contains a dispatch on a *different*
    // node: the stage-to-stage forward really carried the trace a second hop.
    let mut saw_multi_hop = false;
    // And at least one chain roots in the client process (NODE_UNSET).
    let mut saw_client_root = false;
    for d in &dispatches {
        let mut cursor = d.parent_span_id;
        while cursor != 0 {
            let Some(p) = traced.get(&cursor) else { break };
            if p.kind == kinds::DISPATCH && p.node != d.node {
                saw_multi_hop = true;
            }
            if p.parent_span_id == 0 && p.node == NODE_UNSET {
                saw_client_root = true;
            }
            cursor = p.parent_span_id;
        }
    }
    assert!(saw_multi_hop, "no dispatch chained through a dispatch on another node");
    assert!(saw_client_root, "no dispatch chain roots in the client process");
}

// ---------------------------------------------------------------------------
// Chaos: propagation links survive dropped, duplicated and delayed frames
// ---------------------------------------------------------------------------

fn echo_object() -> Arc<dyn Invokable> {
    Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
        "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
        _ => Err(parc::remoting::RemotingError::MethodNotFound {
            object: "Echo".into(),
            method: method.into(),
        }),
    }))
}

/// Hammers an echo object through a chaos-wrapped channel and asserts the
/// ring's causal invariants still hold.
fn chaos_run(chan: Arc<dyn ClientChannel>, plan: &Arc<FaultPlan>) {
    let chaotic: Arc<dyn ClientChannel> = Arc::new(ChaosChannel::new(chan, Arc::clone(plan)));
    let proxy = RemoteObject::new(chaotic, "Echo")
        .with_retry(RetryPolicy::new(30, Duration::ZERO, Duration::ZERO));
    for i in 0..40i64 {
        let out = proxy.call_idempotent("echo", vec![Value::I64(i)]).unwrap();
        assert_eq!(out, Value::I64(i));
        if i % 4 == 0 {
            // Posts too: one-way frames carry the same trace extension.
            let _ = proxy.post("echo", vec![Value::I64(-i)]);
        }
    }
    assert!(plan.messages_seen() >= 40, "chaos plan saw too little traffic");

    let all = wait_for_dispatches(30);
    assert_causally_well_formed(&all);
    // Drops + retries mean *some* send spans have no surviving dispatch —
    // but dispatches we did record must outnumber nothing: the run really
    // traced its survivors.
    assert!(
        all.iter().filter(|s| s.kind == kinds::DISPATCH && s.trace_id != 0).count() >= 30,
        "too few traced dispatches survived chaos"
    );
}

#[test]
fn chaos_drop_dup_delay_keeps_traces_causal_over_mux() {
    let _guard = parc::obs::test_lock();
    parc::obs::set_enabled(true);
    parc::obs::reset();

    let server =
        TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox { workers: 2 })
            .unwrap();
    server.objects().register_singleton("Echo", echo_object());
    let chan: Arc<dyn ClientChannel> =
        Arc::new(TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 1).unwrap());
    let plan =
        Arc::new(FaultPlan::new(0x7AC3, FaultSpec::parse("drop=0.15,delay=0.1:1,dup=0.15")));
    chaos_run(chan, &plan);
    parc::obs::set_enabled(false);
}

#[test]
fn chaos_drop_dup_delay_keeps_traces_causal_over_reactor() {
    let _guard = parc::obs::test_lock();
    parc::obs::set_enabled(true);
    parc::obs::reset();

    let server =
        ReactorServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox { workers: 2 })
            .unwrap();
    server.objects().register_singleton("Echo", echo_object());
    let chan: Arc<dyn ClientChannel> =
        Arc::new(ReactorClientChannel::connect(&server.local_addr().to_string()).unwrap());
    let plan =
        Arc::new(FaultPlan::new(0x7AC4, FaultSpec::parse("drop=0.15,delay=0.1:1,dup=0.15")));
    chaos_run(chan, &plan);
    parc::obs::set_enabled(false);
}
