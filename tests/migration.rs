//! Live-migration integration tests: state carried across the move,
//! per-object FIFO preserved for concurrent clients, stale proxies
//! repointed by the `Moved` reply marker, clean aborts, the rebalancer's
//! migration rounds — plus remoting-level forwarder conformance over the
//! inproc and reactor transports.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parc::remoting::channel::RemoteObject;
use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::inproc::InprocNetwork;
use parc::remoting::reactor::{ReactorClientChannel, ReactorServerChannel};
use parc::remoting::tcp::DispatchMode;
use parc::remoting::{ChannelProvider, Forwarder, Invokable, RemotingError};
use parc::scoopp::{ParcRuntime, Placement, RebalanceConfig};
use parc::serial::Value;

/// A log object whose state survives migration: `__snapshot` exports the
/// note list, `__restore` imports it.
fn register_journal(rt: &ParcRuntime) {
    rt.register_class("Journal", || {
        let notes: Mutex<Vec<i64>> = Mutex::new(Vec::new());
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "note" => {
                let v = args.first().and_then(Value::as_i64).unwrap_or(i64::MIN);
                notes.lock().unwrap().push(v);
                Ok(Value::Null)
            }
            "dump" | "__snapshot" => Ok(Value::List(
                notes.lock().unwrap().iter().map(|&v| Value::I64(v)).collect(),
            )),
            "__restore" => {
                let list = args
                    .first()
                    .and_then(Value::as_list)
                    .map(|items| items.iter().filter_map(Value::as_i64).collect())
                    .unwrap_or_default();
                *notes.lock().unwrap() = list;
                Ok(Value::Null)
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Journal".into(),
                method: method.into(),
            }),
        }))
    });
}

fn dumped(po: &parc::scoopp::Po) -> Vec<i64> {
    po.call("dump", vec![])
        .unwrap()
        .as_list()
        .unwrap()
        .iter()
        .filter_map(Value::as_i64)
        .collect()
}

#[test]
fn stateful_object_migrates_with_its_journal() {
    let rt = ParcRuntime::builder().nodes(2).build().unwrap();
    register_journal(&rt);
    let journal = rt.create_on("Journal", 0).unwrap();
    for i in 0..5 {
        journal.call("note", vec![Value::I64(i)]).unwrap();
    }
    let new_uri = rt.migrate(&journal, 1).unwrap();
    assert_eq!(journal.node(), Some(1));
    assert_eq!(dumped(&journal), vec![0, 1, 2, 3, 4], "state crossed the move");
    // The directory index followed.
    assert_eq!(rt.directory().location(&new_uri).map(|p| p.node), Some(1));
    assert_eq!(rt.node_loads(), vec![0, 1]);
}

#[test]
fn stateless_class_migrates_but_resets() {
    // A class with no `__snapshot` migrates stateless — the documented
    // contract: the destination starts from the constructor.
    let rt = ParcRuntime::builder().nodes(2).build().unwrap();
    rt.register_class("Blank", || {
        let hits = std::sync::atomic::AtomicI64::new(0);
        Arc::new(FnInvokable(move |method: &str, _args: &[Value]| match method {
            "bump" => {
                hits.fetch_add(1, Ordering::SeqCst);
                Ok(Value::Null)
            }
            "total" => Ok(Value::I64(hits.load(Ordering::SeqCst))),
            "__restore" => Ok(Value::Null),
            _ => Err(RemotingError::MethodNotFound {
                object: "Blank".into(),
                method: method.into(),
            }),
        }))
    });
    let po = rt.create_on("Blank", 0).unwrap();
    po.call("bump", vec![]).unwrap();
    rt.migrate(&po, 1).unwrap();
    assert_eq!(po.node(), Some(1));
    assert_eq!(po.call("total", vec![]).unwrap(), Value::I64(0), "stateless reset");
}

/// The headline ordering guarantee: K clients hammer one object through
/// their own proxies while the object is live-migrated mid-run. Every
/// note must arrive exactly once and each client's subsequence must stay
/// in program order — before, during, and after the move.
#[test]
fn per_client_fifo_survives_a_mid_run_migration() {
    const CLIENTS: i64 = 4;
    const NOTES: i64 = 200;
    let rt = Arc::new(ParcRuntime::builder().nodes(2).build().unwrap());
    register_journal(&rt);
    let journal = rt.create_on("Journal", 0).unwrap();
    let uri = journal.uri().unwrap();

    let started = Arc::new(AtomicBool::new(false));
    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let rt = Arc::clone(&rt);
        let uri = uri.clone();
        let started = Arc::clone(&started);
        clients.push(std::thread::spawn(move || {
            let proxy = rt.proxy_from_uri(&uri).unwrap();
            while !started.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            for i in 0..NOTES {
                // Tag: client in the high digits, sequence in the low.
                proxy.call("note", vec![Value::I64(c * 1_000_000 + i)]).unwrap();
            }
        }));
    }
    started.store(true, Ordering::Relaxed);
    // Let traffic build, then move the object under it.
    std::thread::sleep(Duration::from_millis(5));
    rt.migrate(&journal, 1).unwrap();
    for client in clients {
        client.join().unwrap();
    }

    let notes = dumped(&journal);
    assert_eq!(notes.len(), (CLIENTS * NOTES) as usize, "no note lost or duplicated");
    let mut next = vec![0i64; CLIENTS as usize];
    for note in notes {
        let (client, seq) = (note / 1_000_000, note % 1_000_000);
        assert_eq!(
            seq, next[client as usize],
            "client {client} observed out of program order"
        );
        next[client as usize] += 1;
    }
    assert!(next.iter().all(|&n| n == NOTES));
}

#[test]
fn stale_proxy_follows_forwarding_and_repoints() {
    let rt = ParcRuntime::builder().nodes(2).build().unwrap();
    register_journal(&rt);
    let journal = rt.create_on("Journal", 0).unwrap();
    journal.call("note", vec![Value::I64(1)]).unwrap();
    let stale = rt.proxy_from_uri(&journal.uri().unwrap()).unwrap();
    rt.migrate(&journal, 1).unwrap();
    // First call relays through the forwarder and carries the Moved
    // marker; the proxy repoints and subsequent calls go direct.
    assert_eq!(dumped(&stale), vec![1]);
    assert_eq!(stale.node(), Some(1), "Moved reply repointed the proxy");
    stale.call("note", vec![Value::I64(2)]).unwrap();
    assert_eq!(dumped(&journal), vec![1, 2], "both proxies reach the same object");
}

#[test]
fn failed_migration_aborts_cleanly() {
    let rt = ParcRuntime::builder().nodes(3).build().unwrap();
    register_journal(&rt);
    let journal = rt.create_on("Journal", 0).unwrap();
    journal.call("note", vec![Value::I64(7)]).unwrap();
    rt.kill_node(2);
    assert!(rt.migrate(&journal, 2).is_err(), "dead destination rejected");
    assert_eq!(journal.node(), Some(0), "object untouched at the source");
    assert_eq!(dumped(&journal), vec![7]);
    assert_eq!(rt.node_loads()[0], 1);
}

#[test]
fn rebalancer_drains_a_hot_node_with_hysteresis_and_cap() {
    let rt = ParcRuntime::builder().nodes(3).build().unwrap();
    register_journal(&rt);
    let mut objects = Vec::new();
    for _ in 0..9 {
        objects.push(rt.create_on("Journal", 0).unwrap());
    }
    assert_eq!(rt.node_loads(), vec![9, 0, 0]);
    let cfg = RebalanceConfig {
        max_migrations_per_round: 3,
        ..RebalanceConfig::default()
    };
    let mut rounds = 0;
    while rt.rebalance_once(&cfg) > 0 {
        rounds += 1;
        assert!(rounds <= 10, "rebalancer failed to converge");
    }
    let loads = rt.node_loads();
    let max = *loads.iter().max().unwrap();
    let mean = loads.iter().sum::<i64>() as f64 / loads.len() as f64;
    assert!(
        (max as f64) <= cfg.high_ratio * mean,
        "still skewed after convergence: {loads:?}"
    );
    // Every proxy still answers, directly or through a forwarder.
    for po in &objects {
        po.call("note", vec![Value::I64(1)]).unwrap();
    }
    // Balance holds: another round does nothing.
    assert_eq!(rt.rebalance_once(&cfg), 0);
}

#[test]
fn ring_placement_with_rebalancer_thread_end_to_end() {
    let rt = Arc::new({
        let mut b = ParcRuntime::builder();
        b.nodes(3).placement(Placement::Ring);
        b.build().unwrap()
    });
    register_journal(&rt);
    // Skew deliberately despite ring placement (explicit create_on).
    for _ in 0..9 {
        rt.create_on("Journal", 0).unwrap();
    }
    let handle = rt.start_rebalancer(RebalanceConfig {
        interval: Duration::from_millis(5),
        max_migrations_per_round: 2,
        ..RebalanceConfig::default()
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while rt.node_loads()[0] > 5 {
        assert!(Instant::now() < deadline, "rebalancer never drained the hot node");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.stop();
    // Ring placement keeps working after the weight updates.
    assert!(rt.create("Journal").is_ok());
}

// ---------------------------------------------------------------------------
// Remoting-level forwarder conformance: inproc and reactor transports
// ---------------------------------------------------------------------------

/// A recorder object for the transport-level checks.
fn recorder() -> (Arc<dyn Invokable>, Arc<Mutex<Vec<i32>>>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    let object = Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
        "note" => {
            let v = args.first().and_then(Value::as_i32).unwrap_or(i32::MIN);
            sink.lock().unwrap().push(v);
            Ok(Value::I32(v))
        }
        _ => Err(RemotingError::MethodNotFound {
            object: "Recorder".into(),
            method: method.into(),
        }),
    }));
    (object, log)
}

/// Installs a forwarder at `old` relaying to the real object behind
/// `target`, then checks through `client`: values come back correct and
/// in FIFO order, and every reply carries the Moved marker with the new
/// URI.
fn check_forwarder_contract(
    label: &str,
    client: &RemoteObject,
    log: &Arc<Mutex<Vec<i32>>>,
    new_uri: &str,
) {
    for i in 0..20 {
        let (value, moved) = client
            .call_reclaim_located("note", vec![Value::I32(i)])
            .unwrap_or_else(|(e, _)| panic!("{label}: forwarded call failed: {e:?}"));
        assert_eq!(value, Value::I32(i), "{label}");
        assert_eq!(
            moved.as_deref(),
            Some(new_uri),
            "{label}: forwarded replies must carry the Moved marker"
        );
    }
    assert_eq!(
        *log.lock().unwrap(),
        (0..20).collect::<Vec<i32>>(),
        "{label}: forwarding must preserve FIFO order"
    );
}

#[test]
fn forwarder_conformance_over_inproc() {
    let net = InprocNetwork::new();
    let a = net.create_endpoint("a").unwrap();
    let b = net.create_endpoint("b").unwrap();
    let (object, log) = recorder();
    b.objects().register_singleton("real", object);
    let new_uri = "inproc://b/real";
    let chan_b = net.open(&new_uri.parse().unwrap()).unwrap();
    a.objects().register_singleton(
        "old",
        Arc::new(Forwarder::new(RemoteObject::new(chan_b, "real"), new_uri)),
    );
    let chan_a = net.open(&"inproc://a/old".parse().unwrap()).unwrap();
    let client = RemoteObject::new(chan_a, "old");
    check_forwarder_contract("inproc", &client, &log, new_uri);
}

#[test]
fn forwarder_conformance_over_reactor() {
    // Old home and new home are two reactor servers; the forwarder at the
    // old home relays over a real socket.
    let new_home = ReactorServerChannel::bind_with_mode(
        "127.0.0.1:0",
        DispatchMode::Mailbox { workers: 2 },
    )
    .unwrap();
    let (object, log) = recorder();
    new_home.objects().register_singleton("real", object);
    let new_uri = format!("tcp://{}/real", new_home.local_addr());
    let relay = Arc::new(ReactorClientChannel::connect(&new_home.local_addr().to_string()).unwrap());
    let old_home = ReactorServerChannel::bind_with_mode(
        "127.0.0.1:0",
        DispatchMode::Mailbox { workers: 2 },
    )
    .unwrap();
    old_home.objects().register_singleton(
        "old",
        Arc::new(Forwarder::new(RemoteObject::new(relay, "real"), new_uri.clone())),
    );
    let chan = Arc::new(ReactorClientChannel::connect(&old_home.local_addr().to_string()).unwrap());
    let client = RemoteObject::new(chan, "old");
    check_forwarder_contract("reactor", &client, &log, &new_uri);
}
