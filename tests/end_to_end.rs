//! Cross-crate integration tests: the full ParC# story wired end to end.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::tcp::{TcpChannelProvider, TcpServerChannel};
use parc::remoting::wellknown::WellKnownObjectMode;
use parc::remoting::{remote_interface, Activator, Delegate, Invokable, RemotingError};
use parc::scoopp::{Farm, GrainConfig, ParcRuntime};
use parc::serial::Value;
use parc_apps::raytracer::{render_image, render_line, Scene};

remote_interface! {
    /// Cross-crate test interface.
    pub trait Worker, proxy WorkerProxy, dispatcher WorkerDispatcher {
        fn square(x: i32) -> i32;
        fn concat(a: String, b: String) -> String;
    }
}

struct WorkerImpl;

impl Worker for WorkerImpl {
    fn square(&self, x: i32) -> Result<i32, RemotingError> {
        Ok(x * x)
    }

    fn concat(&self, a: String, b: String) -> Result<String, RemotingError> {
        Ok(format!("{a}{b}"))
    }
}

#[test]
fn macro_proxy_over_real_tcp_with_singlecall_mode() {
    let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
    server.objects().register_well_known(
        "Worker",
        WellKnownObjectMode::SingleCall,
        || Arc::new(WorkerDispatcher(WorkerImpl)) as Arc<dyn Invokable>,
    );
    let provider = TcpChannelProvider::new();
    let proxy =
        WorkerProxy::new(Activator::get_object(&provider, &server.uri_for("Worker")).unwrap());
    assert_eq!(proxy.square(12).unwrap(), 144);
    assert_eq!(proxy.concat("par".into(), "c#".into()).unwrap(), "parc#");
}

#[test]
fn delegates_overlap_remote_calls_like_fig4() {
    let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
    server.objects().register_well_known(
        "Worker",
        WellKnownObjectMode::Singleton,
        || Arc::new(WorkerDispatcher(WorkerImpl)) as Arc<dyn Invokable>,
    );
    let uri = server.uri_for("Worker");
    let delegate = Delegate::with_threads(4);
    let results: Vec<_> = (0..8)
        .map(|i| {
            let uri = uri.clone();
            delegate.begin_invoke(move || {
                let provider = TcpChannelProvider::new();
                let proxy = WorkerProxy::new(Activator::get_object(&provider, &uri).unwrap());
                proxy.square(i).unwrap()
            })
        })
        .collect();
    let sum: i32 = results.into_iter().map(|ar| ar.end_invoke()).sum();
    assert_eq!(sum, (0..8).map(|i| i * i).sum());
}

#[test]
fn scoopp_farm_renders_the_same_image_as_sequential() {
    let scene = Scene::jgf(16);
    let (w, h) = (48, 48);
    let reference = render_image(&scene, w, h);

    let mut builder = ParcRuntime::builder();
    builder.nodes(3);
    let rt = builder.build().unwrap();
    let worker_scene = scene.clone();
    rt.register_class("Renderer", move || {
        let scene = worker_scene.clone();
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "line" => {
                let y = args[0].as_i64().unwrap() as usize;
                Ok(Value::F64Array(render_line(&scene, 48, 48, y).pixels))
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Renderer".into(),
                method: method.into(),
            }),
        }))
    });
    let farm = Farm::new(&rt, "Renderer", 3).unwrap();
    let items: Vec<Vec<Value>> = (0..h).map(|y| vec![Value::I64(y as i64)]).collect();
    let lines = farm.map("line", items).unwrap();
    let checksum: f64 =
        lines.iter().map(|l| l.as_f64_array().unwrap().iter().sum::<f64>()).sum();
    assert!((checksum - reference.checksum()).abs() < 1e-9);
}

#[test]
fn aggregation_is_transparent_to_results() {
    // The same workload with and without aggregation must produce the same
    // state, differing only in message counts.
    let run = |factor: usize| {
        let mut builder = ParcRuntime::builder();
        builder
            .nodes(2)
            .grain(GrainConfig { aggregation_factor: factor, ..GrainConfig::default() });
        let rt = builder.build().unwrap();
        rt.register_class("Acc", || {
            let total = AtomicI64::new(0);
            Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
                "add" => {
                    total.fetch_add(
                        args[0].as_i64().unwrap_or(0),
                        Ordering::Relaxed,
                    );
                    Ok(Value::Null)
                }
                "total" => Ok(Value::I64(total.load(Ordering::Relaxed))),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Acc".into(),
                    method: method.into(),
                }),
            }))
        });
        let po = rt.create("Acc").unwrap();
        for i in 0..500i64 {
            po.post("add", vec![Value::I64(i)]).unwrap();
        }
        po.flush().unwrap();
        let total = po.call("total", vec![]).unwrap();
        (total, rt.stats().snapshot().messages_sent)
    };
    let (plain_total, plain_msgs) = run(1);
    let (agg_total, agg_msgs) = run(50);
    assert_eq!(plain_total, agg_total);
    assert_eq!(plain_total, Value::I64((0..500).sum()));
    assert!(
        agg_msgs * 10 < plain_msgs,
        "aggregation x50 must slash messages: {agg_msgs} vs {plain_msgs}"
    );
}

#[test]
fn runtime_survives_a_worker_fault_midstream() {
    let mut builder = ParcRuntime::builder();
    builder.nodes(1);
    let rt = builder.build().unwrap();
    rt.register_class("Flaky", || {
        Arc::new(FnInvokable(|method: &str, _args: &[Value]| match method {
            "ok" => Ok(Value::I32(1)),
            "boom" => Err(RemotingError::ServerFault { detail: "injected".into() }),
            _ => Err(RemotingError::MethodNotFound {
                object: "Flaky".into(),
                method: method.into(),
            }),
        }))
    });
    let po = rt.create("Flaky").unwrap();
    assert_eq!(po.call("ok", vec![]).unwrap(), Value::I32(1));
    assert!(po.call("boom", vec![]).is_err());
    // The channel and object survive the fault.
    assert_eq!(po.call("ok", vec![]).unwrap(), Value::I32(1));
}
