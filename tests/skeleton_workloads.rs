//! Skeleton-level integration: farms and pipelines under skewed work and
//! every placement policy, validated against sequential oracles.

use std::sync::Arc;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::RemotingError;
use parc::scoopp::{Farm, ParcRuntime, Placement, Pipeline};
use parc::serial::Value;
use parc_apps::mandelbrot::{mandel_checksum, mandel_line, View};
use parc_apps::sieve::{reference_primes, register_prime_filter_class, PRIME_SERVER_CLASS};

fn mandel_runtime(placement: Placement) -> ParcRuntime {
    let mut b = ParcRuntime::builder();
    b.nodes(3).placement(placement);
    let rt = b.build().unwrap();
    rt.register_class("Mandel", move || {
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "line" => {
                let y = args[0].as_i64().unwrap_or(0) as usize;
                let n = args[1].as_i64().unwrap_or(0) as usize;
                Ok(Value::I64(mandel_line(View::default(), n, n, y).work as i64))
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Mandel".into(),
                method: method.into(),
            }),
        }))
    });
    rt
}

#[test]
fn mandel_farm_matches_oracle_under_every_placement() {
    let size = 48;
    let expected = mandel_checksum(View::default(), size, size);
    for placement in
        [Placement::RoundRobin, Placement::Random { seed: 11 }, Placement::LeastLoaded]
    {
        let rt = mandel_runtime(placement);
        let farm = Farm::new(&rt, "Mandel", 3).unwrap();
        let items: Vec<Vec<Value>> = (0..size)
            .map(|y| vec![Value::I64(y as i64), Value::I64(size as i64)])
            .collect();
        let works = farm.map("line", items).unwrap();
        let total: u64 = works.iter().map(|w| w.as_i64().unwrap() as u64).sum();
        assert_eq!(total, expected, "placement {placement}");
    }
}

#[test]
fn sieve_pipeline_scales_with_aggregation_factors() {
    let limit = 80u32;
    let expected = reference_primes(limit);
    for factor in [1usize, 4, 32] {
        let mut b = ParcRuntime::builder();
        b.nodes(2).aggregation(factor);
        let rt = b.build().unwrap();
        register_prime_filter_class(&rt);
        let p = Pipeline::new(&rt, PRIME_SERVER_CLASS, expected.len(), "connect").unwrap();
        for candidate in 2..=limit {
            p.feed("process", vec![Value::I32Array(vec![candidate as i32])]).unwrap();
        }
        p.flush().unwrap();
        for stage in p.stages() {
            stage.call("drain", vec![]).unwrap();
        }
        let primes: Vec<u32> = p
            .stages()
            .iter()
            .filter_map(|s| s.call("prime", vec![]).unwrap().as_i32())
            .map(|v| v as u32)
            .collect();
        assert_eq!(primes, expected, "factor {factor}");
    }
}

#[test]
fn farm_gather_after_scatter_is_a_barrier() {
    let mut b = ParcRuntime::builder();
    b.nodes(2).aggregation(8);
    let rt = b.build().unwrap();
    rt.register_class("Sum", || {
        let total = std::sync::atomic::AtomicI64::new(0);
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "add" => {
                total.fetch_add(
                    args[0].as_i64().unwrap_or(0),
                    std::sync::atomic::Ordering::Relaxed,
                );
                Ok(Value::Null)
            }
            "total" => Ok(Value::I64(total.load(std::sync::atomic::Ordering::Relaxed))),
            _ => Err(RemotingError::MethodNotFound {
                object: "Sum".into(),
                method: method.into(),
            }),
        }))
    });
    let farm = Farm::new(&rt, "Sum", 4).unwrap();
    let items: Vec<Vec<Value>> = (1..=100i64).map(|i| vec![Value::I64(i)]).collect();
    farm.scatter("add", items).unwrap();
    // gather() performs a sync call per worker, which flushes and orders
    // after all scattered posts on that worker.
    let totals = farm.gather("total", vec![]).unwrap();
    let grand: i64 = totals.iter().map(|v| v.as_i64().unwrap()).sum();
    assert_eq!(grand, 5050);
}

#[test]
fn pipeline_reference_cycles_are_reported_not_fatal() {
    // Wire a deliberate back-edge and confirm the DAG tracker flags it
    // while the runtime keeps operating (§3.1's cyclic dependence graphs).
    let mut b = ParcRuntime::builder();
    b.nodes(2);
    let rt = b.build().unwrap();
    register_prime_filter_class(&rt);
    let p = Pipeline::new(&rt, PRIME_SERVER_CLASS, 3, "connect").unwrap();
    assert!(rt.dag().is_dag());
    // Tail gets a reference back to the head (a cycle in the reference
    // graph — legal, tracked, reported).
    rt.record_reference(p.tail(), p.head());
    assert!(!rt.dag().is_dag());
    assert!(!rt.dag().cyclic_objects().is_empty());
    // The pipeline still works.
    p.feed("process", vec![Value::I32Array(vec![2, 3, 4])]).unwrap();
    p.flush().unwrap();
    for stage in p.stages() {
        stage.call("drain", vec![]).unwrap();
    }
    assert_eq!(p.head().call("prime", vec![]).unwrap(), Value::I32(2));
}
