//! Property tests spanning crates: arbitrary payloads must survive every
//! channel and every formatter unchanged, and the SCOOPP layer must be
//! observationally equivalent across placement/aggregation settings.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::inproc::InprocNetwork;
use parc::remoting::{Activator, CallMessage, RemotingError, ReturnMessage};
use parc::scoopp::{GrainConfig, ParcRuntime};
use parc::serial::{BinaryFormatter, Formatter, JavaFormatter, SoapFormatter, StructValue, Value};

fn arb_payload() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(Value::I32),
        any::<i64>().prop_map(Value::I64),
        any::<f64>().prop_filter("non-nan", |f| !f.is_nan()).prop_map(Value::F64),
        "[a-zA-Z0-9 <>&\"]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Value::Bytes),
        proptest::collection::vec(any::<i32>(), 0..48).prop_map(Value::I32Array),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Value::List),
            ("[A-Z][a-z]{0,6}", proptest::collection::vec(("[a-z]{1,5}", inner), 0..4)).prop_map(
                |(name, fields)| {
                    let mut s = StructValue::new(name);
                    for (n, v) in fields {
                        s.push_field(n, v);
                    }
                    Value::Struct(s)
                }
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A full call/return cycle through every formatter preserves payloads.
    #[test]
    fn call_frames_roundtrip_every_formatter(payload in arb_payload(), id in any::<u64>()) {
        let formatters: [&dyn Formatter; 3] =
            [&BinaryFormatter::new(), &SoapFormatter::new(), &JavaFormatter::new()];
        let mut call = CallMessage::new("Obj", "method", vec![payload.clone()]);
        call.call_id = id;
        let ret = ReturnMessage::ok(id, payload);
        for f in formatters {
            let c2 = CallMessage::decode(f, &call.encode(f).unwrap()).unwrap();
            prop_assert_eq!(&c2, &call, "{}", f.name());
            let r2 = ReturnMessage::decode(f, &ret.encode(f).unwrap()).unwrap();
            prop_assert_eq!(&r2, &ret, "{}", f.name());
        }
    }

    /// Echoing through a live inproc endpoint preserves arbitrary values.
    #[test]
    fn inproc_channel_echoes_arbitrary_values(payload in arb_payload()) {
        let net = InprocNetwork::new();
        let ep = net.create_endpoint("prop").unwrap();
        ep.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|_: &str, args: &[Value]| {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            })),
        );
        let proxy = Activator::get_object(&net, "inproc://prop/Echo").unwrap();
        prop_assert_eq!(proxy.call("echo", vec![payload.clone()]).unwrap(), payload);
        drop(ep);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The observable effect of a post sequence is invariant under
    /// aggregation factor and local-vs-remote placement.
    #[test]
    fn scoopp_semantics_invariant_under_grain_settings(
        values in proptest::collection::vec(-100i32..100, 1..40),
        factor in 1usize..20,
        local in any::<bool>(),
    ) {
        let log = Arc::new(Mutex::new(Vec::<i32>::new()));
        let mut b = ParcRuntime::builder();
        b.nodes(2).grain(GrainConfig {
            aggregation_factor: factor,
            agglomeration_ratio: if local { 1.0 } else { 0.0 },
            ..GrainConfig::default()
        });
        let rt = b.build().unwrap();
        let log2 = Arc::clone(&log);
        rt.register_class("Rec", move || {
            let log = Arc::clone(&log2);
            Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
                "push" => {
                    log.lock().push(args[0].as_i32().unwrap_or(i32::MIN));
                    Ok(Value::Null)
                }
                "len" => Ok(Value::I64(log.lock().len() as i64)),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Rec".into(),
                    method: method.into(),
                }),
            }))
        });
        let po = rt.create("Rec").unwrap();
        for &v in &values {
            po.post("push", vec![Value::I32(v)]).unwrap();
        }
        po.flush().unwrap();
        // The sync call is the order barrier: after it, all posts landed.
        let len = po.call("len", vec![]).unwrap();
        prop_assert_eq!(len, Value::I64(values.len() as i64));
        prop_assert_eq!(log.lock().clone(), values);
    }
}
