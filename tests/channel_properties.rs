//! Property tests spanning crates: arbitrary payloads must survive every
//! channel and every formatter unchanged, and the SCOOPP layer must be
//! observationally equivalent across placement/aggregation settings.

use std::sync::Arc;

use parc_sync::Mutex;
use parc_testkit::{Config, Source};

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::inproc::InprocNetwork;
use parc::remoting::{Activator, CallMessage, RemotingError, ReturnMessage};
use parc::scoopp::{GrainConfig, ParcRuntime};
use parc::serial::{BinaryFormatter, Formatter, JavaFormatter, SoapFormatter, StructValue, Value};

const LOWER: &str = "abcdefghijklmnopqrstuvwxyz";
const UPPER: &str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
const TEXT: &str = "abcxyzABCXYZ019 <>&\"";

fn arb_payload(src: &mut Source) -> Value {
    arb_payload_at(src, 3)
}

fn arb_payload_at(src: &mut Source, depth: usize) -> Value {
    let arms = if depth == 0 { 8 } else { 10 };
    match src.choice(arms) {
        0 => Value::Null,
        1 => Value::Bool(src.bool_any()),
        2 => Value::I32(src.i32_any()),
        3 => Value::I64(src.i64_any()),
        4 => Value::F64(src.f64_non_nan()),
        5 => Value::Str(src.string_of(TEXT, 0..25)),
        6 => Value::Bytes(src.bytes(0..48)),
        7 => Value::I32Array(src.vec_of(0..48, |s| s.i32_any())),
        8 => Value::List(src.vec_of(0..5, |s| arb_payload_at(s, depth - 1))),
        _ => {
            let mut name = src.string_of(UPPER, 1..2);
            name.push_str(&src.string_of(LOWER, 0..7));
            let mut s = StructValue::new(name);
            for _ in 0..src.usize_in(0..4) {
                s.push_field(src.string_of(LOWER, 1..6), arb_payload_at(src, depth - 1));
            }
            Value::Struct(s)
        }
    }
}

/// A full call/return cycle through every formatter preserves payloads.
#[test]
fn call_frames_roundtrip_every_formatter() {
    Config::cases(64).check(
        |src| (arb_payload(src), src.u64_any()),
        |(payload, id)| {
            let formatters: [&dyn Formatter; 3] =
                [&BinaryFormatter::new(), &SoapFormatter::new(), &JavaFormatter::new()];
            let mut call = CallMessage::new("Obj", "method", vec![payload.clone()]);
            call.call_id = *id;
            let ret = ReturnMessage::ok(*id, payload.clone());
            for f in formatters {
                let c2 = CallMessage::decode(f, &call.encode(f).unwrap()).unwrap();
                assert_eq!(&c2, &call, "{}", f.name());
                let r2 = ReturnMessage::decode(f, &ret.encode(f).unwrap()).unwrap();
                assert_eq!(&r2, &ret, "{}", f.name());
            }
        },
    );
}

/// Echoing through a live inproc endpoint preserves arbitrary values.
#[test]
fn inproc_channel_echoes_arbitrary_values() {
    Config::cases(64).check(arb_payload, |payload| {
        let net = InprocNetwork::new();
        let ep = net.create_endpoint("prop").unwrap();
        ep.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|_: &str, args: &[Value]| {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            })),
        );
        let proxy = Activator::get_object(&net, "inproc://prop/Echo").unwrap();
        assert_eq!(&proxy.call("echo", vec![payload.clone()]).unwrap(), payload);
        drop(ep);
    });
}

/// The observable effect of a post sequence is invariant under
/// aggregation factor and local-vs-remote placement.
#[test]
fn scoopp_semantics_invariant_under_grain_settings() {
    Config::cases(16).check(
        |src| {
            (
                src.vec_of(1..40, |s| s.i32_in(-100..100)),
                src.usize_in(1..20),
                src.bool_any(),
            )
        },
        |(values, factor, local)| {
            let log = Arc::new(Mutex::new(Vec::<i32>::new()));
            let mut b = ParcRuntime::builder();
            b.nodes(2).grain(GrainConfig {
                aggregation_factor: *factor,
                agglomeration_ratio: if *local { 1.0 } else { 0.0 },
                ..GrainConfig::default()
            });
            let rt = b.build().unwrap();
            let log2 = Arc::clone(&log);
            rt.register_class("Rec", move || {
                let log = Arc::clone(&log2);
                Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
                    "push" => {
                        log.lock().push(args[0].as_i32().unwrap_or(i32::MIN));
                        Ok(Value::Null)
                    }
                    "len" => Ok(Value::I64(log.lock().len() as i64)),
                    _ => Err(RemotingError::MethodNotFound {
                        object: "Rec".into(),
                        method: method.into(),
                    }),
                }))
            });
            let po = rt.create("Rec").unwrap();
            for &v in values {
                po.post("push", vec![Value::I32(v)]).unwrap();
            }
            po.flush().unwrap();
            // The sync call is the order barrier: after it, all posts landed.
            let len = po.call("len", vec![]).unwrap();
            assert_eq!(len, Value::I64(values.len() as i64));
            assert_eq!(&log.lock().clone(), values);
        },
    );
}
