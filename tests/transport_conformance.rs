//! Cross-transport conformance suite: one set of contract checks run
//! against every transport × dispatch-mode combination (lockstep, mux,
//! reactor × inline, mailbox), so every future transport inherits the
//! same behavioral bar instead of re-deriving it test by test.
//!
//! The contract, in order of appearance:
//! * per-object FIFO ordering — frames sent by one caller to one object
//!   execute in send order;
//! * one-way/two-way interleaving — posts and calls from one caller
//!   keep their relative order on the target object;
//! * replies route by correlation ID, never by arrival order;
//! * a dead connection poisons pending *and* future calls (fail fast,
//!   not hang);
//! * unknown-correlation-ID frames are tolerated and skipped.
//!
//! Also here: parc-testkit property tapes for [`FrameAssembler`] — the
//! reactor's incremental reassembly must decode a frame stream
//! identically for *any* chunking of the bytes, reject oversize frames
//! mid-reassembly, and report truncation honestly.

use std::io::Read;
use std::net::TcpListener;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use parc_testkit::Config;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::frame::{
    read_frame_into, write_frame, FrameAssembler, FrameRead, FLAG_ONEWAY, HEADER_LEN, MAX_FRAME,
};
use parc::remoting::reactor::{ReactorClientChannel, ReactorServerChannel};
use parc::remoting::tcp::{DispatchMode, LockStepClientChannel, TcpClientChannel, TcpServerChannel};
use parc::remoting::wellknown::ObjectTable;
use parc::remoting::{
    CallMessage, ClientChannel, Invokable, RemoteObject, RemotingError, ReturnMessage,
};
use parc::serial::{BinaryFormatter, Value};

// ---------------------------------------------------------------------------
// The combination matrix
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Transport {
    Lockstep,
    Mux,
    Reactor,
}

const TRANSPORTS: [Transport; 3] = [Transport::Lockstep, Transport::Mux, Transport::Reactor];

fn modes() -> [(&'static str, DispatchMode); 2] {
    [("inline", DispatchMode::Inline), ("mailbox", DispatchMode::Mailbox { workers: 4 })]
}

/// A bound server of whichever shape the transport needs. Lockstep and
/// mux clients speak to the thread-per-connection server; the reactor
/// client gets the reactor server, so the combination exercises the new
/// stack end to end.
enum Server {
    Threaded(TcpServerChannel),
    Reactor(ReactorServerChannel),
}

impl Server {
    fn bind(transport: Transport, mode: DispatchMode) -> Server {
        match transport {
            Transport::Reactor => Server::Reactor(
                ReactorServerChannel::bind_with_mode("127.0.0.1:0", mode)
                    .expect("binding reactor server"),
            ),
            Transport::Lockstep | Transport::Mux => Server::Threaded(
                TcpServerChannel::bind_with_mode("127.0.0.1:0", mode)
                    .expect("binding threaded server"),
            ),
        }
    }

    fn objects(&self) -> &ObjectTable {
        match self {
            Server::Threaded(s) => s.objects(),
            Server::Reactor(s) => s.objects(),
        }
    }

    fn addr(&self) -> String {
        match self {
            Server::Threaded(s) => s.local_addr().to_string(),
            Server::Reactor(s) => s.local_addr().to_string(),
        }
    }
}

fn connect(transport: Transport, addr: &str) -> Arc<dyn ClientChannel> {
    match transport {
        Transport::Lockstep => {
            Arc::new(LockStepClientChannel::connect(addr).expect("lockstep connect"))
        }
        // Pool of exactly one so hand-rolled single-socket servers see a
        // deterministic connection count.
        Transport::Mux => Arc::new(TcpClientChannel::connect_pooled(addr, 1).expect("mux connect")),
        Transport::Reactor => {
            Arc::new(ReactorClientChannel::connect(addr).expect("reactor connect"))
        }
    }
}

/// Runs `check` once per transport × dispatch-mode combination against a
/// freshly bound server; the label names the combination in failures.
fn for_each_combo(check: impl Fn(&str, &Server, Arc<dyn ClientChannel>)) {
    for transport in TRANSPORTS {
        for (mode_name, mode) in modes() {
            let server = Server::bind(transport, mode);
            let chan = connect(transport, &server.addr());
            check(&format!("{transport:?}/{mode_name}"), &server, chan);
        }
    }
}

/// An object that records every `note(i)` it executes, in execution
/// order, plus the shared log to assert against.
fn recorder() -> (Arc<dyn Invokable>, Arc<Mutex<Vec<i32>>>) {
    let log = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    let object = Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
        "note" => {
            let v = args.first().and_then(Value::as_i32).unwrap_or(i32::MIN);
            sink.lock().unwrap().push(v);
            Ok(Value::Null)
        }
        "drain" => Ok(Value::I32(sink.lock().unwrap().len() as i32)),
        _ => Err(RemotingError::MethodNotFound {
            object: "Recorder".into(),
            method: method.into(),
        }),
    }));
    (object, log)
}

// ---------------------------------------------------------------------------
// Contract: ordering
// ---------------------------------------------------------------------------

/// One-way posts from one caller to one object execute in send order;
/// a trailing two-way call is the barrier proving they all landed.
#[test]
fn per_object_fifo_ordering_holds_on_every_combo() {
    for_each_combo(|combo, server, chan| {
        let (object, log) = recorder();
        server.objects().register_singleton("Recorder", object);
        let proxy = RemoteObject::new(chan, "Recorder");
        for i in 0..32 {
            proxy.post("note", vec![Value::I32(i)]).unwrap_or_else(|e| {
                panic!("[{combo}] post {i} failed: {e}");
            });
        }
        let drained = proxy.call("drain", vec![]).unwrap_or_else(|e| {
            panic!("[{combo}] drain barrier failed: {e}");
        });
        assert_eq!(drained, Value::I32(32), "[{combo}] posts lost before barrier");
        let seen = log.lock().unwrap().clone();
        assert_eq!(
            seen,
            (0..32).collect::<Vec<i32>>(),
            "[{combo}] one-way posts executed out of order"
        );
    });
}

/// Alternating posts and calls from one caller hit the object in exactly
/// the issued order — one-way frames never jump the two-way queue and
/// vice versa.
#[test]
fn oneway_twoway_interleaving_preserves_order_on_every_combo() {
    for_each_combo(|combo, server, chan| {
        let (object, log) = recorder();
        server.objects().register_singleton("Recorder", object);
        let proxy = RemoteObject::new(chan, "Recorder");
        for i in 0..24 {
            if i % 2 == 0 {
                proxy.post("note", vec![Value::I32(i)]).unwrap();
            } else {
                proxy.call("note", vec![Value::I32(i)]).unwrap_or_else(|e| {
                    panic!("[{combo}] two-way note {i} failed: {e}");
                });
            }
        }
        proxy.call("drain", vec![]).unwrap();
        let seen = log.lock().unwrap().clone();
        assert_eq!(
            seen,
            (0..24).collect::<Vec<i32>>(),
            "[{combo}] one-way/two-way interleaving broke per-object order"
        );
    });
}

// ---------------------------------------------------------------------------
// Contract: correlation
// ---------------------------------------------------------------------------

/// Concurrent callers sharing one channel each get *their* reply back:
/// replies route by correlation ID, not arrival order. (Lockstep
/// serializes internally — the contract is about correctness, not
/// concurrency.)
#[test]
fn replies_route_by_correlation_id_on_every_combo() {
    for_each_combo(|combo, server, chan| {
        server.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
                "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Echo".into(),
                    method: method.into(),
                }),
            })),
        );
        std::thread::scope(|scope| {
            for t in 0..4i32 {
                let chan = Arc::clone(&chan);
                let combo = combo.to_string();
                scope.spawn(move || {
                    let proxy = RemoteObject::new(chan, "Echo");
                    for i in 0..25 {
                        let sent = t * 1000 + i;
                        let got = proxy.call("echo", vec![Value::I32(sent)]).unwrap_or_else(|e| {
                            panic!("[{combo}] caller {t} call {i} failed: {e}");
                        });
                        assert_eq!(
                            got,
                            Value::I32(sent),
                            "[{combo}] caller {t} received another caller's reply"
                        );
                    }
                });
            }
        });
    });
}

// ---------------------------------------------------------------------------
// Contract: death
// ---------------------------------------------------------------------------

/// A connection that dies mid-call fails the pending call promptly and
/// keeps failing future calls (no hangs, no stale successes). The server
/// here is a hand-rolled assassin: it accepts one connection, stops
/// listening, reads the first request, and slams the socket shut.
#[test]
fn dead_connection_poisons_pending_and_future_calls_on_every_transport() {
    for transport in TRANSPORTS {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binding assassin listener");
        let addr = listener.local_addr().unwrap().to_string();
        let assassin = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accepting victim");
            // Refuse reconnects *before* killing the connection, so a
            // fast revive cannot sneak into the accept backlog.
            drop(listener);
            let mut sink = [0u8; 256];
            let _ = stream.read(&mut sink);
            drop(stream);
        });
        let chan = connect(transport, &addr);
        let proxy = RemoteObject::new(chan, "Ghost");

        let started = Instant::now();
        let pending = proxy.call("anything", vec![]);
        assert!(
            pending.is_err(),
            "[{transport:?}] call on a killed connection returned {pending:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "[{transport:?}] pending call hung instead of failing fast"
        );

        for attempt in 0..3 {
            let later = proxy.call("anything", vec![]);
            assert!(
                later.is_err(),
                "[{transport:?}] call {attempt} after death returned {later:?}"
            );
        }
        assassin.join().expect("assassin thread");
    }
}

// ---------------------------------------------------------------------------
// Contract: unknown correlation IDs
// ---------------------------------------------------------------------------

/// A peer that interleaves garbage frames with unknown correlation IDs
/// among real replies must not confuse any client: unknown IDs are
/// skipped, real replies still land.
#[test]
fn unknown_corr_id_frames_are_skipped_on_every_transport() {
    for transport in TRANSPORTS {
        let listener = TcpListener::bind("127.0.0.1:0").expect("binding noisy listener");
        let addr = listener.local_addr().unwrap().to_string();
        let noisy = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accepting");
            let formatter = BinaryFormatter::new();
            let mut payload = Vec::new();
            let mut round = 0u64;
            loop {
                match read_frame_into(&mut stream, &mut payload) {
                    Ok(FrameRead::Frame(header)) => {
                        let call = CallMessage::decode(&formatter, &payload)
                            .expect("decoding request");
                        // Noise first: an ID no caller owns, with a
                        // payload that is not even a ReturnMessage.
                        write_frame(&mut stream, u64::MAX - round, 0, b"line noise").unwrap();
                        round += 1;
                        let reply = ReturnMessage::ok(
                            call.call_id,
                            call.args.first().cloned().unwrap_or(Value::Null),
                        );
                        let bytes = reply.encode(&formatter).unwrap();
                        write_frame(&mut stream, header.corr_id, 0, &bytes).unwrap();
                    }
                    Ok(FrameRead::Idle) => continue,
                    Ok(FrameRead::Eof) | Err(_) => break,
                }
            }
        });
        {
            let chan = connect(transport, &addr);
            let proxy = RemoteObject::new(chan, "Echo");
            for i in 0..5 {
                let got = proxy.call("echo", vec![Value::I32(i)]).unwrap_or_else(|e| {
                    panic!("[{transport:?}] call {i} failed amid noise frames: {e}");
                });
                assert_eq!(got, Value::I32(i), "[{transport:?}] echo corrupted by noise");
            }
        } // channel drop -> EOF -> noisy server exits
        noisy.join().expect("noisy server thread");
    }
}

// ---------------------------------------------------------------------------
// Contract: claim/release (multi-object reservations)
// ---------------------------------------------------------------------------

/// Runs `check` once per transport with mailbox dispatch — the mode the
/// claim plane is specified against (claims park in the one-in-flight
/// mailbox slot; the scheduler routes alias traffic on its own lane).
/// The transport is passed through so a check can open extra
/// connections: a parked foreign call must not share a lock-step
/// channel with the holder that will unblock it.
fn for_each_mailbox_combo(check: impl Fn(&str, &Server, Transport)) {
    for transport in TRANSPORTS {
        let server = Server::bind(transport, DispatchMode::Mailbox { workers: 4 });
        check(&format!("{transport:?}/mailbox"), &server, transport);
    }
}

/// `__claim` grants a private alias, the holder's calls flow through it,
/// releasing through the alias reopens the object — identically on every
/// transport.
#[test]
fn claim_grants_alias_and_release_reopens_on_every_transport() {
    for_each_mailbox_combo(|combo, server, transport| {
        let (object, log) = recorder();
        let claims = Arc::new(parc::remoting::ClaimTable::new());
        parc::remoting::register_claimable(server.objects(), "Recorder", object, &claims);

        let chan = connect(transport, &server.addr());
        let gate = RemoteObject::new(Arc::clone(&chan), "Recorder");
        let alias = gate
            .call(parc::remoting::CLAIM_METHOD, vec![Value::Str("c1".into())])
            .unwrap_or_else(|e| panic!("[{combo}] claim failed: {e}"));
        let alias = alias.as_str().expect("alias name").to_string();
        assert!(
            parc::remoting::is_claim_plane(&alias),
            "[{combo}] grant returned a non-claim-plane alias {alias:?}"
        );

        let holder = RemoteObject::new(Arc::clone(&chan), alias.clone());
        for i in 0..4 {
            holder
                .call("note", vec![Value::I32(i)])
                .unwrap_or_else(|e| panic!("[{combo}] holder call {i} failed: {e}"));
        }
        assert_eq!(log.lock().unwrap().clone(), vec![0, 1, 2, 3], "[{combo}] holder calls lost");

        let released = holder
            .call(parc::remoting::RELEASE_METHOD, vec![])
            .unwrap_or_else(|e| panic!("[{combo}] release failed: {e}"));
        assert_eq!(released, Value::Bool(true), "[{combo}] release reported no claim");
        // Object is open again: a plain (foreign) call completes.
        assert_eq!(
            gate.call("drain", vec![]).unwrap_or_else(|e| {
                panic!("[{combo}] post-release foreign call failed: {e}")
            }),
            Value::I32(4),
            "[{combo}] foreign call after release saw the wrong state"
        );
        assert_eq!(claims.stats().active, 0, "[{combo}] claim table still holds the claim");
    });
}

/// While claimed, a foreign call parks in the object's mailbox slot and
/// only runs after the holder releases — on every transport.
#[test]
fn foreign_calls_park_until_release_on_every_transport() {
    for_each_mailbox_combo(|combo, server, transport| {
        let (object, log) = recorder();
        let claims = Arc::new(parc::remoting::ClaimTable::new());
        parc::remoting::register_claimable(server.objects(), "Recorder", object, &claims);

        let chan = connect(transport, &server.addr());
        let gate = RemoteObject::new(Arc::clone(&chan), "Recorder");
        let alias = gate
            .call(parc::remoting::CLAIM_METHOD, vec![Value::Str("c2".into())])
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        let holder = RemoteObject::new(Arc::clone(&chan), alias);

        // The foreign caller gets its own connection: while its call is
        // parked server-side it would otherwise pin a lock-step channel
        // shut and the release could never be sent.
        let foreign_chan = connect(transport, &server.addr());
        let foreign_done = Arc::new(Mutex::new(false));
        let observer = std::thread::spawn({
            let foreign_done = Arc::clone(&foreign_done);
            let combo = combo.to_string();
            move || {
                let foreign = RemoteObject::new(foreign_chan, "Recorder");
                foreign
                    .call("note", vec![Value::I32(99)])
                    .unwrap_or_else(|e| panic!("[{combo}] parked foreign call failed: {e}"));
                *foreign_done.lock().unwrap() = true;
            }
        });
        // Give the foreign call ample time to park, then prove it has
        // not run: the holder still owns the object.
        std::thread::sleep(Duration::from_millis(60));
        holder.call("note", vec![Value::I32(1)]).unwrap();
        assert!(
            !*foreign_done.lock().unwrap(),
            "[{combo}] foreign call ran while the object was claimed"
        );
        assert_eq!(
            log.lock().unwrap().clone(),
            vec![1],
            "[{combo}] foreign note executed under the claim"
        );
        holder.call(parc::remoting::RELEASE_METHOD, vec![]).unwrap();
        observer.join().expect("observer thread");
        assert_eq!(
            log.lock().unwrap().clone(),
            vec![1, 99],
            "[{combo}] parked call did not run after release"
        );
    });
}

/// `__claim` is idempotent per claim id: a retry (reply lost) re-grants
/// the same alias; a different claim id must wait its turn.
#[test]
fn claim_is_idempotent_per_claim_id_on_every_transport() {
    for_each_mailbox_combo(|combo, server, transport| {
        let (object, _log) = recorder();
        let claims = Arc::new(parc::remoting::ClaimTable::new());
        parc::remoting::register_claimable(server.objects(), "Recorder", object, &claims);

        let chan = connect(transport, &server.addr());
        let gate = RemoteObject::new(Arc::clone(&chan), "Recorder");
        let first = gate
            .call(parc::remoting::CLAIM_METHOD, vec![Value::Str("same".into())])
            .unwrap();
        let second = gate
            .call(parc::remoting::CLAIM_METHOD, vec![Value::Str("same".into())])
            .unwrap_or_else(|e| panic!("[{combo}] idempotent re-claim failed: {e}"));
        assert_eq!(first, second, "[{combo}] re-claim granted a different alias");
        assert_eq!(
            claims.stats().acquired,
            1,
            "[{combo}] idempotent re-claim double-counted the grant"
        );
        let holder = RemoteObject::new(chan, first.as_str().unwrap().to_string());
        holder.call(parc::remoting::RELEASE_METHOD, vec![]).unwrap();
    });
}

// ---------------------------------------------------------------------------
// Property tapes: incremental frame reassembly
// ---------------------------------------------------------------------------

/// Encodes `frames` as one contiguous wire image, returning the byte
/// offsets where each frame ends.
fn wire_image(frames: &[(u64, bool, Vec<u8>)]) -> (Vec<u8>, Vec<usize>) {
    let mut wire = Vec::new();
    let mut ends = Vec::new();
    for (corr_id, oneway, payload) in frames {
        let flags = if *oneway { FLAG_ONEWAY } else { 0 };
        write_frame(&mut wire, *corr_id, flags, payload).unwrap();
        ends.push(wire.len());
    }
    (wire, ends)
}

/// Any chunking of a valid frame stream — byte-at-a-time, giant blocks,
/// ragged boundaries straddling headers and payloads — decodes to the
/// identical frame sequence.
#[test]
fn reassembly_is_invariant_under_arbitrary_chunk_boundaries() {
    Config::cases(96).check(
        |src| {
            let frames = src.vec_of(1..6, |s| {
                let corr_id = s.u64_any();
                let oneway = s.bool_any();
                let payload = s.bytes(0..300);
                (corr_id, oneway, payload)
            });
            let chunk_lens = src.vec_of(1..24, |s| s.usize_in(1..97));
            (frames, chunk_lens)
        },
        |(frames, chunk_lens)| {
            let (wire, _) = wire_image(frames);
            let mut assembler = FrameAssembler::new();
            let mut decoded: Vec<(u64, bool, Vec<u8>)> = Vec::new();
            let mut pos = 0;
            let mut turn = 0;
            while pos < wire.len() {
                let len = chunk_lens[turn % chunk_lens.len()];
                turn += 1;
                let end = (pos + len).min(wire.len());
                assembler
                    .feed(&wire[pos..end], &mut |header, payload| {
                        decoded.push((header.corr_id, header.oneway(), payload.to_vec()));
                    })
                    .expect("valid stream never errors");
                pos = end;
            }
            assert_eq!(decoded.len(), frames.len(), "frame count changed under chunking");
            for (got, want) in decoded.iter().zip(frames.iter()) {
                assert_eq!(got, want, "frame bytes changed under chunking");
            }
            assert!(!assembler.mid_frame(), "assembler left mid-frame after a whole stream");
        },
    );
}

/// A truncated stream yields exactly the frames that are complete in the
/// prefix, and the assembler reports whether the cut fell mid-frame.
#[test]
fn truncation_emits_only_complete_frames_and_is_reported() {
    Config::cases(96).check(
        |src| {
            let frames = src.vec_of(1..5, |s| {
                let corr_id = s.u64_any();
                let oneway = s.bool_any();
                let payload = s.bytes(1..200);
                (corr_id, oneway, payload)
            });
            let cut_fraction = src.f64_unit();
            (frames, cut_fraction)
        },
        |(frames, cut_fraction)| {
            let (wire, ends) = wire_image(frames);
            // Cut strictly inside the stream: at least 1 byte delivered,
            // at least 1 byte withheld.
            let cut = 1 + ((wire.len() - 2) as f64 * cut_fraction) as usize;
            let complete = ends.iter().filter(|&&e| e <= cut).count();
            let mut assembler = FrameAssembler::new();
            let mut decoded = 0usize;
            assembler
                .feed(&wire[..cut], &mut |_, _| decoded += 1)
                .expect("truncation is not an error, just an incomplete state");
            assert_eq!(decoded, complete, "emitted a frame the prefix does not contain");
            let at_boundary = ends.contains(&cut);
            assert_eq!(
                assembler.mid_frame(),
                !at_boundary,
                "mid_frame() must report exactly the cuts inside a frame"
            );
        },
    );
}

/// An oversize length field is rejected the moment the header completes,
/// whatever chunk boundary the header bytes straddle — and frames before
/// it still decode.
#[test]
fn oversize_frame_is_rejected_mid_reassembly() {
    Config::cases(64).check(
        |src| {
            let good_payload = src.bytes(0..64);
            let oversize = MAX_FRAME as u64 + 1 + src.u64_in(0..1024);
            let split = src.usize_in(1..HEADER_LEN);
            (good_payload, oversize, split)
        },
        |(good_payload, oversize, split)| {
            let mut wire = Vec::new();
            write_frame(&mut wire, 7, 0, good_payload).unwrap();
            let good_len = wire.len();
            // A hand-built header claiming an impossible payload length.
            wire.extend_from_slice(&u32::try_from(*oversize).unwrap().to_be_bytes());
            wire.extend_from_slice(&9u64.to_be_bytes());
            wire.push(0);

            let mut assembler = FrameAssembler::new();
            let mut decoded = 0usize;
            // Deliver the good frame plus a partial bad header...
            let first_cut = good_len + split;
            assembler
                .feed(&wire[..first_cut], &mut |_, payload| {
                    assert_eq!(payload, good_payload.as_slice());
                    decoded += 1;
                })
                .expect("header still incomplete: no error yet");
            assert_eq!(decoded, 1, "the complete frame before the bad header must emit");
            assert!(assembler.mid_frame());
            // ...then the rest of the bad header: rejection, mid-stream.
            let err = assembler
                .feed(&wire[first_cut..], &mut |_, _| decoded += 1)
                .expect_err("oversize length must be rejected when the header completes");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
            assert_eq!(decoded, 1, "no frame may emit after the stream is poisoned");
        },
    );
}
