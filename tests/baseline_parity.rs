//! The three stacks must compute the same things: functional parity
//! between C#-remoting, Java-RMI, and MPI implementations of the same
//! small applications (the paper's premise that only *performance*
//! differs).

use std::sync::Arc;

use parc::mpi::{Op, World};
use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::inproc::InprocNetwork;
use parc::remoting::{Activator, RemotingError};
use parc::rmi::unicast::FnRemote;
use parc::rmi::{Naming, Registry, RemoteException, UnicastRemoteObject};
use parc::serial::Value;

/// dot(a, b) on the remoting stack.
fn dot_remoting(a: &[f64], b: &[f64]) -> f64 {
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("calc").unwrap();
    ep.objects().register_singleton(
        "Dot",
        Arc::new(FnInvokable(|_: &str, args: &[Value]| {
            let a = args[0].as_f64_array().ok_or(RemotingError::BadArguments {
                method: "dot".into(),
                detail: "a".into(),
            })?;
            let b = args[1].as_f64_array().ok_or(RemotingError::BadArguments {
                method: "dot".into(),
                detail: "b".into(),
            })?;
            Ok(Value::F64(a.iter().zip(b).map(|(x, y)| x * y).sum()))
        })),
    );
    let proxy = Activator::get_object(&net, "inproc://calc/Dot").unwrap();
    proxy
        .call("dot", vec![Value::F64Array(a.to_vec()), Value::F64Array(b.to_vec())])
        .unwrap()
        .as_f64()
        .unwrap()
}

/// dot(a, b) on the RMI stack.
fn dot_rmi(a: &[f64], b: &[f64]) -> f64 {
    let exports = UnicastRemoteObject::new();
    let obj = exports.export(Arc::new(FnRemote(|_: &str, args: &[Value]| {
        let a = args[0].as_f64_array().ok_or(RemoteException::Unmarshal { detail: "a".into() })?;
        let b = args[1].as_f64_array().ok_or(RemoteException::Unmarshal { detail: "b".into() })?;
        Ok(Value::F64(a.iter().zip(b).map(|(x, y)| x * y).sum()))
    })));
    let naming = Naming::new();
    naming.register_registry("host:1050", Registry::new(exports));
    naming.rebind("rmi://host:1050/Dot", obj).unwrap();
    let stub = naming.lookup("rmi://host:1050/Dot").unwrap();
    stub.call_typed::<f64>(
        "dot",
        vec![Value::F64Array(a.to_vec()), Value::F64Array(b.to_vec())],
    )
    .unwrap()
}

/// dot(a, b) on the MPI stack: scatter + partial dot + reduce.
fn dot_mpi(a: &[f64], b: &[f64]) -> f64 {
    let n_ranks = 4;
    let chunks_a: Vec<Vec<f64>> = split(a, n_ranks);
    let chunks_b: Vec<Vec<f64>> = split(b, n_ranks);
    let outs = World::run(n_ranks, move |comm| {
        let mine_a = &chunks_a[comm.rank()];
        let mine_b = &chunks_b[comm.rank()];
        let partial: f64 = mine_a.iter().zip(mine_b).map(|(x, y)| x * y).sum();
        comm.allreduce_f64(&[partial], Op::Sum).unwrap()[0]
    });
    outs[0]
}

fn split(v: &[f64], parts: usize) -> Vec<Vec<f64>> {
    let mut out = vec![Vec::new(); parts];
    for (i, &x) in v.iter().enumerate() {
        out[i % parts].push(x);
    }
    out
}

#[test]
fn all_three_stacks_agree_on_dot_product() {
    let a: Vec<f64> = (0..64).map(|i| i as f64 * 0.5).collect();
    let b: Vec<f64> = (0..64).map(|i| 64.0 - i as f64).collect();
    let expected: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
    assert!((dot_remoting(&a, &b) - expected).abs() < 1e-9);
    assert!((dot_rmi(&a, &b) - expected).abs() < 1e-9);
    assert!((dot_mpi(&a, &b) - expected).abs() < 1e-9);
}

#[test]
fn rmi_requires_the_five_steps_the_paper_lists() {
    // A lookup without a registered registry fails (step 3 missing)...
    let naming = Naming::new();
    assert!(naming.lookup("rmi://host:1050/Dot").is_err());
    // ...and a stale export fails at call time (step 2 undone).
    let exports = UnicastRemoteObject::new();
    let obj = exports.export(Arc::new(FnRemote(|_: &str, _: &[Value]| Ok(Value::Null))));
    naming.register_registry("host:1050", Registry::new(exports.clone()));
    naming.rebind("rmi://host:1050/Thing", obj).unwrap();
    let stub = naming.lookup("rmi://host:1050/Thing").unwrap();
    assert!(stub.call("m", vec![]).is_ok());
    exports.unexport(obj);
    assert!(matches!(
        stub.call("m", vec![]),
        Err(RemoteException::NoSuchObject { .. })
    ));
}

#[test]
fn mpi_pingpong_carries_the_fig8_payloads() {
    // The actual Fig. 8 payload sweep over the real in-process MPI.
    let out = World::run(2, |comm| {
        let mut echoed = Vec::new();
        if comm.rank() == 0 {
            for size in [1usize, 256, 4096] {
                let payload: Vec<i32> = (0..size as i32).collect();
                comm.send_i32(1, 0, &payload).unwrap();
                let (back, _) = comm.recv_i32(1, 1).unwrap();
                assert_eq!(back, payload);
                echoed.push(back.len());
            }
        } else {
            for _ in 0..3 {
                let (data, _) = comm.recv_i32(0, 0).unwrap();
                comm.send_i32(0, 1, &data).unwrap();
            }
        }
        echoed
    });
    assert_eq!(out[0], vec![1, 256, 4096]);
}
