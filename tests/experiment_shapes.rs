//! Fast smoke versions of every experiment, pinning the qualitative
//! shapes the paper reports (the full harness lives in `parc-bench`'s
//! bench targets).

use parc::bench::fig9::{fig9_curves, LineWork};
use parc::bench::latency::latency_table;
use parc::bench::pingpong::{bandwidth_series, paper_size_axis};
use parc::bench::seqgap::{jit_factor, Vm, Workload};
use parc::bench::stacks::StackModel;

#[test]
fn e1_fig8a_who_wins_and_where() {
    let sizes = paper_size_axis();
    let mpi = bandwidth_series(&StackModel::mpi(), &sizes);
    let rmi = bandwidth_series(&StackModel::java_rmi(), &sizes);
    let mono = bandwidth_series(&StackModel::mono_117_tcp(), &sizes);
    // MPI above everything everywhere; saturating near the 12.5 MB/s wire.
    for i in 0..sizes.len() {
        assert!(mpi[i].mb_per_s >= rmi[i].mb_per_s.max(mono[i].mb_per_s));
    }
    assert!(mpi.last().unwrap().mb_per_s > 11.5);
    // Mono loses to Java RMI only at the large end.
    assert!(mono[0].mb_per_s > rmi[0].mb_per_s);
    assert!(mono.last().unwrap().mb_per_s < rmi.last().unwrap().mb_per_s);
}

#[test]
fn e2_fig8b_mono_progress_and_http_collapse() {
    let sizes = paper_size_axis();
    let tcp_117 = bandwidth_series(&StackModel::mono_117_tcp(), &sizes);
    let tcp_105 = bandwidth_series(&StackModel::mono_105_tcp(), &sizes);
    let http = bandwidth_series(&StackModel::mono_117_http(), &sizes);
    let last = sizes.len() - 1;
    assert!(tcp_117[last].mb_per_s > 4.0 * tcp_105[last].mb_per_s);
    assert!(tcp_117[last].mb_per_s > 4.0 * http[last].mb_per_s);
    assert!(tcp_105[last].mb_per_s > http[last].mb_per_s);
}

#[test]
fn e3_latency_values_and_order() {
    let table = latency_table();
    for row in &table {
        if let Some(paper) = row.paper_us {
            assert!(
                (row.measured_us - paper).abs() / paper < 0.05,
                "{}: {} vs {}",
                row.stack,
                row.measured_us,
                paper
            );
        }
    }
}

#[test]
fn e4_fig9_shape_holds_on_a_small_work_profile() {
    // 500 lines like the paper's image (chunking needs enough tasks for
    // six workers to matter).
    let work = LineWork::uniform(500, 100.0);
    let (parc, java) = fig9_curves(&work);
    // ParC# above Java everywhere; ~1.4x at one processor; gap grows.
    assert!((parc[0] / java[0] - 1.4).abs() < 0.05);
    for p in 0..6 {
        assert!(parc[p] > java[p]);
    }
    assert!(parc[5] / java[5] > parc[0] / java[0]);
    // Java reaches a decent speedup by 6 processors.
    assert!(java[0] / java[5] > 4.0);
}

#[test]
fn e5_vm_gaps() {
    assert_eq!(jit_factor(Vm::Mono, Workload::RayTracer), 1.4);
    assert_eq!(jit_factor(Vm::MsNet, Workload::RayTracer), 1.1);
    assert!((jit_factor(Vm::Mono, Workload::PrimeSieve) - 1.0).abs() < 0.05);
}

#[test]
fn e6_aggregation_reduces_messages() {
    let pts = parc::bench::ablation::aggregation_sweep(&[1, 16], 160);
    assert_eq!(pts[0].messages, 160);
    assert_eq!(pts[1].messages, 10);
}

#[test]
fn e7_agglomeration_removes_remote_creation() {
    let pts = parc::bench::ablation::agglomeration_sweep(&[0.0, 1.0], 12);
    assert_eq!(pts[0].remote, 12);
    assert_eq!(pts[1].remote, 0);
}

#[test]
fn e8_po_overhead_within_noise() {
    let (po, raw) = parc::bench::ablation::platform_overhead(200);
    assert!(po.as_secs_f64() / raw.as_secs_f64() < 2.0);
}
