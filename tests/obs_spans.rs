//! Observability integration tests: span trees recorded across a real
//! remoting round trip, and the disabled path staying perfectly silent.
//!
//! The global recorder is process-wide state, so every test here holds
//! `parc::obs::test_lock()` for its full body.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parc::obs::kinds;
use parc::obs::ring::{Record, SpanRecord};
use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::inproc::InprocNetwork;
use parc::remoting::{ChannelProvider, ObjectUri, RemoteObject};
use parc::serial::Value;

fn adder_proxy() -> (InprocNetwork, parc::remoting::inproc::InprocEndpoint, RemoteObject) {
    let net = InprocNetwork::new();
    let ep = net.create_endpoint("obs-node").unwrap();
    ep.objects().register_singleton(
        "Adder",
        Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
            "add" => Ok(Value::I32(
                args[0].as_i32().unwrap_or(0) + args[1].as_i32().unwrap_or(0),
            )),
            _ => Err(parc::remoting::RemotingError::MethodNotFound {
                object: "Adder".into(),
                method: method.into(),
            }),
        })),
    );
    let uri: ObjectUri = "inproc://obs-node/Adder".parse().unwrap();
    let chan = net.open(&uri).unwrap();
    let proxy = RemoteObject::new(chan, uri.object());
    (net, ep, proxy)
}

/// Collects all span records currently in the ring.
fn spans() -> Vec<SpanRecord> {
    parc::obs::recorder()
        .snapshot()
        .into_iter()
        .filter_map(|r| match r {
            Record::Span(s) => Some(s),
            Record::Event(_) => None,
        })
        .collect()
}

/// Waits (bounded) until at least one span of `kind` is in the ring —
/// the server worker's spans land a hair after the client's call returns.
fn wait_for_kind(kind: &str) -> Vec<SpanRecord> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let all = spans();
        if all.iter().any(|s| s.kind == kind) || Instant::now() > deadline {
            return all;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn disabled_path_records_zero_entries() {
    let _guard = parc::obs::test_lock();
    parc::obs::set_enabled(false);
    parc::obs::reset();

    let (_net, _ep, proxy) = adder_proxy();
    for _ in 0..10 {
        let out = proxy.call("add", vec![Value::I32(2), Value::I32(3)]).unwrap();
        assert_eq!(out, Value::I32(5));
    }
    // Give the server worker a moment: even its trailing work must not
    // record anything while disabled.
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(parc::obs::recorder().snapshot().len(), 0, "disabled run must stay silent");
    assert_eq!(parc::obs::recorder().pushed(), 0);
}

#[test]
fn dispatcher_roundtrip_produces_the_expected_span_tree() {
    let _guard = parc::obs::test_lock();
    parc::obs::set_enabled(true);
    parc::obs::reset();

    let (_net, _ep, proxy) = adder_proxy();
    let out = proxy.call("add", vec![Value::I32(20), Value::I32(22)]).unwrap();
    assert_eq!(out, Value::I32(42));

    let all = wait_for_kind(kinds::REPLY);
    parc::obs::set_enabled(false);

    let call = all
        .iter()
        .find(|s| s.kind == kinds::CALL)
        .expect("client call span recorded");
    assert_eq!(call.depth, 0, "the sync call is the client's top-level span");

    // Client-side children: marshal, send, wait, unmarshal — all nested
    // one level under the call, on the caller's thread, inside its window.
    for kind in [kinds::SERIALIZE, kinds::CHANNEL_SEND, kinds::CHANNEL_RECV, kinds::DESERIALIZE] {
        let child = all
            .iter()
            .find(|s| s.kind == kind && s.tid == call.tid)
            .unwrap_or_else(|| panic!("missing client child span {kind}"));
        assert_eq!(child.depth, 1, "{kind} nests under the call");
        assert!(child.start_ns >= call.start_ns, "{kind} starts inside the call");
        assert!(
            child.start_ns + child.dur_ns <= call.start_ns + call.dur_ns,
            "{kind} ends inside the call"
        );
    }

    // Server-side spans run on a pump/worker thread, not the caller's.
    for kind in [kinds::DISPATCH, kinds::REPLY] {
        let server = all
            .iter()
            .find(|s| s.kind == kind)
            .unwrap_or_else(|| panic!("missing server span {kind}"));
        assert_ne!(server.tid, call.tid, "{kind} happens on the endpoint's thread");
    }
}

#[test]
fn posts_record_send_spans_without_a_recv() {
    let _guard = parc::obs::test_lock();
    parc::obs::set_enabled(true);
    parc::obs::reset();

    let (_net, _ep, proxy) = adder_proxy();
    proxy.post("add", vec![Value::I32(1), Value::I32(1)]).unwrap();
    let all = wait_for_kind(kinds::DISPATCH);
    parc::obs::set_enabled(false);

    assert!(all.iter().any(|s| s.kind == kinds::CHANNEL_SEND));
    let sender_tid = all.iter().find(|s| s.kind == kinds::CHANNEL_SEND).unwrap().tid;
    assert!(
        !all.iter().any(|s| s.kind == kinds::CHANNEL_RECV && s.tid == sender_tid),
        "a one-way post never blocks on a reply"
    );
}
