//! Grain-size adaptation in action: the same fine-grained workload run
//! (a) naively distributed, (b) with static aggregation, and (c) with the
//! adaptive controller deciding — §3.1's two mechanisms made visible.
//!
//! Run with: `cargo run --example grain_adaptation`

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parc::scoopp::{GrainConfig, ParcRuntime};
use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::RemotingError;
use parc::serial::Value;

const CALLS: usize = 5_000;

fn register(rt: &ParcRuntime) {
    rt.register_class("Tally", || {
        let sum = AtomicI64::new(0);
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "add" => {
                sum.fetch_add(
                    i64::from(args.first().and_then(Value::as_i32).unwrap_or(0)),
                    Ordering::Relaxed,
                );
                Ok(Value::Null)
            }
            "total" => Ok(Value::I64(sum.load(Ordering::Relaxed))),
            _ => Err(RemotingError::MethodNotFound {
                object: "Tally".into(),
                method: method.into(),
            }),
        }))
    });
}

fn run(label: &str, grain: GrainConfig) -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = ParcRuntime::builder();
    builder.nodes(2).grain(grain);
    let rt = builder.build()?;
    register(&rt);

    // Warm the adapter with a taste of the (tiny) grain size, as the
    // run-time system would during a first burst.
    if grain.adaptive {
        for _ in 0..32 {
            rt.adapter().observe_call(std::time::Duration::from_nanos(500));
        }
    }

    let po = rt.create("Tally")?;
    let start = Instant::now();
    for i in 0..CALLS {
        po.post("add", vec![Value::I32((i % 7) as i32)])?;
    }
    po.flush()?;
    let total = po.call("total", vec![])?;
    let wall = start.elapsed();
    let expected: i64 = (0..CALLS as i64).map(|i| i % 7).sum();
    assert_eq!(total, Value::I64(expected), "no calls may be lost");

    let s = rt.stats().snapshot();
    println!(
        "{label:<28} placement={:<7} messages={:<6} batches={:<5} calls/msg={:<7.1} wall={wall:?}",
        if po.is_local() { "local" } else { "remote" },
        s.messages_sent,
        s.batches_sent,
        s.calls_per_message(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{CALLS} asynchronous fine-grained calls to one parallel object:\n");
    run("naive (no adaptation)", GrainConfig::default())?;
    run(
        "static aggregation x64",
        GrainConfig { aggregation_factor: 64, ..GrainConfig::default() },
    )?;
    run(
        "adaptive (runtime decides)",
        GrainConfig { adaptive: true, ..GrainConfig::default() },
    )?;
    println!("\nthe adaptive run agglomerates the object (placement=local) and");
    println!("executes calls synchronously in place — parallelism removed at");
    println!("run-time exactly as §3.1 prescribes for grains this fine.");
    Ok(())
}
