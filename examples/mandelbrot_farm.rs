//! Load balancing under skew: the mandelbrot farm with round-robin vs
//! least-loaded placement, validated against the sequential checksum.
//!
//! Run with: `cargo run --release --example mandelbrot_farm [size]`

use std::sync::Arc;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::RemotingError;
use parc::scoopp::{Farm, ParcRuntime, Placement};
use parc::serial::Value;
use parc_apps::mandelbrot::{mandel_checksum, mandel_line, View};

fn run(placement: Placement, size: usize) -> Result<(u64, Vec<i64>), Box<dyn std::error::Error>> {
    let mut builder = ParcRuntime::builder();
    builder.nodes(4).placement(placement);
    let rt = builder.build()?;
    rt.register_class("Mandel", move || {
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "line" => {
                let y = args[0].as_i64().unwrap_or(0) as usize;
                let n = args[1].as_i64().unwrap_or(0) as usize;
                let line = mandel_line(View::default(), n, n, y);
                Ok(Value::I64(line.work as i64))
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Mandel".into(),
                method: method.into(),
            }),
        }))
    });
    let farm = Farm::new(&rt, "Mandel", 4)?;
    let items: Vec<Vec<Value>> =
        (0..size).map(|y| vec![Value::I64(y as i64), Value::I64(size as i64)]).collect();
    let works = farm.map("line", items)?;
    let total: u64 = works.iter().map(|w| w.as_i64().unwrap_or(0) as u64).sum();
    Ok((total, rt.node_loads()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let expected = mandel_checksum(View::default(), size, size);
    println!("sequential {size}x{size} mandelbrot work checksum: {expected}");

    for placement in [Placement::RoundRobin, Placement::LeastLoaded] {
        let (total, loads) = run(placement, size)?;
        println!("farm with {placement}: checksum {total}, per-node objects {loads:?}");
        assert_eq!(total, expected, "farm must agree with the sequential oracle");
    }
    println!("\nboth placements compute the same result; per-line work skew is");
    println!("absorbed by the self-scheduling farm (workers pull the next line).");
    Ok(())
}
