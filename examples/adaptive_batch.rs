//! Closed-loop adaptive call aggregation, end to end.
//!
//! A worker object on a remote node serves cheap-but-not-free calls while
//! the client runs two phases:
//!
//! 1. **drained** — paced posts with an interleaved synchronous probe per
//!    round. Every probe reply piggybacks the server's dispatch depth
//!    (empty queues) and refreshes the RTT EWMA, so the closed-loop
//!    [`BatchController`] grows its target (`batch.grow`);
//! 2. **backlogged** — a producer thread floods one-way posts faster than
//!    the server drains them while probes keep sampling. Now the
//!    piggybacked depth exceeds the (deliberately low) `depth_high`
//!    threshold and the controller halves its target (`batch.shrink`).
//!
//! The run asserts no call was lost either way, prints the controller's
//! grow/shrink counts, and — with `PARC_OBS=1` — writes a Chrome trace to
//! `target/adaptive_batch_trace.json` plus the metrics summary (used by
//! the verification gate to check `batch_flushed` and `batch.shrink`).
//!
//! [`BatchController`]: parc::scoopp::BatchController

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parc::remoting::dispatcher::FnInvokable;
use parc::scoopp::{GrainConfig, ParcRuntime};
use parc::serial::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    parc::obs::init_from_env();
    // Tighten the controller so a short demo run exercises both
    // directions of the loop: a tiny backlog already counts as
    // backpressure, and recovery needs truly drained queues.
    std::env::set_var("PARC_BATCH_DEPTH_HIGH", "4");
    std::env::set_var("PARC_BATCH_DEPTH_LOW", "1");

    let mut builder = ParcRuntime::builder();
    builder.nodes(2).grain(GrainConfig { adaptive: true, ..GrainConfig::default() });
    let runtime = Arc::new(builder.build()?);
    runtime.register_class("Worker", || {
        let done = AtomicI64::new(0);
        Arc::new(FnInvokable(move |method: &str, _args: &[Value]| match method {
            "work" => {
                // Slow enough that a flooding producer outruns the drain.
                std::thread::sleep(Duration::from_micros(100));
                done.fetch_add(1, Ordering::Relaxed);
                Ok(Value::Null)
            }
            "total" => Ok(Value::I64(done.load(Ordering::Relaxed))),
            _ => Err(parc::remoting::RemotingError::MethodNotFound {
                object: "Worker".into(),
                method: method.into(),
            }),
        }))
    });
    let po = Arc::new(runtime.create_on("Worker", 1)?);
    let mut posted: i64 = 0;

    // Phase 1: paced traffic over drained queues. Each probe reply
    // reports depth 0, so the controller grows toward the wire target.
    for _ in 0..12 {
        po.post("work", vec![])?;
        posted += 1;
        po.call("total", vec![])?;
        std::thread::sleep(Duration::from_millis(1));
    }
    let grows = po.batch_controller().grows();
    println!(
        "drained phase: target {} after {} grows",
        po.batch_controller().current(),
        grows
    );
    assert!(grows >= 1, "drained queues must grow the batch target");

    // Phase 2: a producer floods one-ways while probes keep sampling.
    // Posts enqueued behind each in-flight probe show up in its reply's
    // depth report, tripping the backpressure threshold.
    let producing = Arc::new(AtomicBool::new(true));
    let producer = {
        let po = Arc::clone(&po);
        let producing = Arc::clone(&producing);
        std::thread::spawn(move || {
            // Bounded flood: far faster than the ~100µs/call drain rate
            // so a backlog builds, but small enough that the tail drains
            // well inside the sync-call deadline.
            let mut n: i64 = 0;
            for burst in 0..40 {
                for _ in 0..100 {
                    if po.post("work", vec![]).is_err() {
                        producing.store(false, Ordering::Relaxed);
                        return n;
                    }
                    n += 1;
                }
                let _ = burst;
                std::thread::sleep(Duration::from_millis(1));
            }
            producing.store(false, Ordering::Relaxed);
            n
        })
    };
    let mut probes = 0;
    while po.batch_controller().shrinks() == 0 && producing.load(Ordering::Relaxed) {
        po.call("total", vec![])?;
        probes += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    posted += producer.join().expect("producer thread");
    let shrinks = po.batch_controller().shrinks();
    println!(
        "backlogged phase: target {} after {} shrinks ({} probes)",
        po.batch_controller().current(),
        shrinks,
        probes
    );
    assert!(shrinks >= 1, "backpressure must shrink the batch target");

    // No call may be lost to batching, lingering or controller swings.
    po.flush()?;
    let total = po.call("total", vec![])?.as_i64().expect("total is numeric");
    assert_eq!(total, posted, "every posted call must execute");

    let stats = runtime.stats().snapshot();
    println!(
        "traffic: {} async calls became {} wire messages ({} aggregated batches, {:.1} calls/msg)",
        stats.async_calls,
        stats.messages_sent,
        stats.batches_sent,
        stats.calls_per_message(),
    );

    if parc::obs::is_enabled() {
        let trace = "target/adaptive_batch_trace.json";
        parc::obs::export::write_chrome_trace(trace)?;
        println!("\n{}", parc::obs::export::text_summary());
        println!("chrome trace written to {trace} (load in ui.perfetto.dev)");
    }
    Ok(())
}
