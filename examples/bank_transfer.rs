//! Atomic cross-object transfers through multi-object reservations.
//!
//! Four bank accounts live on a two-node runtime. A client moves units
//! between them with `runtime.reserve([from, to])` — both accounts are
//! claimed in canonical order (deadlock-free by construction), the two
//! legs of the transfer run under the claim so no observer can see the
//! units in flight, and the guard releases on scope exit. Every leg is
//! an idempotent `apply(op_id, delta)` so chaos-driven retries land
//! exactly once.
//!
//! Run with: `cargo run --example bank_transfer [transfers]`
//!
//! The interesting run is under fault injection:
//!
//! ```text
//! PARC_OBS=1 PARC_CHAOS="21:drop=0.05,delay=0.3:1" \
//!     cargo run --example bank_transfer
//! ```
//!
//! Dropped frames surface as transport errors and are retried on the
//! claim plane; delayed frames stretch the claim-hold windows. Either
//! way the run must end with the conservation invariant intact — the
//! example prints machine-readable metric lines (`invariant_violations`,
//! `claims_acquired`, `faults_injected`) that `scripts/verify.sh`
//! gate 11 asserts on, and writes a Chrome trace to
//! `target/bank_transfer_trace.json` when `PARC_OBS=1`.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::RemotingError;
use parc::scoopp::{ParcError, ParcRuntime};
use parc::serial::Value;

const ACCOUNTS: usize = 4;
const NODES: usize = 2;

/// An account ledger: `apply(op_id, delta)` is deduplicated by op id so
/// a retried (or duplicated) leg settles exactly once; `get` reads the
/// balance. `__snapshot`/`__restore` keep it migratable.
fn register_account(rt: &ParcRuntime) {
    rt.register_class("Account", || {
        let state = parc_sync::Mutex::new((0i64, HashSet::<String>::new()));
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "apply" => {
                let op = args.first().and_then(Value::as_str).unwrap_or_default().to_string();
                let delta = args.get(1).and_then(Value::as_i64).unwrap_or(0);
                let mut s = state.lock();
                if s.1.insert(op) {
                    s.0 += delta;
                }
                Ok(Value::I64(s.0))
            }
            "get" => Ok(Value::I64(state.lock().0)),
            "__snapshot" => Ok(Value::I64(state.lock().0)),
            "__restore" => {
                state.lock().0 = args.first().and_then(Value::as_i64).unwrap_or(0);
                Ok(Value::Null)
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Account".into(),
                method: method.into(),
            }),
        }))
    });
}

/// Retries `f` through retryable transport faults (chaos drops). The
/// bound turns a real wedge into a loud failure instead of a hang.
fn with_retry<T>(what: &str, mut f: impl FnMut() -> Result<T, ParcError>) -> T {
    let mut last = None;
    for _ in 0..200 {
        match f() {
            Ok(v) => return v,
            Err(ParcError::Remoting(e)) if e.is_retryable() => last = Some(e),
            Err(e) => panic!("{what}: non-retryable failure: {e}"),
        }
    }
    panic!("{what}: still failing after 200 attempts (last: {last:?})");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    parc::obs::init_from_env();
    let transfers: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40);

    // A generous claim lease: chaos delays stretch the hold windows and
    // a mid-transfer expiry would abort legs we want to complete.
    let mut builder = ParcRuntime::builder();
    builder.nodes(NODES).claim_lease_ttl(Duration::from_secs(10));
    let runtime = builder.build()?;
    register_account(&runtime);

    // Creation goes through the chaos-wrapped channels too; a dropped
    // create never reached the factory, so retrying is safe.
    let uris: Vec<String> = (0..ACCOUNTS)
        .map(|i| {
            with_retry("create account", || runtime.create_on("Account", i % NODES))
                .uri()
                .expect("remote uri")
        })
        .collect();
    println!("opened {ACCOUNTS} accounts across {NODES} nodes");

    // Single-threaded on purpose: one client means one deterministic
    // message sequence, so a PARC_CHAOS seed replays the same faults.
    let mut release_failures = 0usize;
    for k in 0..transfers {
        let from = k % ACCOUNTS;
        let to = (from + 1 + k % (ACCOUNTS - 1)) % ACCOUNTS;
        let amount = 1 + (k as i64 % 3);
        let res = with_retry("reserve pair", || {
            runtime.reserve(&[uris[from].as_str(), uris[to].as_str()])
        });
        // Both legs run under the claim — no interleaving client could
        // observe the units in flight. Op ids make retried legs settle
        // exactly once.
        with_retry("debit leg", || {
            res.call_idempotent(
                &uris[from],
                "apply",
                vec![Value::Str(format!("t{k}-debit")), Value::I64(-amount)],
            )
        });
        with_retry("credit leg", || {
            res.call_idempotent(
                &uris[to],
                "apply",
                vec![Value::Str(format!("t{k}-credit")), Value::I64(amount)],
            )
        });
        // A failed release is not a correctness problem — the lease
        // reclaims the claims — but we count it as a health signal.
        if res.release().is_err() {
            release_failures += 1;
        }
    }

    // Read the final balances under one reservation of all four
    // accounts: a consistent snapshot, immune to in-flight transfers by
    // construction (there are none here, but the pattern is the point).
    let all: Vec<&str> = uris.iter().map(String::as_str).collect();
    let audit = with_retry("reserve audit snapshot", || runtime.reserve(&all));
    let balances: Vec<i64> = uris
        .iter()
        .map(|uri| {
            with_retry("read balance", || audit.call_idempotent(uri, "get", vec![]))
                .as_i64()
                .unwrap_or(0)
        })
        .collect();
    let _ = audit.release();

    let total: i64 = balances.iter().sum();
    let violations = usize::from(total != 0);
    let acquired = parc::obs::counter(parc::obs::kinds::CLAIM_ACQUIRED).get();
    let aborted = parc::obs::counter(parc::obs::kinds::CLAIM_ABORTED).get();
    let faults = parc::obs::counter(parc::obs::kinds::FAULT_INJECTED).get();

    println!("final balances {balances:?} (sum {total})");
    println!("bank_transfer: transfers {transfers}");
    println!("bank_transfer: invariant_violations {violations}");
    println!("bank_transfer: claims_acquired {acquired}");
    println!("bank_transfer: claims_aborted {aborted}");
    println!("bank_transfer: release_failures {release_failures}");
    println!("bank_transfer: faults_injected {faults}");
    assert_eq!(total, 0, "transfers created or destroyed units: {balances:?}");

    if parc::obs::is_enabled() {
        let trace = "target/bank_transfer_trace.json";
        parc::obs::export::write_chrome_trace(trace)?;
        println!("\n{}", parc::obs::export::text_summary());
        println!("chrome trace written to {trace} (load in ui.perfetto.dev)");
    }
    Ok(())
}
