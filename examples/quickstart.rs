//! Quickstart: the paper's Fig. 2 "DivideServer", twice over.
//!
//! First over the in-process channel (the one-machine runtime), then over
//! a real TCP loopback socket with the binary formatter — the Mono
//! `TcpChannel` analogue — including the well-known singleton factory
//! registration of `RemotingConfiguration.RegisterWellKnownServiceType`.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use parc::remoting::inproc::InprocNetwork;
use parc::remoting::tcp::{TcpChannelProvider, TcpServerChannel};
use parc::remoting::wellknown::WellKnownObjectMode;
use parc::remoting::{remote_interface, Activator, Invokable, RemotingError};

remote_interface! {
    /// The paper's example service: divides two doubles.
    pub trait Divider, proxy DividerProxy, dispatcher DividerDispatcher {
        fn divide(d1: f64, d2: f64) -> f64;
    }
}

struct DServer;

impl Divider for DServer {
    fn divide(&self, d1: f64, d2: f64) -> Result<f64, RemotingError> {
        if d2 == 0.0 {
            return Err(RemotingError::ServerFault { detail: "divide by zero".into() });
        }
        Ok(d1 / d2)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- in-process channel -------------------------------------------
    let net = InprocNetwork::new();
    let node = net.create_endpoint("node0")?;
    // Well-known singleton factory, exactly like Fig. 2's server Main.
    node.objects().register_well_known(
        "DivideServer",
        WellKnownObjectMode::Singleton,
        || Arc::new(DividerDispatcher(DServer)) as Arc<dyn Invokable>,
    );
    let proxy = DividerProxy::new(Activator::get_object(&net, "inproc://node0/DivideServer")?);
    println!("inproc: 10 / 4 = {}", proxy.divide(10.0, 4.0)?);

    // --- real TCP loopback --------------------------------------------
    let server = TcpServerChannel::bind("127.0.0.1:0")?;
    server.objects().register_well_known(
        "DivideServer",
        WellKnownObjectMode::Singleton,
        || Arc::new(DividerDispatcher(DServer)) as Arc<dyn Invokable>,
    );
    let uri = server.uri_for("DivideServer");
    println!("tcp server listening at {uri}");
    let provider = TcpChannelProvider::new();
    let proxy = DividerProxy::new(Activator::get_object(&provider, &uri)?);
    println!("tcp:    99 / 3 = {}", proxy.divide(99.0, 3.0)?);

    // Faults travel back as errors, not checked exceptions (§2's point).
    match proxy.divide(1.0, 0.0) {
        Err(e) => println!("tcp:    1 / 0 -> error as expected: {e}"),
        Ok(v) => unreachable!("division by zero returned {v}"),
    }
    Ok(())
}
