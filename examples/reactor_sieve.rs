//! The paper's prime sieve rebuilt on the reactor transport: a chain of
//! filter objects hosted on one [`ReactorServerChannel`], each stage
//! forwarding surviving candidates to the next over its own
//! [`ReactorClientChannel`] — so every hop crosses a real nonblocking
//! loopback socket swept by the fixed reactor pool, with zero
//! per-connection threads anywhere in the process.
//!
//! Run with: `cargo run --example reactor_sieve [limit]`
//!
//! Set `PARC_OBS=1` to record spans/events; the run then prints the
//! metrics summary (including the reactor's own `reactor.frames` /
//! `reactor.conns` signals) and writes a Chrome/Perfetto trace to
//! `target/reactor_sieve_trace.json`.

use std::sync::{Arc, Mutex};

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::reactor::{self, ReactorClientChannel, ReactorServerChannel};
use parc::remoting::{ClientChannel, RemoteObject, RemotingError};
use parc::serial::Value;

/// Filter primes: every composite ≤ 11² − 1 has a factor in this set, so
/// candidates surviving all four stages (up to the default limit 120)
/// are exactly the primes above 7.
const FILTER_PRIMES: [i64; 4] = [2, 3, 5, 7];

fn reference_primes(limit: i64) -> Vec<i64> {
    (2..=limit)
        .filter(|&n| (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0))
        .filter(|&n| n > *FILTER_PRIMES.last().unwrap())
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    parc::obs::init_from_env();
    let limit: i64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120);
    assert!(
        limit < 11 * 11,
        "fixed filters {FILTER_PRIMES:?} only sieve correctly below 121"
    );

    let server = ReactorServerChannel::bind("127.0.0.1:0")?;
    let addr = server.local_addr().to_string();
    let found: Arc<Mutex<Vec<i64>>> = Arc::new(Mutex::new(Vec::new()));

    // Build the chain back to front, so each stage can hold a live proxy
    // to its successor: Filter0(2) -> Filter1(3) -> ... -> sink.
    let mut stages: Vec<RemoteObject> = Vec::new();
    let mut next: Option<RemoteObject> = None;
    for (idx, &prime) in FILTER_PRIMES.iter().enumerate().rev() {
        let name = format!("Filter{idx}");
        let forward = next.take();
        let sink = Arc::clone(&found);
        server.objects().register_singleton(
            &name,
            Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
                "candidate" => {
                    let n = args.first().and_then(Value::as_i64).unwrap_or(0);
                    if n % prime != 0 {
                        match &forward {
                            // One-way post: the whole chain is
                            // fire-and-forget, like the paper's
                            // asynchronous sieve.
                            Some(next_stage) => {
                                next_stage.post("candidate", vec![Value::I64(n)])?;
                            }
                            None => sink.lock().unwrap().push(n),
                        }
                    }
                    Ok(Value::Null)
                }
                "drain" => Ok(Value::Null), // sync no-op: per-stage barrier
                _ => Err(RemotingError::MethodNotFound {
                    object: "Filter".into(),
                    method: method.into(),
                }),
            })),
        );
        let chan = Arc::new(ReactorClientChannel::connect(&addr)?) as Arc<dyn ClientChannel>;
        let proxy = RemoteObject::new(chan, name);
        stages.insert(0, proxy.clone());
        next = Some(proxy);
    }
    let head = next.expect("at least one filter stage");

    println!(
        "sieving 2..={limit} through {} reactor-hosted stages ({} reactor threads, {} sockets)",
        FILTER_PRIMES.len(),
        reactor::global().threads(),
        reactor::global().connections(),
    );

    for n in 2..=limit {
        head.post("candidate", vec![Value::I64(n)])?;
    }
    // Drain front to back: each two-way no-op rides the same per-object
    // mailbox as the posts, so it returns only after everything that
    // stage will ever forward has been forwarded.
    for stage in &stages {
        stage.call("drain", vec![])?;
    }

    let mut primes = found.lock().unwrap().clone();
    primes.sort_unstable();
    println!(
        "found {} primes: {:?}{}",
        primes.len(),
        &primes[..primes.len().min(12)],
        if primes.len() > 12 { " ..." } else { "" }
    );
    assert_eq!(primes, reference_primes(limit), "reactor sieve must agree with trial division");

    if parc::obs::is_enabled() {
        let trace = "target/reactor_sieve_trace.json";
        parc::obs::export::write_chrome_trace(trace)?;
        println!("\n{}", parc::obs::export::text_summary());
        println!("chrome trace written to {trace} (load in ui.perfetto.dev)");
    }
    Ok(())
}
