//! Sharded directory end to end: ring placement, a deliberately skewed
//! object population, and the load-driven rebalancer migrating objects
//! off the hot node while clients keep calling.
//!
//! Run with: `cargo run --example ring_rebalance [nodes] [objects]`
//!
//! Every counter object starts on node 0. The rebalancer watches the
//! per-node telemetry, shifts ring weights toward the idle nodes, and
//! live-migrates counters until the cluster is within its hysteresis
//! band — all while the client threads keep incrementing. The example
//! asserts that no increment was lost or reordered across migration.
//!
//! Set `PARC_OBS=1` to record spans/events; the run then prints the
//! metrics summary (including `migration.completed`) and writes a
//! Chrome/Perfetto trace to `target/ring_rebalance_trace.json`.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::RemotingError;
use parc::scoopp::{ParcRuntime, Placement, RebalanceConfig};
use parc::serial::Value;

const CLIENTS: usize = 3;
const INCREMENTS_PER_CLIENT: i64 = 400;

/// A migratable counter: `add` mutates, `total` reads, and the
/// `__snapshot`/`__restore` pair lets the runtime move it between nodes
/// with its state intact.
fn register_counter(rt: &ParcRuntime) {
    rt.register_class("Counter", || {
        let total = AtomicI64::new(0);
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "add" => {
                let delta = args.first().and_then(Value::as_i64).unwrap_or(1);
                Ok(Value::I64(total.fetch_add(delta, Ordering::SeqCst) + delta))
            }
            "total" => Ok(Value::I64(total.load(Ordering::SeqCst))),
            "__snapshot" => Ok(Value::I64(total.load(Ordering::SeqCst))),
            "__restore" => {
                total.store(args.first().and_then(Value::as_i64).unwrap_or(0), Ordering::SeqCst);
                Ok(Value::Null)
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Counter".into(),
                method: method.into(),
            }),
        }))
    });
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    parc::obs::init_from_env();
    let nodes: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let objects: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(9);

    let mut builder = ParcRuntime::builder();
    builder.nodes(nodes).placement(Placement::Ring);
    let runtime = Arc::new(builder.build()?);
    register_counter(&runtime);

    // Skew on purpose: every counter starts on node 0, so the directory
    // sees one hot node and (nodes - 1) idle ones.
    let counters: Vec<_> =
        (0..objects).map(|_| runtime.create_on("Counter", 0)).collect::<Result<_, _>>()?;
    println!(
        "placed {objects} counters on node 0 of {nodes} (ring epoch {})",
        runtime.directory().epoch()
    );

    // Aggressive interval so a short example run converges; production
    // deployments tune this via PARC_REBALANCE_* (see README).
    let cfg = RebalanceConfig {
        interval: Duration::from_millis(5),
        max_migrations_per_round: 2,
        ..RebalanceConfig::from_env()
    };
    let rebalancer = runtime.start_rebalancer(cfg);

    // Clients hammer the counters while the rebalancer works underneath.
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let counters = &counters;
            scope.spawn(move || {
                for i in 0..INCREMENTS_PER_CLIENT {
                    let po = &counters[(c + i as usize * CLIENTS) % counters.len()];
                    po.call("add", vec![Value::I64(1)]).expect("increment");
                }
            });
        }
    });
    rebalancer.stop();

    // Correctness across migration: every increment landed exactly once.
    let grand_total: i64 = counters
        .iter()
        .map(|po| po.call("total", vec![]).expect("total").as_i64().unwrap_or(0))
        .sum();
    let expected = CLIENTS as i64 * INCREMENTS_PER_CLIENT;
    assert_eq!(grand_total, expected, "increments lost or duplicated across migration");

    let loads = runtime.node_loads();
    let migrated = parc::obs::counter(parc::obs::kinds::MIGRATION_COMPLETED).get();
    println!("rebalanced to per-node object counts {loads:?} ({migrated} live migrations)");
    println!("grand total {grand_total} == {expected}: no increment lost across migration");
    assert!(migrated >= 1, "the skewed population must trigger at least one migration");

    if parc::obs::is_enabled() {
        let trace = "target/ring_rebalance_trace.json";
        parc::obs::export::write_chrome_trace(trace)?;
        println!("\n{}", parc::obs::export::text_summary());
        println!("chrome trace written to {trace} (load in ui.perfetto.dev)");
    }
    Ok(())
}
