//! The paper's high-level benchmark: the JGF-style Ray Tracer farmed by
//! image line over SCOOPP workers, validated against the sequential
//! render.
//!
//! Run with: `cargo run --release --example ray_tracer_farm [size]`
//!
//! Set `PARC_OBS=1` to record spans/events; the run then prints the
//! metrics summary and writes a Chrome/Perfetto trace to
//! `target/ray_tracer_farm_trace.json`.

use std::sync::Arc;
use std::time::Instant;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::RemotingError;
use parc::scoopp::{Farm, ParcRuntime};
use parc::serial::Value;
use parc_apps::raytracer::{render_image, render_line, Scene};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    parc::obs::init_from_env();
    let size: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let scene = Scene::jgf(64);

    // Sequential baseline.
    let t0 = Instant::now();
    let reference = render_image(&scene, size, size);
    let seq = t0.elapsed();
    println!("sequential {size}x{size}: checksum {:.2} in {seq:?}", reference.checksum());

    // Farm: one renderer worker per node; each renders requested lines.
    let mut builder = ParcRuntime::builder();
    builder.nodes(4);
    let runtime = builder.build()?;
    let worker_scene = scene.clone();
    runtime.register_class("Renderer", move || {
        let scene = worker_scene.clone();
        Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
            "render_line" => {
                let y = args[0].as_i64().ok_or_else(|| RemotingError::BadArguments {
                    method: "render_line".into(),
                    detail: "expected line index".into(),
                })? as usize;
                let w = args[1].as_i64().unwrap_or(0) as usize;
                let h = args[2].as_i64().unwrap_or(0) as usize;
                let line = render_line(&scene, w, h, y);
                Ok(Value::F64Array(line.pixels))
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "Renderer".into(),
                method: method.into(),
            }),
        }))
    });

    let farm = Farm::new(&runtime, "Renderer", 4)?;
    let items: Vec<Vec<Value>> = (0..size)
        .map(|y| vec![Value::I64(y as i64), Value::I64(size as i64), Value::I64(size as i64)])
        .collect();
    let t0 = Instant::now();
    let lines = farm.map("render_line", items)?;
    let par = t0.elapsed();

    let checksum: f64 = lines
        .iter()
        .map(|l| l.as_f64_array().expect("pixel rows").iter().sum::<f64>())
        .sum();
    println!(
        "farmed    {size}x{size}: checksum {checksum:.2} in {par:?} across {} workers",
        farm.len()
    );
    assert!(
        (checksum - reference.checksum()).abs() < 1e-6,
        "farm must reproduce the sequential image"
    );
    println!(
        "speedup {:.2}x (in-process nodes share this machine's cores)",
        seq.as_secs_f64() / par.as_secs_f64()
    );

    if parc::obs::is_enabled() {
        let trace = "target/ray_tracer_farm_trace.json";
        parc::obs::export::write_chrome_trace(trace)?;
        println!("\n{}", parc::obs::export::text_summary());
        println!("chrome trace written to {trace} (load in ui.perfetto.dev)");
    }
    Ok(())
}
