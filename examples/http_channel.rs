//! The HTTP/SOAP channel end to end — the slow path of Fig. 8b, live.
//!
//! Publishes the divide service over the HTTP-style channel (SOAP text
//! on a real loopback socket) and compares wire sizes against the binary
//! TCP channel for the same call.
//!
//! Run with: `cargo run --example http_channel`

use std::sync::Arc;

use parc::remoting::dispatcher::FnInvokable;
use parc::remoting::http::{HttpChannelProvider, HttpServerChannel};
use parc::remoting::{Activator, CallMessage, RemotingError};
use parc::serial::{BinaryFormatter, SoapFormatter, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let server = HttpServerChannel::bind("127.0.0.1:0")?;
    server.objects().register_singleton(
        "DivideServer",
        Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
            "divide" => Ok(Value::F64(
                args[0].as_f64().unwrap_or(f64::NAN) / args[1].as_f64().unwrap_or(f64::NAN),
            )),
            _ => Err(RemotingError::MethodNotFound {
                object: "DivideServer".into(),
                method: method.into(),
            }),
        })),
    );
    let uri = server.uri_for("DivideServer");
    println!("http server listening at {uri}");

    let provider = HttpChannelProvider::new();
    let proxy = Activator::get_object(&provider, &uri)?;
    let out = proxy.call("divide", vec![Value::F64(355.0), Value::F64(113.0)])?;
    println!("355 / 113 over SOAP = {out}");

    // Why Fig. 8b looks the way it does: the same call, two wire images.
    let msg = CallMessage::new(
        "DivideServer",
        "divide",
        vec![Value::I32Array((0..256).collect())],
    );
    let binary = msg.encode(&BinaryFormatter::new())?.len();
    let soap = msg.encode(&SoapFormatter::new())?.len();
    println!("a 1 KiB-payload call frame: binary/TCP {binary} bytes, SOAP/HTTP {soap} bytes");
    println!("({}x inflation before the wire even sees it)", soap / binary);
    Ok(())
}
