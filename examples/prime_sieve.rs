//! The paper's running example: the prime-number sieve as a pipeline of
//! `PrimeServer` parallel objects (Figs. 4–7), with method-call
//! aggregation enabled.
//!
//! Run with: `cargo run --example prime_sieve [limit] [nodes]`
//!
//! Set `PARC_OBS=1` to record spans/events; the run then prints the
//! metrics summary and writes a Chrome/Perfetto trace to
//! `target/prime_sieve_trace.json`. Set `PARC_OBS_NODE_DIR=<dir>` to
//! additionally write one `trace-<node>.jsonl` file per node, ready for
//! `parc-trace-merge` / `parc-trace-check --cross-node`.

use parc::scoopp::{ParcRuntime, Pipeline};
use parc::serial::Value;
use parc_apps::sieve::{reference_primes, register_prime_filter_class, PRIME_SERVER_CLASS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    parc::obs::init_from_env();
    let limit: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let nodes: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let expected = reference_primes(limit);

    let mut builder = ParcRuntime::builder();
    builder.nodes(nodes).aggregation(16); // Fig. 7's maxCalls = 16
    let runtime = builder.build()?;
    register_prime_filter_class(&runtime);

    // One filter stage per expected prime, spread over the nodes.
    let pipeline = Pipeline::new(&runtime, PRIME_SERVER_CLASS, expected.len(), "connect")?;
    println!(
        "sieving 2..={limit} through {} stages on {} nodes (aggregation 16)",
        pipeline.len(),
        runtime.nodes()
    );

    for candidate in 2..=limit {
        pipeline.feed("process", vec![Value::I32Array(vec![candidate as i32])])?;
    }
    pipeline.flush()?;
    // Drain front to back: a sync no-op per stage is a completion barrier.
    for stage in pipeline.stages() {
        stage.call("drain", vec![])?;
    }

    let primes: Vec<i32> = pipeline
        .stages()
        .iter()
        .filter_map(|s| s.call("prime", vec![]).ok()?.as_i32())
        .collect();
    println!("found {} primes: {:?} ...", primes.len(), &primes[..primes.len().min(12)]);
    assert_eq!(
        primes.iter().map(|&p| p as u32).collect::<Vec<_>>(),
        expected,
        "pipeline must agree with the sequential sieve"
    );

    let stats = runtime.stats().snapshot();
    println!(
        "traffic: {} async calls became {} wire messages ({} aggregated batches, {:.1} calls/msg)",
        stats.async_calls,
        stats.messages_sent,
        stats.batches_sent,
        stats.calls_per_message(),
    );

    if parc::obs::is_enabled() {
        let trace = "target/prime_sieve_trace.json";
        parc::obs::export::write_chrome_trace(trace)?;
        println!("\n{}", parc::obs::export::text_summary());
        println!("chrome trace written to {trace} (load in ui.perfetto.dev)");
        if let Ok(dir) = std::env::var("PARC_OBS_NODE_DIR") {
            let files = parc::obs::export::write_node_jsonl_files(&dir)?;
            println!("{} per-node jsonl files written to {dir} (merge with parc-trace-merge)", files.len());
        }
    }
    Ok(())
}
