#!/usr/bin/env bash
# Runs every bench target and collects the machine-readable reports in
# target/bench-json/BENCH_<name>.json (override the directory with
# PARC_BENCH_JSON_DIR). Pass bench names to run a subset:
#
#   scripts/bench.sh                   # everything
#   scripts/bench.sh obs_overhead      # just the observability costs
#   scripts/bench.sh tcp_concurrency   # mux-vs-lockstep channel speedup
#
# The full run includes tcp_concurrency, whose BENCH_tcp_concurrency.json
# records calls/s for the multiplexed and lock-per-roundtrip TCP clients
# plus their speedup ratio at 4 concurrent callers, and mailbox_scaling,
# whose BENCH_mailbox_scaling.json compares per-object mailbox dispatch
# against the inline reader-thread baseline (speedup_8_objects is the
# acceptance ratio; latency_ratio_mailbox_vs_inline must stay near 1),
# and fault_recovery, whose BENCH_fault_recovery.json records farm call
# throughput before/during/after killing one of three runtime nodes
# mid-run plus the p99 recovery latency from the runtime's own
# recovery.latency histogram (recovery_throughput_ratio is the
# acceptance ratio: post-recovery throughput must stay >= 0.8x
# pre-fault), and tcp_scaling, whose BENCH_tcp_scaling.json sweeps the
# reactor transport against the thread-per-connection mux baseline at
# 1/64/1024 sockets — reactor_vs_mux_64_conns is the acceptance ratio
# (must stay >= 0.9x) and reactor_resident_threads_1024_conns shows the
# fixed-pool thread count while 1024 sockets are live, and
# obs_propagation, whose BENCH_obs_propagation.json prices cross-node
# trace-context injection on the mux call path
# (propagation_vs_recording_calls_ratio is the acceptance ratio: must
# stay >= 0.95, i.e. injection costs <= 5% on top of span recording),
# and rebalance, whose BENCH_rebalance.json compares O(1) ring
# placement against the least-loaded probe scan at 8 nodes
# (create_p99_speedup_ring_vs_scan must stay >= 5x) and measures
# skewed-load throughput before/during/after the rebalancer
# live-migrates the hot node's objects (rebalance_throughput_ratio:
# post-rebalance throughput must stay >= 0.8x the evenly-spread
# baseline, with at least one migration observed), and
# adaptive_batching, whose BENCH_adaptive_batching.json races the
# closed-loop batch controller against fixed batch sizes {1, 8, 64}
# over mux and reactor (uniform_controller_vs_best_fixed must stay
# >= 0.9; bursty_controller_vs_best_fixed, deadline goodput under
# periodic floods, must stay >= 1.5) and pins the flat batch wire
# path >= 1.3x the Value-list encoding at batch size 64
# (flat_vs_list_flush_ratio), and reservations, whose
# BENCH_reservations.json prices multi-object claims against a coarse
# global lock (reservation_ratio_1obj >= 0.5: claim overhead bounded
# at 2x under full contention; reservation_ratio_8obj >= 2.0: disjoint
# compound ops must overlap where the global lock serializes them).
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
    for name in "$@"; do
        cargo bench --offline -p parc-bench --bench "$name"
    done
else
    cargo bench --offline -p parc-bench --benches
fi

dir="${PARC_BENCH_JSON_DIR:-target/bench-json}"
echo
echo "bench reports in ${dir}:"
ls -1 "${dir}" 2>/dev/null || echo "  (none written)"
