#!/usr/bin/env bash
# Hermetic verification: the workspace must build and test offline with
# zero registry dependencies. Run from anywhere; exits non-zero on the
# first violation.
set -euo pipefail

cd "$(dirname "$0")/.."

# Gate 1: no crates.io dependency may reappear in any manifest. Path-only
# dependencies have no `version`/`registry` key, so any of these names in
# a manifest means a registry dep snuck back in.
banned='parking_lot|crossbeam|proptest|criterion|rand'
if grep -rEn "^\s*(${banned})\s*=" Cargo.toml crates/*/Cargo.toml; then
    echo "FAIL: registry dependency found in a manifest (see above)" >&2
    exit 1
fi
# The lockfile must contain only this workspace's own path crates.
if grep -En 'source = "registry' Cargo.lock; then
    echo "FAIL: Cargo.lock references a registry source" >&2
    exit 1
fi
echo "ok: manifests and lockfile are registry-free"

# Gate 2: everything builds and tests with the network forbidden.
cargo build --release --offline
cargo test -q --offline --workspace
echo "ok: offline build + test passed"

# Gate 3: observability smoke test. A traced sieve run must record
# aggregation activity (batch_flushed events in the metrics summary) and
# produce a structurally valid Chrome trace.
obs_out=$(PARC_OBS=1 cargo run --release --offline -q --example prime_sieve 2>&1)
batch_flushed=$(printf '%s\n' "$obs_out" | awk '$1 == "batch_flushed" { print $2 }')
if [ -z "${batch_flushed}" ] || [ "${batch_flushed}" -eq 0 ]; then
    printf '%s\n' "$obs_out" >&2
    echo "FAIL: traced sieve run recorded no batch_flushed events" >&2
    exit 1
fi
cargo run --release --offline -q -p parc-obs --bin parc-trace-check -- \
    target/prime_sieve_trace.json --min-events 10
echo "ok: obs smoke test passed (${batch_flushed} batch_flushed events, trace valid)"

# Gate 4: failure injection against the multiplexed TCP channel. Dead
# servers must surface as transport/timeout errors promptly — the mux
# reader thread has to fail pending and future calls when its connection
# breaks, not leave callers parked until the 30 s reply deadline.
cargo test -q --offline --test failure_injection
echo "ok: failure injection passes against the multiplexed channel"

# Gate 5: mailbox dispatch. The suite proves per-object FIFO under
# concurrent clients, cross-object overlap, stalled-object isolation, and
# — the obs smoke half — that dispatch.mailbox_wait samples and
# dispatch.steal events are actually non-zero under load.
cargo test -q --offline --test mailbox_dispatch
echo "ok: mailbox dispatch suite passes (ordering, isolation, obs signals)"

# Gate 6: chaos + recovery. Gate 4's suite already proves the seeded
# in-process chaos properties (exactly-once idempotent retries,
# at-most-once plain calls, same-seed => identical fault traces, node
# kills mid-run). This gate exercises the *env-var* chaos path end to
# end: a traced sieve run under PARC_CHAOS must actually inject faults
# (fault.injected > 0 in the metrics summary), still produce the correct
# primes (the example asserts them), and emit a structurally valid
# trace. Two fixed seeds, so a plan that only ever injects at one
# specific seed can't sneak through. Delay faults only: the sieve's
# one-way posts have no retry path, so lossy faults would (correctly)
# change its output.
for seed in 11 12; do
    chaos_out=$(PARC_OBS=1 PARC_CHAOS="${seed}:delay=0.4:1" \
        cargo run --release --offline -q --example prime_sieve 2>&1)
    injected=$(printf '%s\n' "$chaos_out" | awk '$1 == "fault.injected" { print $2 }')
    if [ -z "${injected}" ] || [ "${injected}" -eq 0 ]; then
        printf '%s\n' "$chaos_out" >&2
        echo "FAIL: chaos run (seed ${seed}) injected no faults" >&2
        exit 1
    fi
    cargo run --release --offline -q -p parc-obs --bin parc-trace-check -- \
        target/prime_sieve_trace.json --min-events 10
    echo "ok: chaos sieve run (seed ${seed}) injected ${injected} faults, output correct, trace valid"
done

# Gate 7: reactor transport. The conformance suite proves the
# readiness-driven transport is semantically identical to the
# thread-per-connection baselines (FIFO ordering, one-way/two-way
# interleaving, reply-by-correlation-ID, poison-on-death, unknown-frame
# tolerance) across every transport x dispatch combination. Then a
# traced sieve run hosted entirely over reactor sockets must actually
# push frames through the reactor (reactor.frames > 0 in the metrics
# summary), compute the correct primes (the example asserts them), and
# emit a structurally valid Chrome trace.
cargo test -q --offline --test transport_conformance
reactor_out=$(PARC_OBS=1 cargo run --release --offline -q --example reactor_sieve 2>&1)
reactor_frames=$(printf '%s\n' "$reactor_out" | awk '$1 == "reactor.frames" { print $2 }')
if [ -z "${reactor_frames}" ] || [ "${reactor_frames}" -eq 0 ]; then
    printf '%s\n' "$reactor_out" >&2
    echo "FAIL: traced reactor sieve run pushed no frames through the reactor" >&2
    exit 1
fi
cargo run --release --offline -q -p parc-obs --bin parc-trace-check -- \
    target/reactor_sieve_trace.json --min-events 10
echo "ok: reactor transport passes (conformance suite, ${reactor_frames} reactor frames, trace valid)"

# Gate 8: cross-node distributed tracing. A traced 3-node sieve writes
# one JSONL trace file per node; parc-trace-merge must join them into a
# single Chrome trace, and parc-trace-check --cross-node must prove the
# causal graph: span ids unique, every remote dispatch parented under
# the originating client's send, parent links acyclic and ordered
# within clock skew, and at least one dispatch edge actually crossing a
# node boundary.
node_dir=target/obs-nodes
rm -rf "${node_dir}"
PARC_OBS=1 PARC_OBS_NODE_DIR="${node_dir}" \
    cargo run --release --offline -q --example prime_sieve -- 200 3 >/dev/null
jsonl_count=$(ls "${node_dir}"/*.jsonl 2>/dev/null | wc -l)
if [ "${jsonl_count}" -lt 3 ]; then
    echo "FAIL: traced 3-node sieve wrote only ${jsonl_count} per-node jsonl files" >&2
    exit 1
fi
cargo run --release --offline -q -p parc-obs --bin parc-trace-merge -- \
    "${node_dir}" -o target/merged_trace.json
cargo run --release --offline -q -p parc-obs --bin parc-trace-check -- \
    target/merged_trace.json --cross-node --min-events 100
echo "ok: cross-node tracing passed (${jsonl_count} node files merged, causal graph valid)"

# Gate 9: sharded directory + live migration. The property suite proves
# the consistent-hash ring (deterministic seeded lookup, minimal
# remapping on node death, epoch safety, bounded-memory resolution at
# 1M keys) and the migration suite proves state transfer, forwarding,
# proxy repointing, clean aborts, and per-client FIFO across a mid-run
# migration. Then a traced skewed run must observe the rebalancer
# actually live-migrate objects (migration.completed > 0 in the metrics
# summary, the example also asserts no increment was lost) and emit a
# structurally valid Chrome trace.
cargo test -q --offline --test directory_properties
cargo test -q --offline --test migration
rebalance_out=$(PARC_OBS=1 cargo run --release --offline -q --example ring_rebalance 2>&1)
migrations=$(printf '%s\n' "$rebalance_out" | awk '$1 == "migration.completed" { print $2 }')
if [ -z "${migrations}" ] || [ "${migrations}" -eq 0 ]; then
    printf '%s\n' "$rebalance_out" >&2
    echo "FAIL: traced skewed run completed no live migrations" >&2
    exit 1
fi
cargo run --release --offline -q -p parc-obs --bin parc-trace-check -- \
    target/ring_rebalance_trace.json --min-events 10
echo "ok: sharded directory passed (ring + migration suites, ${migrations} live migrations, trace valid)"

# Gate 10: closed-loop adaptive aggregation. A traced adaptive run must
# ship aggregate messages (batch_flushed > 0), and the batch controller
# must actually close the loop in both directions — the example asserts
# at least one grow over drained queues, and the metrics summary must
# show at least one shrink under backlog (batch.shrink > 0). The trace
# must stay structurally valid.
adaptive_out=$(PARC_OBS=1 cargo run --release --offline -q --example adaptive_batch 2>&1)
flushed=$(printf '%s\n' "$adaptive_out" | awk '$1 == "batch_flushed" { print $2 }')
shrinks=$(printf '%s\n' "$adaptive_out" | awk '$1 == "batch.shrink" { print $2 }')
if [ -z "${flushed}" ] || [ "${flushed}" -eq 0 ]; then
    printf '%s\n' "$adaptive_out" >&2
    echo "FAIL: adaptive run shipped no aggregate messages" >&2
    exit 1
fi
if [ -z "${shrinks}" ] || [ "${shrinks}" -eq 0 ]; then
    printf '%s\n' "$adaptive_out" >&2
    echo "FAIL: adaptive run never shrank the batch target under backlog" >&2
    exit 1
fi
cargo run --release --offline -q -p parc-obs --bin parc-trace-check -- \
    target/adaptive_batch_trace.json --min-events 10
echo "ok: adaptive aggregation passed (${flushed} flushes, ${shrinks} controller shrinks, trace valid)"

# Gate 11: multi-object reservations. The integration suite proves
# deadlock freedom under adversarial acquisition orders (canonical-order
# claims), conservation + same-seed replay under per-client seeded chaos,
# lease reclaim of leaked claims, fencing of stalled holders, the
# never-split migration interaction, and the dropped-guard-during-failover
# regression. Then the bank-transfer example runs under two fixed
# PARC_CHAOS seeds (drops + delays on every channel): faults must
# actually be injected, the claim plane must be exercised
# (claim.acquired > 0), the conservation invariant must hold
# (invariant_violations == 0 — the example also asserts it), and the
# trace must stay structurally valid.
cargo test -q --offline --test reservations
for seed in 21 22; do
    bank_out=$(PARC_OBS=1 PARC_CHAOS="${seed}:drop=0.05,delay=0.3:1" \
        cargo run --release --offline -q --example bank_transfer 2>&1)
    bank_injected=$(printf '%s\n' "$bank_out" | awk '$1 == "fault.injected" { print $2 }')
    bank_claims=$(printf '%s\n' "$bank_out" | awk '$1 == "claim.acquired" { print $2 }')
    violations=$(printf '%s\n' "$bank_out" \
        | awk '$1 == "bank_transfer:" && $2 == "invariant_violations" { print $3 }')
    if [ -z "${bank_injected}" ] || [ "${bank_injected}" -eq 0 ]; then
        printf '%s\n' "$bank_out" >&2
        echo "FAIL: chaos bank-transfer run (seed ${seed}) injected no faults" >&2
        exit 1
    fi
    if [ -z "${bank_claims}" ] || [ "${bank_claims}" -eq 0 ]; then
        printf '%s\n' "$bank_out" >&2
        echo "FAIL: chaos bank-transfer run (seed ${seed}) acquired no claims" >&2
        exit 1
    fi
    if [ "${violations:-1}" -ne 0 ]; then
        printf '%s\n' "$bank_out" >&2
        echo "FAIL: chaos bank-transfer run (seed ${seed}) violated conservation" >&2
        exit 1
    fi
    cargo run --release --offline -q -p parc-obs --bin parc-trace-check -- \
        target/bank_transfer_trace.json --min-events 10
    echo "ok: chaos bank transfer (seed ${seed}) injected ${bank_injected} faults, ${bank_claims} claims, conserved, trace valid"
done
