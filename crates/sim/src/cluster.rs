//! Cluster model: nodes (CPU cores + thread pool + relative speed) wired by
//! point-to-point links.
//!
//! The default shape matches the paper's testbed: dual-core nodes (dual
//! Athlon MP 1800+) on 100 Mbit switched Ethernet. The per-node
//! `speed_factor` models the virtual-machine tax the paper measures: a
//! `1.4` factor reproduces "the C# sequential execution time in this
//! particular application is 40% superior to the Java version" under Mono.

use std::collections::HashMap;

use crate::link::Link;
use crate::queue::MultiServer;
use crate::threadpool::ThreadPoolModel;
use crate::time::SimTime;

/// Static description of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Number of CPU cores.
    pub cores: usize,
    /// Compute-time multiplier relative to the reference machine
    /// (1.0 = reference; 1.4 = Mono's Ray-Tracer JIT tax).
    pub speed_factor: f64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        // Dual Athlon MP 1800+ at reference speed.
        NodeSpec { cores: 2, speed_factor: 1.0 }
    }
}

/// A simulated node: cores plus a managed thread pool.
#[derive(Debug, Clone)]
pub struct Node {
    id: usize,
    spec: NodeSpec,
    /// CPU cores as a FIFO multi-server queue.
    pub cpus: MultiServer,
    /// The runtime's managed thread pool on this node.
    pub pool: ThreadPoolModel,
}

impl Node {
    /// Node identifier (index in the cluster).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's static description.
    pub fn spec(&self) -> NodeSpec {
        self.spec
    }

    /// Scales an abstract compute demand (measured on the reference
    /// machine) to this node's speed.
    pub fn service_time(&self, reference: SimTime) -> SimTime {
        reference.scale(self.spec.speed_factor)
    }
}

/// Builder for [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    specs: Vec<NodeSpec>,
    latency: SimTime,
    bytes_per_sec: f64,
    pool_template: Option<ThreadPoolModel>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterBuilder {
    /// Starts a builder with the paper's wire defaults (100 Mbit Ethernet,
    /// 50 µs propagation) and no nodes.
    pub fn new() -> Self {
        ClusterBuilder {
            specs: Vec::new(),
            latency: SimTime::from_micros(50),
            bytes_per_sec: 12.5e6,
            pool_template: None,
        }
    }

    /// Adds `n` identical nodes.
    pub fn nodes(&mut self, n: usize, spec: NodeSpec) -> &mut Self {
        self.specs.extend(std::iter::repeat_n(spec, n));
        self
    }

    /// Adds one node.
    pub fn node(&mut self, spec: NodeSpec) -> &mut Self {
        self.specs.push(spec);
        self
    }

    /// Sets the one-way link propagation latency.
    pub fn link_latency(&mut self, latency: SimTime) -> &mut Self {
        self.latency = latency;
        self
    }

    /// Sets the link bandwidth in bytes per second.
    pub fn bandwidth(&mut self, bytes_per_sec: f64) -> &mut Self {
        self.bytes_per_sec = bytes_per_sec;
        self
    }

    /// Uses `pool` (cloned) as every node's thread pool instead of the
    /// per-node Mono default.
    pub fn thread_pool(&mut self, pool: ThreadPoolModel) -> &mut Self {
        self.pool_template = Some(pool);
        self
    }

    /// Builds the cluster.
    ///
    /// # Panics
    ///
    /// Panics if no nodes were added or a node has zero cores.
    pub fn build(&self) -> Cluster {
        assert!(!self.specs.is_empty(), "cluster needs at least one node");
        let nodes = self
            .specs
            .iter()
            .enumerate()
            .map(|(id, &spec)| Node {
                id,
                spec,
                cpus: MultiServer::new(spec.cores),
                pool: self
                    .pool_template
                    .clone()
                    .unwrap_or_else(|| ThreadPoolModel::mono_default(spec.cores)),
            })
            .collect();
        Cluster {
            nodes,
            latency: self.latency,
            bytes_per_sec: self.bytes_per_sec,
            links: HashMap::new(),
        }
    }
}

/// A set of nodes plus lazily materialized directed links.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    latency: SimTime,
    bytes_per_sec: f64,
    links: HashMap<(usize, usize), Link>,
}

impl Cluster {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster is empty (never true for a built cluster).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Mutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_mut(&mut self, id: usize) -> &mut Node {
        &mut self.nodes[id]
    }

    /// Iterates over nodes.
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// The directed link from `from` to `to`, materializing it on first use.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or `from == to` (local
    /// calls never touch the wire — the runtime must special-case them,
    /// exactly the paper's intra-grain fast path).
    pub fn link_mut(&mut self, from: usize, to: usize) -> &mut Link {
        assert!(from < self.nodes.len() && to < self.nodes.len(), "link endpoint out of range");
        assert_ne!(from, to, "loopback has no simulated link");
        let (latency, bw) = (self.latency, self.bytes_per_sec);
        self.links.entry((from, to)).or_insert_with(|| Link::new(latency, bw))
    }

    /// Total bytes carried over all materialized links.
    pub fn total_bytes_on_wire(&self) -> u64 {
        self.links.values().map(Link::bytes_carried).sum()
    }

    /// Total messages carried over all materialized links.
    pub fn total_messages_on_wire(&self) -> u64 {
        self.links.values().map(Link::messages_carried).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn six_node_cluster() -> Cluster {
        let mut b = ClusterBuilder::new();
        b.nodes(6, NodeSpec::default());
        b.build()
    }

    #[test]
    fn builder_creates_requested_nodes() {
        let c = six_node_cluster();
        assert_eq!(c.len(), 6);
        assert!(!c.is_empty());
        assert_eq!(c.node(0).spec().cores, 2);
        assert_eq!(c.node(5).id(), 5);
    }

    #[test]
    fn speed_factor_scales_service_time() {
        let mut b = ClusterBuilder::new();
        b.node(NodeSpec { cores: 1, speed_factor: 1.4 });
        let c = b.build();
        assert_eq!(
            c.node(0).service_time(SimTime::from_secs(10)),
            SimTime::from_secs(14)
        );
    }

    #[test]
    fn links_are_directional_and_lazy() {
        let mut c = six_node_cluster();
        assert_eq!(c.total_messages_on_wire(), 0);
        c.link_mut(0, 1).transmit(SimTime::ZERO, 100);
        c.link_mut(1, 0).transmit(SimTime::ZERO, 200);
        assert_eq!(c.total_bytes_on_wire(), 300);
        assert_eq!(c.total_messages_on_wire(), 2);
        // Directions do not share a busy horizon.
        let fwd = c.link_mut(0, 1).transmit(SimTime::ZERO, 100);
        assert_eq!(fwd.wire_free, c.link_mut(0, 1).serialization_time(200));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_link_panics() {
        let mut c = six_node_cluster();
        c.link_mut(2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut c = six_node_cluster();
        c.link_mut(0, 99);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        ClusterBuilder::new().build();
    }

    #[test]
    fn custom_pool_template_is_cloned_per_node() {
        let mut b = ClusterBuilder::new();
        b.nodes(2, NodeSpec::default());
        b.thread_pool(ThreadPoolModel::new(4, 8, SimTime::from_millis(1)));
        let c = b.build();
        assert_eq!(c.node(0).pool.threads(), 4);
        assert_eq!(c.node(1).pool.threads(), 4);
    }

    #[test]
    fn default_spec_is_dual_core_reference() {
        let spec = NodeSpec::default();
        assert_eq!(spec.cores, 2);
        assert_eq!(spec.speed_factor, 1.0);
    }
}
