//! Mono-style bounded thread pool with slow thread injection.
//!
//! The paper attributes ParC#'s poor Ray Tracer scaling to the Mono thread
//! pool: *"the Mono implementation uses a thread pool to reduce the thread
//! creation cost; however limiting the number of running threads in
//! parallel applications reduces the overlap among computation and
//! communication and also produces starvation in some application
//! threads."* This model reproduces that behaviour:
//!
//! * `core_threads` are available immediately;
//! * when all threads are busy and a work item arrives, a new thread is
//!   *injected* only after `injection_delay` (and only up to
//!   `max_threads`), so bursts of asynchronous remote calls queue up;
//! * items beyond `max_threads` starve in the queue until a thread frees.
//!
//! Like [`crate::MultiServer`], this is a pure state machine: the caller
//! schedules injection and completion events on the engine.

use std::collections::VecDeque;

use crate::queue::{Job, Started};
use crate::time::SimTime;

/// Result of offering a work item to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offered {
    /// The item started immediately on an idle thread.
    Started(Started),
    /// The item queued. If `injection_at` is `Some`, the pool armed a
    /// thread-injection timer and the caller must invoke
    /// [`ThreadPoolModel::inject`] at that instant.
    Queued {
        /// When the pending injection fires, if one was armed by this offer.
        injection_at: Option<SimTime>,
    },
}

/// Bounded thread pool with delayed growth.
#[derive(Debug, Clone)]
pub struct ThreadPoolModel {
    max_threads: usize,
    injection_delay: SimTime,
    threads: usize,
    busy: usize,
    injection_armed: bool,
    waiting: VecDeque<(Job, SimTime)>,
    total_queue_wait: SimTime,
    starved_starts: u64,
    peak_queue: usize,
}

impl ThreadPoolModel {
    /// Creates a pool.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < core_threads <= max_threads`.
    pub fn new(core_threads: usize, max_threads: usize, injection_delay: SimTime) -> Self {
        assert!(core_threads > 0, "pool needs at least one core thread");
        assert!(core_threads <= max_threads, "core threads exceed max");
        ThreadPoolModel {
            max_threads,
            injection_delay,
            threads: core_threads,
            busy: 0,
            injection_armed: false,
            waiting: VecDeque::new(),
            total_queue_wait: SimTime::ZERO,
            starved_starts: 0,
            peak_queue: 0,
        }
    }

    /// The Mono 1.1.x default shape used by the Fig. 9 model: one core
    /// thread per CPU, a small cap, and ~500 ms injection.
    pub fn mono_default(cpus: usize) -> Self {
        ThreadPoolModel::new(cpus.max(1), cpus.max(1) + 2, SimTime::from_millis(500))
    }

    /// Threads created so far.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Threads currently running a work item.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Work items waiting for a thread.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Largest queue observed.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Sum of time work items spent queued before starting.
    pub fn total_queue_wait(&self) -> SimTime {
        self.total_queue_wait
    }

    /// Number of items that had to wait before starting (starvation count).
    pub fn starved_starts(&self) -> u64 {
        self.starved_starts
    }

    /// True when nothing is running or waiting.
    pub fn is_idle(&self) -> bool {
        self.busy == 0 && self.waiting.is_empty()
    }

    fn start(&mut self, now: SimTime, job: Job, queued_at: SimTime) -> Started {
        self.busy += 1;
        if now > queued_at {
            self.total_queue_wait += now - queued_at;
            self.starved_starts += 1;
        }
        Started { job, start: now }
    }

    /// Offers a work item at `now`.
    pub fn offer(&mut self, now: SimTime, job: Job) -> Offered {
        if self.busy < self.threads {
            return Offered::Started(self.start(now, job, now));
        }
        self.waiting.push_back((job, now));
        self.peak_queue = self.peak_queue.max(self.waiting.len());
        let injection_at = if !self.injection_armed && self.threads < self.max_threads {
            self.injection_armed = true;
            Some(now + self.injection_delay)
        } else {
            None
        };
        Offered::Queued { injection_at }
    }

    /// Fires a previously armed injection timer: grows the pool by one
    /// thread, possibly starting a queued item, and possibly re-arming.
    ///
    /// Returns `(started_item, next_injection_at)`.
    ///
    /// # Panics
    ///
    /// Panics if no injection was armed — a caller wiring bug.
    pub fn inject(&mut self, now: SimTime) -> (Option<Started>, Option<SimTime>) {
        assert!(self.injection_armed, "inject called with no armed injection");
        self.injection_armed = false;
        if self.threads < self.max_threads {
            self.threads += 1;
        }
        let started = if self.busy < self.threads {
            self.waiting
                .pop_front()
                .map(|(job, queued_at)| self.start(now, job, queued_at))
        } else {
            None
        };
        let next = if !self.waiting.is_empty() && self.threads < self.max_threads {
            self.injection_armed = true;
            Some(now + self.injection_delay)
        } else {
            None
        };
        (started, next)
    }

    /// Records a work-item completion; a queued item may start.
    ///
    /// # Panics
    ///
    /// Panics if nothing was running.
    pub fn complete(&mut self, now: SimTime) -> Option<Started> {
        assert!(self.busy > 0, "completion with no running work item");
        self.busy -= 1;
        if self.busy < self.threads {
            if let Some((job, queued_at)) = self.waiting.pop_front() {
                return Some(self.start(now, job, queued_at));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn job(id: u64) -> Job {
        Job::new(id, ms(10))
    }

    #[test]
    fn core_threads_start_immediately() {
        let mut pool = ThreadPoolModel::new(2, 4, ms(500));
        assert!(matches!(pool.offer(ms(0), job(1)), Offered::Started(_)));
        assert!(matches!(pool.offer(ms(0), job(2)), Offered::Started(_)));
        assert_eq!(pool.busy(), 2);
    }

    #[test]
    fn overflow_arms_injection_once() {
        let mut pool = ThreadPoolModel::new(1, 4, ms(500));
        pool.offer(ms(0), job(1));
        let o2 = pool.offer(ms(0), job(2));
        assert_eq!(o2, Offered::Queued { injection_at: Some(ms(500)) });
        // A third offer does not double-arm.
        let o3 = pool.offer(ms(1), job(3));
        assert_eq!(o3, Offered::Queued { injection_at: None });
    }

    #[test]
    fn injection_grows_pool_and_starts_queued_item() {
        let mut pool = ThreadPoolModel::new(1, 4, ms(500));
        pool.offer(ms(0), job(1));
        pool.offer(ms(0), job(2));
        pool.offer(ms(0), job(3));
        let (started, next) = pool.inject(ms(500));
        let started = started.unwrap();
        assert_eq!(started.job.id, 2);
        assert_eq!(started.start, ms(500));
        // Item 3 still waits; another injection was armed.
        assert_eq!(next, Some(ms(1000)));
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.queue_len(), 1);
    }

    #[test]
    fn pool_never_exceeds_max_threads() {
        let mut pool = ThreadPoolModel::new(1, 2, ms(100));
        pool.offer(ms(0), job(1));
        pool.offer(ms(0), job(2));
        pool.offer(ms(0), job(3));
        let (_, next) = pool.inject(ms(100));
        assert_eq!(pool.threads(), 2);
        // Queue is non-empty but pool is at max: no re-arm.
        assert_eq!(next, None);
        assert_eq!(pool.queue_len(), 1);
        // Item 3 only starts when a thread frees.
        let started = pool.complete(ms(200)).unwrap();
        assert_eq!(started.job.id, 3);
    }

    #[test]
    fn starvation_metrics_accumulate() {
        let mut pool = ThreadPoolModel::new(1, 1, ms(100));
        pool.offer(ms(0), job(1));
        pool.offer(ms(0), job(2)); // no injection possible: max=1
        assert_eq!(pool.offer(ms(0), job(3)), Offered::Queued { injection_at: None });
        pool.complete(ms(50)).unwrap();
        pool.complete(ms(90)).unwrap();
        assert_eq!(pool.starved_starts(), 2);
        assert_eq!(pool.total_queue_wait(), ms(50 + 90));
    }

    #[test]
    fn completion_prefers_queue_over_shrinking() {
        let mut pool = ThreadPoolModel::new(2, 2, ms(100));
        pool.offer(ms(0), job(1));
        pool.offer(ms(0), job(2));
        pool.offer(ms(0), job(3));
        assert!(pool.complete(ms(10)).is_some());
        assert_eq!(pool.busy(), 2);
        assert!(pool.complete(ms(20)).is_none());
        assert_eq!(pool.busy(), 1);
    }

    #[test]
    #[should_panic(expected = "no armed injection")]
    fn unarmed_injection_panics() {
        let mut pool = ThreadPoolModel::new(1, 2, ms(1));
        pool.inject(ms(0));
    }

    #[test]
    #[should_panic(expected = "core threads exceed max")]
    fn bad_shape_panics() {
        let _ = ThreadPoolModel::new(3, 2, ms(1));
    }

    #[test]
    fn mono_default_has_small_cap() {
        let pool = ThreadPoolModel::mono_default(2);
        assert_eq!(pool.threads(), 2);
        assert!(pool.max_threads >= 2);
    }
}
