//! FIFO multi-server queue — the model of a node's CPU cores.
//!
//! [`MultiServer`] is a *pure state machine*: it never touches the event
//! engine. The cluster model offers jobs and is told when each job starts;
//! it is then responsible for scheduling the completion event and calling
//! [`MultiServer::complete`], which may hand back the next queued job.
//! Keeping the resource pure makes it directly unit-testable and keeps the
//! engine generic.

use std::collections::VecDeque;

use crate::time::SimTime;

/// A unit of work offered to a server pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Caller-assigned identifier, returned on start/completion.
    pub id: u64,
    /// Service demand (already scaled by any CPU-speed factor).
    pub service: SimTime,
}

impl Job {
    /// Creates a job.
    pub fn new(id: u64, service: SimTime) -> Job {
        Job { id, service }
    }
}

/// A job admitted to service, with its computed start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Started {
    /// The admitted job.
    pub job: Job,
    /// Virtual time at which service began.
    pub start: SimTime,
}

/// `k`-server FIFO queue.
#[derive(Debug, Clone)]
pub struct MultiServer {
    capacity: usize,
    busy: usize,
    waiting: VecDeque<(Job, SimTime)>,
    /// Total busy time accumulated (for utilisation reporting).
    busy_time: SimTime,
    peak_queue: usize,
}

impl MultiServer {
    /// Creates a pool with `capacity` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MultiServer {
        assert!(capacity > 0, "server pool needs at least one server");
        MultiServer {
            capacity,
            busy: 0,
            waiting: VecDeque::new(),
            busy_time: SimTime::ZERO,
            peak_queue: 0,
        }
    }

    /// Number of parallel servers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Servers currently serving a job.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Jobs waiting for a free server.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Largest queue length observed.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Aggregate time servers have spent busy.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Offers a job at time `now`. If a server is free the job starts
    /// immediately and is returned; otherwise it queues.
    pub fn offer(&mut self, now: SimTime, job: Job) -> Option<Started> {
        if self.busy < self.capacity {
            self.busy += 1;
            self.busy_time += job.service;
            Some(Started { job, start: now })
        } else {
            self.waiting.push_back((job, now));
            self.peak_queue = self.peak_queue.max(self.waiting.len());
            None
        }
    }

    /// Records a job completion at time `now`; if a job was waiting it is
    /// started and returned (the caller schedules its completion).
    ///
    /// # Panics
    ///
    /// Panics if no job was in service — a double-completion model bug.
    pub fn complete(&mut self, now: SimTime) -> Option<Started> {
        assert!(self.busy > 0, "completion with no job in service");
        match self.waiting.pop_front() {
            Some((job, _queued_at)) => {
                self.busy_time += job.service;
                Some(Started { job, start: now })
            }
            None => {
                self.busy -= 1;
                None
            }
        }
    }

    /// True when no job is in service or waiting.
    pub fn is_idle(&self) -> bool {
        self.busy == 0 && self.waiting.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_testkit::Config;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn jobs_start_immediately_when_servers_free() {
        let mut pool = MultiServer::new(2);
        assert!(pool.offer(us(0), Job::new(1, us(10))).is_some());
        assert!(pool.offer(us(0), Job::new(2, us(10))).is_some());
        assert_eq!(pool.busy(), 2);
        assert!(pool.offer(us(0), Job::new(3, us(10))).is_none());
        assert_eq!(pool.queue_len(), 1);
    }

    #[test]
    fn completion_starts_waiting_job_fifo() {
        let mut pool = MultiServer::new(1);
        pool.offer(us(0), Job::new(1, us(10)));
        pool.offer(us(0), Job::new(2, us(10)));
        pool.offer(us(0), Job::new(3, us(10)));
        let started = pool.complete(us(10)).unwrap();
        assert_eq!(started.job.id, 2);
        assert_eq!(started.start, us(10));
        let started = pool.complete(us(20)).unwrap();
        assert_eq!(started.job.id, 3);
        assert!(pool.complete(us(30)).is_none());
        assert!(pool.is_idle());
    }

    #[test]
    #[should_panic(expected = "no job in service")]
    fn double_completion_panics() {
        let mut pool = MultiServer::new(1);
        pool.complete(us(0));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_panics() {
        let _ = MultiServer::new(0);
    }

    #[test]
    fn busy_time_accumulates_service_demand() {
        let mut pool = MultiServer::new(1);
        pool.offer(us(0), Job::new(1, us(7)));
        pool.offer(us(0), Job::new(2, us(5)));
        pool.complete(us(7));
        pool.complete(us(12));
        assert_eq!(pool.busy_time(), us(12));
    }

    #[test]
    fn peak_queue_tracks_high_water_mark() {
        let mut pool = MultiServer::new(1);
        for i in 0..5 {
            pool.offer(us(0), Job::new(i, us(1)));
        }
        assert_eq!(pool.peak_queue(), 4);
        pool.complete(us(1));
        assert_eq!(pool.peak_queue(), 4);
    }

    /// Conservation: every offered job either starts on offer, starts on
    /// a later completion, or is still queued at the end.
    #[test]
    fn prop_jobs_conserved() {
        Config::new().check(
            |src| (src.usize_in(1..4), src.usize_in(0..40)),
            |&(capacity, n)| {
                let mut pool = MultiServer::new(capacity);
                let mut started = 0usize;
                for i in 0..n {
                    if pool.offer(us(i as u64), Job::new(i as u64, us(1))).is_some() {
                        started += 1;
                    }
                }
                let mut completed = 0usize;
                while pool.busy() > 0 {
                    if pool.complete(us(1_000 + completed as u64)).is_some() {
                        started += 1;
                    }
                    completed += 1;
                }
                assert_eq!(started, n);
                assert_eq!(completed, started);
                assert!(pool.is_idle());
            },
        );
    }

    /// Busy servers never exceed capacity.
    #[test]
    fn prop_capacity_respected() {
        Config::new().check(
            |src| (src.usize_in(1..8), src.vec_of(0..64, |s| s.bool_any())),
            |(capacity, offers)| {
                let mut pool = MultiServer::new(*capacity);
                let mut t = 0u64;
                for (i, do_offer) in offers.iter().enumerate() {
                    t += 1;
                    if *do_offer {
                        pool.offer(us(t), Job::new(i as u64, us(3)));
                    } else if pool.busy() > 0 {
                        pool.complete(us(t));
                    }
                    assert!(pool.busy() <= *capacity);
                }
            },
        );
    }
}
