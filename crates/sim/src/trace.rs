//! Deterministic event tracing for simulations.
//!
//! Experiments assert on *shapes*; debugging a model regression needs the
//! raw event order. [`Trace`] is an append-only, timestamped log that
//! simulations thread through their event handlers; because the engine is
//! deterministic, two runs of the same model produce byte-identical
//! traces — which the tests pin.

use std::fmt;

use crate::time::SimTime;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual timestamp.
    pub at: SimTime,
    /// Event category — use the shared [`crate::kinds`] vocabulary (e.g.
    /// [`kinds::DISPATCH`](crate::kinds::DISPATCH),
    /// [`kinds::REPLY`](crate::kinds::REPLY),
    /// [`kinds::INJECT`](crate::kinds::INJECT)) so simulated traces line up
    /// with real-run observability output.
    pub kind: &'static str,
    /// Free-form detail (task ids, nodes, sizes).
    pub detail: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.kind, self.detail)
    }
}

/// Append-only simulation log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Debug-asserts timestamps are non-decreasing (the engine guarantees
    /// monotone time; a violation means the model logged with a stale
    /// clock).
    pub fn record(&mut self, at: SimTime, kind: &'static str, detail: impl Into<String>) {
        debug_assert!(
            self.entries.last().is_none_or(|last| last.at <= at),
            "trace timestamps must be non-decreasing"
        );
        self.entries.push(TraceEntry { at, kind, detail: detail.into() });
    }

    /// All entries in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries of one kind, in order.
    pub fn of_kind(&self, kind: &str) -> Vec<&TraceEntry> {
        self.entries.iter().filter(|e| e.kind == kind).collect()
    }

    /// Renders the whole trace, one event per line (stable across runs of
    /// a deterministic model — diffable).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::kinds;

    #[test]
    fn records_in_order_and_filters_by_kind() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(1), kinds::SEND, "msg 1");
        t.record(SimTime::from_micros(2), kinds::RECV, "msg 1");
        t.record(SimTime::from_micros(2), kinds::SEND, "msg 2");
        assert_eq!(t.len(), 3);
        assert_eq!(t.of_kind(kinds::SEND).len(), 2);
        assert_eq!(t.of_kind(kinds::RECV)[0].detail, "msg 1");
        assert!(!t.is_empty());
    }

    #[test]
    fn shared_kind_constants_match_historic_strings() {
        // Traces recorded before the kinds module existed used these
        // literals; the constants must keep traces byte-identical.
        assert_eq!(kinds::SEND, "send");
        assert_eq!(kinds::RECV, "recv");
        assert_eq!(kinds::TICK, "tick");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-decreasing")]
    fn time_travel_is_a_bug() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(5), "a", "");
        t.record(SimTime::from_micros(1), "b", "");
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(1), kinds::SEND, "x");
        t.record(SimTime::from_micros(3), kinds::RECV, "x");
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("send: x"));
    }

    #[test]
    fn traced_simulation_is_reproducible() {
        fn run() -> String {
            let mut engine: Engine<Trace> = Engine::new();
            for i in 0..10u64 {
                engine.schedule_in(SimTime::from_micros(i % 3 * 10), move |eng, trace: &mut Trace| {
                    trace.record(eng.now(), kinds::TICK, format!("event {i}"));
                });
            }
            let mut trace = Trace::new();
            engine.run(&mut trace);
            trace.render()
        }
        assert_eq!(run(), run());
    }
}
