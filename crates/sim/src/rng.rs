//! Minimal deterministic PRNG for simulation jitter.
//!
//! The simulator must be reproducible, so it carries its own tiny
//! SplitMix64 instead of depending on thread-local entropy. (Workload
//! generators elsewhere in the workspace use the `rand` crate with
//! explicit seeds; this type exists so `parc-sim` itself stays
//! dependency-free.)

/// SplitMix64 — tiny, fast, and statistically adequate for jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small bounds used in placement policies.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_values_in_range_and_cover() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 6];
        for _ in 0..600 {
            let v = rng.next_below(6) as usize;
            assert!(v < 6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
