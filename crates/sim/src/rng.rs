//! Minimal deterministic PRNG for simulation jitter.
//!
//! The simulator must be reproducible, so it carries its own tiny
//! SplitMix64 instead of depending on thread-local entropy. This is the
//! workspace's only randomness source: workload generators and the
//! `parc-testkit` property harness seed it explicitly, so every run is
//! reproducible from a printed seed and the build stays registry-free.

/// SplitMix64 — tiny, fast, and statistically adequate for jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small bounds used in placement policies.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bounded_values_in_range_and_cover() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 6];
        for _ in 0..600 {
            let v = rng.next_below(6) as usize;
            assert!(v < 6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }

    /// Statistical sanity over 1e5 draws: the mean of `next_f64` must sit
    /// near 0.5 and every output bit of `next_u64` must be balanced.
    /// (Deterministic — fixed seed — so this is a regression gate on the
    /// mixing constants, not a flaky Monte Carlo test.)
    #[test]
    fn statistical_sanity_mean_and_bit_balance() {
        const DRAWS: usize = 100_000;
        let mut rng = SplitMix64::new(0xdecade);
        let mut ones = [0u32; 64];
        let mut sum = 0.0f64;
        for _ in 0..DRAWS {
            let v = rng.next_u64();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((v >> bit) & 1) as u32;
            }
            sum += (v >> 11) as f64 / (1u64 << 53) as f64;
        }
        let mean = sum / DRAWS as f64;
        assert!(
            (mean - 0.5).abs() < 0.005,
            "mean of {DRAWS} unit draws should be ~0.5, got {mean}"
        );
        // Each bit is a Bernoulli(0.5) over 1e5 trials: sd ~= 158, so a
        // +/-1% band (+/-1000) is ~6 sigma — loose enough to never flake
        // on a healthy generator, tight enough to catch a broken mixer.
        for (bit, &count) in ones.iter().enumerate() {
            assert!(
                (49_000..=51_000).contains(&count),
                "bit {bit} unbalanced: {count} ones in {DRAWS} draws"
            );
        }
    }
}
