//! # parc-sim — deterministic discrete-event cluster simulator
//!
//! The paper's evaluation ran on a 2005 Linux cluster: six dual Athlon
//! MP 1800+ nodes on 100 Mbit Ethernet, with Mono 1.1.7/1.0.5, Sun JDK
//! 1.4.2 and MPICH 1.2.6. That testbed cannot be re-run, so this crate
//! provides the substitute called out in `DESIGN.md`: a deterministic
//! discrete-event simulation (DES) of the cluster with
//!
//! * a virtual-nanosecond [`SimTime`] clock and a stable [`Engine`] event
//!   queue (FIFO among simultaneous events);
//! * [`MultiServer`] queues modelling CPU cores;
//! * a [`ThreadPoolModel`] reproducing Mono's bounded thread pool with slow
//!   thread injection — the mechanism behind the poor ParC# scaling in
//!   Fig. 9 ("limiting the number of running threads ... reduces the
//!   overlap among computation and communication and also produces
//!   starvation in some application threads");
//! * [`Link`]s with fixed latency plus bandwidth-limited serialization —
//!   fed with *real* byte counts from `parc-serial`, which is what shapes
//!   the Fig. 8 bandwidth curves;
//! * a [`Cluster`] builder tying nodes, relative CPU speeds (JIT factors)
//!   and links together.
//!
//! Everything is deterministic: same inputs, same event order, same
//! virtual timings — a property the test suite checks explicitly.
//!
//! ```
//! use parc_sim::{Engine, SimTime};
//!
//! let mut engine: Engine<u32> = Engine::new();
//! engine.schedule_in(SimTime::from_micros(5), |eng, hits| {
//!     *hits += 1;
//!     eng.schedule_in(SimTime::from_micros(5), |_, hits| *hits += 1);
//! });
//! let mut hits = 0;
//! engine.run(&mut hits);
//! assert_eq!(hits, 2);
//! assert_eq!(engine.now(), SimTime::from_micros(10));
//! ```

/// Shared trace-event vocabulary, re-exported from `parc-obs` so simulated
/// and real runs label the same activity with the same strings (e.g.
/// `kinds::SEND`, `kinds::RECV`, `kinds::TICK`).
pub use parc_obs::kinds;

pub mod cluster;
pub mod engine;
pub mod link;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod threadpool;
pub mod time;
pub mod trace;

pub use cluster::{Cluster, ClusterBuilder, NodeSpec};
pub use engine::Engine;
pub use link::Link;
pub use queue::{Job, MultiServer};
pub use rng::SplitMix64;
pub use stats::Summary;
pub use threadpool::ThreadPoolModel;
pub use time::SimTime;
pub use trace::{Trace, TraceEntry};
