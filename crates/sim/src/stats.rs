//! Small statistics helpers for experiment output.

use crate::time::SimTime;

/// Summary statistics over a sample of durations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    min: f64,
    max: f64,
    p50: f64,
    p95: f64,
}

impl Summary {
    /// Computes a summary over durations (in seconds). Returns `None` for an
    /// empty sample.
    pub fn of_times(samples: &[SimTime]) -> Option<Summary> {
        Summary::of(&samples.iter().map(|t| t.as_secs_f64()).collect::<Vec<_>>())
    }

    /// Computes a summary over raw f64 samples. Returns `None` if empty.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        Some(Summary {
            count,
            mean,
            min: sorted[0],
            max: sorted[count - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        })
    }

    /// Sample size.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Minimum.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.p50
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.p95
    }
}

/// Nearest-rank percentile over a pre-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Speedup of `base` over `improved` (e.g. sequential time / parallel time).
///
/// # Panics
///
/// Panics if `improved` is zero.
pub fn speedup(base: SimTime, improved: SimTime) -> f64 {
    assert!(improved > SimTime::ZERO, "speedup denominator must be positive");
    base.as_secs_f64() / improved.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of_times(&[]).is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[4.0]).unwrap();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), 4.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.p50(), 4.0);
        assert_eq!(s.p95(), 4.0);
    }

    #[test]
    fn percentiles_on_known_sample() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&samples).unwrap();
        assert_eq!(s.p50(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.p50(), 2.0);
    }

    #[test]
    fn of_times_converts_seconds() {
        let s = Summary::of_times(&[SimTime::from_millis(500), SimTime::from_millis(1500)])
            .unwrap();
        assert!((s.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_ratio() {
        assert!((speedup(SimTime::from_secs(10), SimTime::from_secs(2)) - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_speedup_denominator_panics() {
        speedup(SimTime::from_secs(1), SimTime::ZERO);
    }
}
