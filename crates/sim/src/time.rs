//! Virtual time: a nanosecond-resolution instant/duration type.
//!
//! One type serves as both instant (time since simulation start) and
//! duration; arithmetic is saturating so cost models cannot wrap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A virtual time point or span, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero / zero duration.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event may be scheduled at or beyond it.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time from fractional seconds, saturating at the far
    /// future; negative and NaN inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> SimTime {
        // NaN and negatives clamp to zero.
        if s.is_nan() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating difference (`self - other`, or zero).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Scales a duration by a dimensionless factor (JIT slowdowns etc.),
    /// saturating; negative/NaN factors clamp to zero.
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_testkit::Config;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(1).scale(-2.0), SimTime::ZERO);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimTime::from_secs(1), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000s");
    }

    #[test]
    fn scale_applies_factor() {
        assert_eq!(SimTime::from_secs(2).scale(1.5), SimTime::from_secs(3));
        assert_eq!(SimTime::from_secs(2).scale(0.0), SimTime::ZERO);
    }

    #[test]
    fn prop_add_sub_inverse() {
        Config::new().check(
            |src| (src.u64_in(0..1 << 40), src.u64_in(0..1 << 40)),
            |&(a, b)| {
                let (a, b) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
                assert_eq!((a + b) - b, a);
            },
        );
    }

    #[test]
    fn prop_ordering_consistent_with_nanos() {
        Config::new().check(
            |src| (src.u64_any(), src.u64_any()),
            |&(a, b)| {
                assert_eq!(SimTime::from_nanos(a).cmp(&SimTime::from_nanos(b)), a.cmp(&b));
            },
        );
    }

    #[test]
    fn prop_sum_equals_fold() {
        Config::new().check(
            |src| src.vec_of(0..20, |s| s.u64_in(0..1 << 30)),
            |xs| {
                let sum: SimTime = xs.iter().map(|&x| SimTime::from_nanos(x)).sum();
                assert_eq!(sum.as_nanos(), xs.iter().sum::<u64>());
            },
        );
    }
}
