//! The discrete-event engine: a virtual clock plus a stable event queue.
//!
//! Events are boxed closures receiving the engine (to schedule more events)
//! and a mutable *world* — the caller-owned model state. Two events
//! scheduled for the same instant fire in scheduling order (a sequence
//! number breaks ties), which is what makes every simulation in this
//! workspace reproducible run-to-run.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

type EventFn<W> = Box<dyn FnOnce(&mut Engine<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<W> Eq for Scheduled<W> {}

impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulation engine over a caller-supplied world `W`.
pub struct Engine<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    heap: BinaryHeap<Scheduled<W>>,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine { now: SimTime::ZERO, seq: 0, executed: 0, heap: BinaryHeap::new() }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the virtual past — a model bug that must not be
    /// silently reordered.
    pub fn schedule_at(&mut self, at: SimTime, event: impl FnOnce(&mut Engine<W>, &mut W) + 'static) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={now}",
            at = at,
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, run: Box::new(event) });
    }

    /// Schedules `event` after a relative `delay`.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        event: impl FnOnce(&mut Engine<W>, &mut W) + 'static,
    ) {
        self.schedule_at(self.now + delay, event);
    }

    /// Runs a single event, returning `false` if the queue was empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.heap.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.executed += 1;
                (ev.run)(self, world);
                true
            }
            None => false,
        }
    }

    /// Runs until the event queue drains, returning the final clock value.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while self.step(world) {}
        self.now
    }

    /// Runs until the queue drains or the clock passes `deadline`;
    /// returns `true` if the queue drained.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) -> bool {
        loop {
            match self.heap.peek() {
                None => return true,
                Some(ev) if ev.at > deadline => return false,
                Some(_) => {
                    self.step(world);
                }
            }
        }
    }
}

impl<W> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        eng.schedule_in(SimTime::from_micros(30), |_, log| log.push(3));
        eng.schedule_in(SimTime::from_micros(10), |_, log| log.push(1));
        eng.schedule_in(SimTime::from_micros(20), |_, log| log.push(2));
        let mut log = Vec::new();
        eng.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(eng.executed(), 3);
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut eng: Engine<Vec<u32>> = Engine::new();
        let t = SimTime::from_micros(5);
        for i in 0..50 {
            eng.schedule_at(t, move |_, log: &mut Vec<u32>| log.push(i));
        }
        let mut log = Vec::new();
        eng.run(&mut log);
        assert_eq!(log, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut eng: Engine<u32> = Engine::new();
        fn tick(eng: &mut Engine<u32>, count: &mut u32) {
            *count += 1;
            if *count < 5 {
                eng.schedule_in(SimTime::from_micros(1), tick);
            }
        }
        eng.schedule_in(SimTime::from_micros(1), tick);
        let mut count = 0;
        let end = eng.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(end, SimTime::from_micros(5));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule_at(SimTime::from_micros(10), |eng, _| {
            eng.schedule_at(SimTime::from_micros(5), |_, _| {});
        });
        eng.run(&mut ());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_in(SimTime::from_micros(10), |_, n| *n += 1);
        eng.schedule_in(SimTime::from_micros(100), |_, n| *n += 10);
        let mut n = 0;
        let drained = eng.run_until(&mut n, SimTime::from_micros(50));
        assert!(!drained);
        assert_eq!(n, 1);
        assert_eq!(eng.pending(), 1);
        assert!(eng.run_until(&mut n, SimTime::MAX));
        assert_eq!(n, 11);
    }

    #[test]
    fn clock_lands_on_event_times_exactly() {
        let mut eng: Engine<Vec<SimTime>> = Engine::new();
        eng.schedule_at(SimTime::from_nanos(7), |eng, log: &mut Vec<SimTime>| {
            log.push(eng.now());
        });
        eng.schedule_at(SimTime::from_nanos(7_000), |eng, log: &mut Vec<SimTime>| {
            log.push(eng.now());
        });
        let mut log = Vec::new();
        eng.run(&mut log);
        assert_eq!(log, vec![SimTime::from_nanos(7), SimTime::from_nanos(7_000)]);
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> (SimTime, Vec<u64>) {
            let mut eng: Engine<Vec<u64>> = Engine::new();
            for i in 0..20u64 {
                eng.schedule_in(SimTime::from_nanos(i % 7 * 100), move |eng, log: &mut Vec<u64>| {
                    log.push(i);
                    if i % 3 == 0 {
                        eng.schedule_in(SimTime::from_nanos(50), move |_, log: &mut Vec<u64>| {
                            log.push(1000 + i);
                        });
                    }
                });
            }
            let mut log = Vec::new();
            let end = eng.run(&mut log);
            (end, log)
        }
        assert_eq!(run_once(), run_once());
    }
}
