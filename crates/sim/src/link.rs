//! Network link model: fixed propagation latency plus bandwidth-limited
//! serialization, with per-message software overhead.
//!
//! The paper's cluster used switched 100 Mbit Ethernet; ping-pong messages
//! observe (a) a per-call fixed software cost that differs wildly between
//! MPI (~100 µs), Mono remoting (~273 µs) and Java RMI (~520 µs), and (b) a
//! shared 12.5 MB/s wire. A [`Link`] models one direction of a NIC: each
//! transmission occupies the wire for `bytes / bandwidth` seconds starting
//! no earlier than the previous transmission finished (store-and-forward,
//! FIFO), then arrives after the propagation latency.

use crate::time::SimTime;

/// One direction of a network link.
#[derive(Debug, Clone)]
pub struct Link {
    latency: SimTime,
    bytes_per_sec: f64,
    busy_until: SimTime,
    bytes_carried: u64,
    messages_carried: u64,
}

/// Outcome of a transmission: when the wire frees up and when the message
/// lands on the far side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transmission {
    /// Instant the sender's wire becomes free again.
    pub wire_free: SimTime,
    /// Instant the last byte arrives at the receiver.
    pub arrival: SimTime,
}

impl Link {
    /// Creates a link with the given one-way propagation latency and
    /// bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not finite and positive.
    pub fn new(latency: SimTime, bytes_per_sec: f64) -> Link {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "bandwidth must be positive and finite"
        );
        Link {
            latency,
            bytes_per_sec,
            busy_until: SimTime::ZERO,
            bytes_carried: 0,
            messages_carried: 0,
        }
    }

    /// 100 Mbit Ethernet (12.5 MB/s) with the given propagation latency —
    /// the paper's testbed wire.
    pub fn ethernet_100mbit(latency: SimTime) -> Link {
        Link::new(latency, 12.5e6)
    }

    /// One-way propagation latency.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Configured bandwidth, bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Total payload bytes carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Total messages carried so far.
    pub fn messages_carried(&self) -> u64 {
        self.messages_carried
    }

    /// Pure cost of pushing `bytes` through the wire (no queueing).
    pub fn serialization_time(&self, bytes: usize) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Transmits `bytes` starting no earlier than `now`, mutating the
    /// wire-busy horizon, and returns the timing of the transfer.
    pub fn transmit(&mut self, now: SimTime, bytes: usize) -> Transmission {
        let start = now.max(self.busy_until);
        let wire_free = start + self.serialization_time(bytes);
        self.busy_until = wire_free;
        self.bytes_carried += bytes as u64;
        self.messages_carried += 1;
        Transmission { wire_free, arrival: wire_free + self.latency }
    }

    /// Resets the busy horizon and counters (fresh experiment, same wire).
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.bytes_carried = 0;
        self.messages_carried = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_testkit::Config;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn ethernet_rate_is_12_5_mb_per_sec() {
        let link = Link::ethernet_100mbit(us(50));
        // 12.5 MB in one second.
        assert_eq!(link.serialization_time(12_500_000), SimTime::from_secs(1));
        // 1 KB takes 80 us.
        assert_eq!(link.serialization_time(1_000), us(80));
    }

    #[test]
    fn arrival_is_serialization_plus_latency() {
        let mut link = Link::ethernet_100mbit(us(50));
        let t = link.transmit(SimTime::ZERO, 1_000);
        assert_eq!(t.wire_free, us(80));
        assert_eq!(t.arrival, us(130));
    }

    #[test]
    fn back_to_back_messages_queue_on_the_wire() {
        let mut link = Link::ethernet_100mbit(us(50));
        let a = link.transmit(SimTime::ZERO, 1_000);
        let b = link.transmit(SimTime::ZERO, 1_000);
        assert_eq!(a.wire_free, us(80));
        assert_eq!(b.wire_free, us(160));
        assert_eq!(b.arrival, us(210));
    }

    #[test]
    fn idle_wire_does_not_delay() {
        let mut link = Link::ethernet_100mbit(us(50));
        link.transmit(SimTime::ZERO, 1_000);
        let later = link.transmit(SimTime::from_millis(10), 1_000);
        assert_eq!(later.wire_free, SimTime::from_millis(10) + us(80));
    }

    #[test]
    fn zero_byte_message_costs_only_latency() {
        let mut link = Link::ethernet_100mbit(us(50));
        let t = link.transmit(us(5), 0);
        assert_eq!(t.arrival, us(55));
    }

    #[test]
    fn counters_accumulate() {
        let mut link = Link::ethernet_100mbit(us(50));
        link.transmit(SimTime::ZERO, 100);
        link.transmit(SimTime::ZERO, 200);
        assert_eq!(link.bytes_carried(), 300);
        assert_eq!(link.messages_carried(), 2);
        link.reset();
        assert_eq!(link.bytes_carried(), 0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = Link::new(us(1), 0.0);
    }

    /// Arrivals are monotone in submission order (FIFO wire).
    #[test]
    fn prop_fifo_wire() {
        Config::new().check(
            |src| src.vec_of(1..30, |s| s.usize_in(0..100_000)),
            |sizes| {
                let mut link = Link::ethernet_100mbit(us(50));
                let mut last = SimTime::ZERO;
                for &s in sizes {
                    let t = link.transmit(SimTime::ZERO, s);
                    assert!(t.arrival >= last);
                    last = t.arrival;
                }
            },
        );
    }

    /// Total wire occupancy equals the sum of per-message serialization
    /// times when everything is submitted at t=0.
    #[test]
    fn prop_wire_occupancy_additive() {
        Config::new().check(
            |src| src.vec_of(1..20, |s| s.usize_in(1..10_000)),
            |sizes| {
                let mut link = Link::ethernet_100mbit(us(0));
                let mut expected = SimTime::ZERO;
                let mut last_free = SimTime::ZERO;
                for &s in sizes {
                    expected += link.serialization_time(s);
                    last_free = link.transmit(SimTime::ZERO, s).wire_free;
                }
                // Saturating u64 arithmetic rounds each message independently;
                // allow 1ns per message of drift.
                let drift = last_free.as_nanos().abs_diff(expected.as_nanos());
                assert!(drift <= sizes.len() as u64);
            },
        );
    }
}
