//! Channel abstractions and the transparent remote-object handle.
//!
//! A [`ClientChannel`] moves call messages to one endpoint and replies
//! back; a [`ChannelProvider`] resolves object URIs to client channels
//! (the role `ChannelServices.RegisterChannel` plays in .NET). On top of
//! both sits [`RemoteObject`] — the untyped transparent proxy every
//! generated typed proxy wraps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parc_serial::Value;

use crate::error::RemotingError;
use crate::message::{CallMessage, ReturnMessage};
use crate::retry::RetryPolicy;
use crate::uri::ObjectUri;

/// A client-side transport to one endpoint.
///
/// TCP implementations span three transports with identical observable
/// semantics (pinned by `tests/transport_conformance.rs`): the
/// multiplexed [`TcpClientChannel`](crate::tcp::TcpClientChannel)
/// (default; dedicated reader thread per socket), the
/// lock-per-roundtrip
/// [`LockStepClientChannel`](crate::tcp::LockStepClientChannel)
/// baseline, and the readiness-driven
/// [`ReactorClientChannel`](crate::reactor::ReactorClientChannel),
/// whose nonblocking sockets are swept by a fixed reactor pool
/// (`PARC_TRANSPORT=reactor` selects it through the providers).
pub trait ClientChannel: Send + Sync {
    /// Performs a synchronous two-way call.
    ///
    /// # Errors
    ///
    /// Transport and server-side failures.
    fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError>;

    /// Posts a one-way call (fire and forget), returning the encoded
    /// payload size in bytes — the channel already serialized the message
    /// to send it, so callers that account for wire traffic (e.g. batch
    /// instrumentation) get the size without re-encoding. Delivery is
    /// asynchronous; server-side failures are not reported.
    ///
    /// # Errors
    ///
    /// Only local send failures.
    fn post(&self, msg: &CallMessage) -> Result<usize, RemotingError>;

    /// Short transport name for diagnostics ("inproc", "tcp", "http").
    fn scheme(&self) -> &'static str;

    /// Live link feedback — per-call RTT and the dispatch backlog the
    /// server piggybacks on its reply frames — when the transport
    /// collects it. The handle is stable for the channel's lifetime
    /// (feedback survives reconnects); `None` means the transport has no
    /// feedback path and callers should fall back to open-loop batching.
    fn feedback(&self) -> Option<Arc<LinkFeedback>> {
        None
    }
}

/// EWMA smoothing denominator for the link RTT: `alpha = 1/RTT_EWMA_DIV`.
const RTT_EWMA_DIV: u64 = 5;

/// What one client channel has learned about its link and its server:
/// a round-trip-time EWMA sampled on every two-way call, and the
/// server's dispatch backlog as piggybacked on reply frames (the
/// [`crate::frame::DepthExt`] extension). One instance per channel,
/// shared across reconnects, read lock-free by the aggregation
/// controller.
#[derive(Debug, Default)]
pub struct LinkFeedback {
    /// RTT EWMA in nanoseconds; 0 until the first sample.
    rtt_ewma_ns: AtomicU64,
    rtt_samples: AtomicU64,
    /// Last reported scheduler-wide pending jobs.
    pending: AtomicU64,
    /// Last reported deepest single mailbox.
    busiest: AtomicU64,
    depth_samples: AtomicU64,
}

impl LinkFeedback {
    /// A fresh, sample-free feedback handle.
    pub fn new() -> LinkFeedback {
        LinkFeedback::default()
    }

    /// Folds one measured round trip into the EWMA (`alpha = 0.2`,
    /// integer arithmetic so replayed tapes stay deterministic).
    pub fn record_rtt(&self, rtt: std::time::Duration) {
        let sample = rtt.as_nanos().min(u128::from(u64::MAX)) as u64;
        let prev = self.rtt_ewma_ns.load(Ordering::Relaxed);
        let next = if self.rtt_samples.fetch_add(1, Ordering::Relaxed) == 0 || prev == 0 {
            sample
        } else {
            prev - prev / RTT_EWMA_DIV + sample / RTT_EWMA_DIV
        };
        self.rtt_ewma_ns.store(next.max(1), Ordering::Relaxed);
    }

    /// Records a backlog report peeled off a reply frame.
    pub fn record_depth(&self, pending: usize, busiest: usize) {
        self.pending.store(pending as u64, Ordering::Relaxed);
        self.busiest.store(busiest as u64, Ordering::Relaxed);
        self.depth_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Smoothed round-trip time; `None` before the first two-way call.
    pub fn rtt(&self) -> Option<std::time::Duration> {
        match self.rtt_ewma_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(std::time::Duration::from_nanos(ns)),
        }
    }

    /// Last server backlog report `(pending, busiest_mailbox)`; `None`
    /// until the server has piggybacked at least one depth extension.
    pub fn depth(&self) -> Option<(usize, usize)> {
        if self.depth_samples.load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some((
            self.pending.load(Ordering::Relaxed) as usize,
            self.busiest.load(Ordering::Relaxed) as usize,
        ))
    }

    /// Total RTT samples folded in so far.
    pub fn rtt_samples(&self) -> u64 {
        self.rtt_samples.load(Ordering::Relaxed)
    }

    /// Total depth reports received so far.
    pub fn depth_samples(&self) -> u64 {
        self.depth_samples.load(Ordering::Relaxed)
    }
}

/// Resolves object URIs to client channels.
pub trait ChannelProvider {
    /// Opens (or reuses) a channel to the endpoint a URI names.
    ///
    /// # Errors
    ///
    /// [`RemotingError::BadUri`] for foreign schemes,
    /// [`RemotingError::EndpointNotFound`] / transport errors for
    /// unreachable endpoints.
    fn open(&self, uri: &ObjectUri) -> Result<Arc<dyn ClientChannel>, RemotingError>;
}

static NEXT_CALL_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique call id.
pub fn next_call_id() -> u64 {
    NEXT_CALL_ID.fetch_add(1, Ordering::Relaxed)
}

/// An untyped transparent proxy to one published remote object.
///
/// Typed proxies generated by [`crate::remote_interface!`] wrap this;
/// the SCOOPP proxy objects (PO) in `parc-core` use it directly so they can
/// interpose aggregation before marshalling.
#[derive(Clone)]
pub struct RemoteObject {
    channel: Arc<dyn ClientChannel>,
    object: String,
    retry: RetryPolicy,
}

impl RemoteObject {
    /// Wraps a channel and a published object name. The proxy's retry
    /// policy comes from `PARC_RETRY` (default: 3 attempts); it applies
    /// to one-way posts and [`RemoteObject::call_idempotent`], never to
    /// plain [`RemoteObject::call`].
    pub fn new(channel: Arc<dyn ClientChannel>, object: impl Into<String>) -> RemoteObject {
        RemoteObject { channel, object: object.into(), retry: RetryPolicy::from_env() }
    }

    /// Replaces the retry policy (tests and benches pin one explicitly).
    pub fn with_retry(mut self, retry: RetryPolicy) -> RemoteObject {
        self.retry = retry;
        self
    }

    /// The proxy's retry policy.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The published object name this proxy targets.
    pub fn object(&self) -> &str {
        &self.object
    }

    /// The underlying channel.
    pub fn channel(&self) -> &Arc<dyn ClientChannel> {
        &self.channel
    }

    /// Synchronous method invocation; returns the marshalled result.
    ///
    /// # Errors
    ///
    /// Transport failures, marshalling failures, or a server fault.
    pub fn call(&self, method: &str, args: Vec<Value>) -> Result<Value, RemotingError> {
        let _span = parc_obs::Span::enter(parc_obs::kinds::CALL);
        let mut msg = CallMessage::new(self.object.clone(), method, args);
        self.call_once(&mut msg)
    }

    /// Synchronous invocation of an *idempotent* method: transient
    /// transport failures and timeouts are retried under the proxy's
    /// [`RetryPolicy`], each attempt with a fresh call id. Callers mark a
    /// method idempotent by choosing this entry point — the contract is
    /// that re-executing it server-side is harmless, so retries give
    /// exactly-once *effects* even when the wire delivers at-least-once.
    ///
    /// # Errors
    ///
    /// The last transport failure when every attempt fails, or any
    /// non-retryable error immediately.
    pub fn call_idempotent(&self, method: &str, args: Vec<Value>) -> Result<Value, RemotingError> {
        let _span = parc_obs::Span::enter(parc_obs::kinds::CALL);
        let mut msg = CallMessage::new(self.object.clone(), method, args);
        self.retry.run(|| self.call_once(&mut msg))
    }

    fn call_once(&self, msg: &mut CallMessage) -> Result<Value, RemotingError> {
        self.call_once_located(msg).map(|(value, _)| value)
    }

    fn call_once_located(
        &self,
        msg: &mut CallMessage,
    ) -> Result<(Value, Option<String>), RemotingError> {
        // A fresh id per attempt keeps a late reply to an abandoned
        // attempt from completing a retried call's correlation slot.
        msg.call_id = next_call_id();
        let reply = self.channel.call(msg)?;
        if reply.call_id != msg.call_id {
            return Err(RemotingError::Transport {
                detail: format!(
                    "reply correlation mismatch: sent {} got {}",
                    msg.call_id, reply.call_id
                ),
            });
        }
        reply.into_located()
    }

    /// Like [`RemoteObject::call`], but hands the argument vector back on
    /// failure so a failover layer can retry the same invocation against a
    /// *different* target (new object name, new channel) without cloning
    /// the arguments up front on the success path.
    ///
    /// # Errors
    ///
    /// The failure paired with the untouched arguments.
    pub fn call_reclaim(
        &self,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, (RemotingError, Vec<Value>)> {
        self.call_reclaim_located(method, args).map(|(value, _)| value)
    }

    /// Like [`RemoteObject::call_reclaim`], but also surfaces the `Moved`
    /// location when the reply travelled through a forwarding entry — the
    /// caller can repoint its channel at the object's new home.
    ///
    /// # Errors
    ///
    /// The failure paired with the untouched arguments.
    pub fn call_reclaim_located(
        &self,
        method: &str,
        args: Vec<Value>,
    ) -> Result<(Value, Option<String>), (RemotingError, Vec<Value>)> {
        let _span = parc_obs::Span::enter(parc_obs::kinds::CALL);
        let mut msg = CallMessage::new(self.object.clone(), method, args);
        match self.call_once_located(&mut msg) {
            Ok(located) => Ok(located),
            Err(e) => Err((e, msg.args)),
        }
    }

    /// Asynchronous one-way invocation (no return value, no fault
    /// reporting) — the transport of SCOOPP's asynchronous method calls.
    /// Returns the encoded payload size in bytes.
    ///
    /// # Errors
    ///
    /// Only local send failures.
    pub fn post(&self, method: &str, args: Vec<Value>) -> Result<usize, RemotingError> {
        self.post_reclaim(method, args).map_err(|(e, _)| e)
    }

    /// Like [`RemoteObject::post`], but hands the argument vector back when
    /// every retry attempt failed (see [`RemoteObject::call_reclaim`]).
    ///
    /// # Errors
    ///
    /// The last send failure paired with the untouched arguments.
    pub fn post_reclaim(
        &self,
        method: &str,
        args: Vec<Value>,
    ) -> Result<usize, (RemotingError, Vec<Value>)> {
        let _span = parc_obs::Span::enter(parc_obs::kinds::POST);
        let mut msg = CallMessage::one_way(self.object.clone(), method, args);
        msg.call_id = next_call_id();
        // One-way posts always retry transparently: there is no reply to
        // duplicate, so redelivery after a transient send failure is the
        // best available approximation of at-least-once.
        match self.retry.run(|| self.channel.post(&msg)) {
            Ok(n) => Ok(n),
            Err(e) => Err((e, msg.args)),
        }
    }

    /// Like [`RemoteObject::post_reclaim`], but hands the argument vector
    /// back on **success** as well: channels take the message by
    /// reference, so the arguments survive serialization untouched. The
    /// batch flush path uses this to check its pooled flat-encoded buffer
    /// back into the buffer pool once the bytes are on the wire.
    ///
    /// # Errors
    ///
    /// The last send failure paired with the untouched arguments.
    pub fn post_reclaim_always(
        &self,
        method: &str,
        args: Vec<Value>,
    ) -> Result<(usize, Vec<Value>), (RemotingError, Vec<Value>)> {
        let _span = parc_obs::Span::enter(parc_obs::kinds::POST);
        let mut msg = CallMessage::one_way(self.object.clone(), method, args);
        msg.call_id = next_call_id();
        match self.retry.run(|| self.channel.post(&msg)) {
            Ok(n) => Ok((n, msg.args)),
            Err(e) => Err((e, msg.args)),
        }
    }
}

impl std::fmt::Debug for RemoteObject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteObject")
            .field("object", &self.object)
            .field("scheme", &self.channel.scheme())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_sync::Mutex;

    /// Channel that records posted messages and answers calls with a canned
    /// reply.
    struct FakeChannel {
        posted: Mutex<Vec<CallMessage>>,
        reply_with_wrong_id: bool,
    }

    impl ClientChannel for FakeChannel {
        fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
            let id = if self.reply_with_wrong_id { msg.call_id + 1 } else { msg.call_id };
            Ok(ReturnMessage::ok(id, Value::Str(msg.method.clone())))
        }

        fn post(&self, msg: &CallMessage) -> Result<usize, RemotingError> {
            self.posted.lock().push(msg.clone());
            // A fake never serializes, so it reports a zero wire size.
            Ok(0)
        }

        fn scheme(&self) -> &'static str {
            "fake"
        }
    }

    #[test]
    fn call_ids_are_unique_and_increasing() {
        let a = next_call_id();
        let b = next_call_id();
        assert!(b > a);
    }

    #[test]
    fn call_returns_server_value() {
        let obj = RemoteObject::new(
            Arc::new(FakeChannel { posted: Mutex::new(vec![]), reply_with_wrong_id: false }),
            "O",
        );
        assert_eq!(obj.call("ping", vec![]).unwrap(), Value::Str("ping".into()));
    }

    #[test]
    fn correlation_mismatch_is_transport_error() {
        let obj = RemoteObject::new(
            Arc::new(FakeChannel { posted: Mutex::new(vec![]), reply_with_wrong_id: true }),
            "O",
        );
        assert!(matches!(
            obj.call("ping", vec![]),
            Err(RemotingError::Transport { .. })
        ));
    }

    #[test]
    fn post_marks_oneway() {
        let chan = Arc::new(FakeChannel { posted: Mutex::new(vec![]), reply_with_wrong_id: false });
        let obj = RemoteObject::new(Arc::clone(&chan) as Arc<dyn ClientChannel>, "O");
        obj.post("fire", vec![Value::I32(1)]).unwrap();
        let posted = chan.posted.lock();
        assert_eq!(posted.len(), 1);
        assert!(posted[0].oneway);
        assert_eq!(posted[0].method, "fire");
        assert_eq!(posted[0].object, "O");
    }

    /// Channel that fails the first `fail_first` operations with a
    /// transport error, then succeeds.
    struct FlakyChannel {
        fail_first: u32,
        attempts: std::sync::atomic::AtomicU32,
    }

    impl FlakyChannel {
        fn trip(&self) -> Result<(), RemotingError> {
            use std::sync::atomic::Ordering;
            if self.attempts.fetch_add(1, Ordering::Relaxed) < self.fail_first {
                Err(RemotingError::Transport { detail: "flaky".into() })
            } else {
                Ok(())
            }
        }
    }

    impl ClientChannel for FlakyChannel {
        fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
            self.trip()?;
            Ok(ReturnMessage::ok(msg.call_id, Value::I32(1)))
        }

        fn post(&self, _msg: &CallMessage) -> Result<usize, RemotingError> {
            self.trip()?;
            Ok(1)
        }

        fn scheme(&self) -> &'static str {
            "flaky"
        }
    }

    fn flaky_object(fail_first: u32, attempts: u32) -> RemoteObject {
        use crate::retry::RetryPolicy;
        use std::time::Duration;
        RemoteObject::new(
            Arc::new(FlakyChannel { fail_first, attempts: std::sync::atomic::AtomicU32::new(0) }),
            "O",
        )
        .with_retry(RetryPolicy::new(attempts, Duration::ZERO, Duration::ZERO))
    }

    #[test]
    fn posts_retry_transient_failures() {
        assert_eq!(flaky_object(2, 3).post("fire", vec![]).unwrap(), 1);
    }

    #[test]
    fn idempotent_calls_retry_transient_failures() {
        assert_eq!(flaky_object(2, 3).call_idempotent("get", vec![]).unwrap(), Value::I32(1));
    }

    #[test]
    fn plain_calls_never_retry() {
        let obj = flaky_object(1, 5);
        assert!(obj.call("mutate", vec![]).is_err(), "first failure must surface");
        assert_eq!(obj.call("mutate", vec![]).unwrap(), Value::I32(1));
    }

    #[test]
    fn retries_exhaust_into_last_error() {
        let obj = flaky_object(10, 3);
        assert!(matches!(
            obj.call_idempotent("get", vec![]),
            Err(RemotingError::Transport { .. })
        ));
    }

    #[test]
    fn reclaim_variants_hand_arguments_back_on_failure() {
        let obj = flaky_object(10, 1);
        let args = vec![Value::I32(7), Value::Str("x".into())];
        let (e, back) = obj.call_reclaim("m", args.clone()).unwrap_err();
        assert!(e.is_retryable());
        assert_eq!(back, args);
        let (_, back) = obj.post_reclaim("m", args.clone()).unwrap_err();
        assert_eq!(back, args);
        // And the success path still completes through the same entry points.
        let healthy = flaky_object(0, 1);
        assert_eq!(healthy.call_reclaim("m", args.clone()).unwrap(), Value::I32(1));
        assert_eq!(healthy.post_reclaim("m", args).unwrap(), 1);
    }

    #[test]
    fn feedback_defaults_to_none() {
        let chan: Arc<dyn ClientChannel> =
            Arc::new(FakeChannel { posted: Mutex::new(vec![]), reply_with_wrong_id: false });
        assert!(chan.feedback().is_none());
    }

    #[test]
    fn link_feedback_tracks_rtt_and_depth() {
        use std::time::Duration;
        let fb = LinkFeedback::new();
        assert_eq!(fb.rtt(), None);
        assert_eq!(fb.depth(), None);
        fb.record_rtt(Duration::from_micros(100));
        assert_eq!(fb.rtt(), Some(Duration::from_micros(100)), "first sample is adopted as-is");
        fb.record_rtt(Duration::from_micros(200));
        // 100_000 - 20_000 + 40_000 = 120_000 ns: integer EWMA, alpha 1/5.
        assert_eq!(fb.rtt(), Some(Duration::from_nanos(120_000)));
        fb.record_depth(40, 7);
        assert_eq!(fb.depth(), Some((40, 7)));
        fb.record_depth(0, 0);
        assert_eq!(fb.depth(), Some((0, 0)), "a zero report is still a report");
        assert_eq!(fb.rtt_samples(), 2);
        assert_eq!(fb.depth_samples(), 2);
    }

    #[test]
    fn post_reclaim_always_returns_args_on_success() {
        let obj = flaky_object(0, 1);
        let args = vec![Value::Bytes(vec![1, 2, 3])];
        let (n, back) = obj.post_reclaim_always("m", args.clone()).unwrap();
        assert_eq!(n, 1);
        assert_eq!(back, args);
        let failing = flaky_object(10, 1);
        let (_, back) = failing.post_reclaim_always("m", args.clone()).unwrap_err();
        assert_eq!(back, args);
    }

    #[test]
    fn debug_shows_object_and_scheme() {
        let obj = RemoteObject::new(
            Arc::new(FakeChannel { posted: Mutex::new(vec![]), reply_with_wrong_id: false }),
            "Widget",
        );
        let dbg = format!("{obj:?}");
        assert!(dbg.contains("Widget") && dbg.contains("fake"));
    }
}
