//! A recycled byte-buffer pool for the channel hot paths.
//!
//! Every remote call used to allocate a fresh `Vec<u8>` for its request
//! payload and another for its reply. The pool removes both from the
//! steady state: channels check a buffer out, serialize into it with
//! [`parc_serial::Formatter::serialize_into`], put the bytes on the wire
//! and check the buffer back in. Pools are capped in two dimensions —
//! number of idle buffers kept, and per-buffer capacity — so a burst of
//! huge payloads cannot pin memory forever.
//!
//! Hit/miss totals are kept on the pool itself (always, two relaxed
//! atomics) and mirrored into the `parc-obs` registry under
//! [`parc_obs::kinds::BUFPOOL_HIT`]/[`BUFPOOL_MISS`](parc_obs::kinds::BUFPOOL_MISS)
//! when recording is enabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use parc_sync::Mutex;

/// Default number of idle buffers a pool retains.
pub const DEFAULT_MAX_IDLE: usize = 32;

/// Default cap on the capacity of a retained buffer; larger buffers are
/// dropped at check-in instead of pinning their allocation.
pub const DEFAULT_MAX_CAPACITY: usize = 1 << 20;

/// A capped pool of reusable byte buffers.
pub struct BufferPool {
    idle: Mutex<Vec<Vec<u8>>>,
    max_idle: usize,
    max_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BufferPool {
    /// Creates a pool retaining at most `max_idle` buffers of at most
    /// `max_capacity` bytes capacity each.
    pub fn new(max_idle: usize, max_capacity: usize) -> BufferPool {
        BufferPool {
            idle: Mutex::new(Vec::with_capacity(max_idle.min(64))),
            max_idle,
            max_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Checks out an empty buffer, recycled when one is available.
    pub fn checkout(&self) -> Vec<u8> {
        let recycled = self.idle.lock().pop();
        match recycled {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if parc_obs::is_enabled() {
                    parc_obs::counter(parc_obs::kinds::BUFPOOL_HIT).incr();
                }
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if parc_obs::is_enabled() {
                    parc_obs::counter(parc_obs::kinds::BUFPOOL_MISS).incr();
                }
                Vec::new()
            }
        }
    }

    /// Checks out an empty buffer guaranteed to hold `capacity` bytes
    /// without reallocating — the reactor's reply-copy path, where the
    /// final size is known before the first byte is written.
    pub fn checkout_with_capacity(&self, capacity: usize) -> Vec<u8> {
        let mut buf = self.checkout();
        buf.reserve(capacity);
        buf
    }

    /// Returns a buffer to the pool (cleared); oversized buffers and
    /// buffers beyond the idle cap are dropped instead.
    pub fn checkin(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_capacity {
            return;
        }
        buf.clear();
        let mut idle = self.idle.lock();
        if idle.len() < self.max_idle {
            idle.push(buf);
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle_len(&self) -> usize {
        self.idle.lock().len()
    }

    /// `(hits, misses)` checkout totals since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Fraction of checkouts served from the pool (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = self.stats();
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool::new(DEFAULT_MAX_IDLE, DEFAULT_MAX_CAPACITY)
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.stats();
        f.debug_struct("BufferPool")
            .field("idle", &self.idle_len())
            .field("hits", &hits)
            .field("misses", &misses)
            .finish()
    }
}

/// The process-wide pool shared by the channel implementations.
pub fn global() -> &'static BufferPool {
    static GLOBAL: OnceLock<BufferPool> = OnceLock::new();
    GLOBAL.get_or_init(BufferPool::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_checkout_misses_then_hits_in_steady_state() {
        let pool = BufferPool::new(4, 1024);
        let mut buf = pool.checkout();
        buf.extend_from_slice(b"payload");
        pool.checkin(buf);
        for _ in 0..10 {
            let buf = pool.checkout();
            assert!(buf.is_empty(), "checked-out buffers are cleared");
            assert!(buf.capacity() >= 7, "capacity is recycled");
            pool.checkin(buf);
        }
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (10, 1));
        assert!(pool.hit_rate() > 0.9);
    }

    #[test]
    fn oversized_buffers_are_dropped_on_checkin() {
        let pool = BufferPool::new(4, 16);
        pool.checkin(vec![0u8; 64]);
        assert_eq!(pool.idle_len(), 0);
        pool.checkin(Vec::with_capacity(8));
        assert_eq!(pool.idle_len(), 1);
    }

    #[test]
    fn idle_cap_bounds_the_pool() {
        let pool = BufferPool::new(2, 1024);
        for _ in 0..5 {
            pool.checkin(Vec::with_capacity(8));
        }
        assert_eq!(pool.idle_len(), 2);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let pool = BufferPool::new(4, 1024);
        pool.checkin(Vec::new());
        assert_eq!(pool.idle_len(), 0, "nothing to recycle in an empty vec");
    }
}
