//! The HTTP channel: SOAP formatter over HTTP/1.1-style framing — Mono's
//! `HttpChannel`.
//!
//! Fig. 8b shows this channel an order of magnitude slower than the TCP
//! channel; the cost is honest here too: every call becomes a `POST` with
//! text headers and a SOAP (XML-ish) body, inflating both bytes and parse
//! work. Connections are persistent (keep-alive); one request/response at a
//! time per connection.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parc_serial::SoapFormatter;
use parc_sync::Mutex;

use crate::channel::{ChannelProvider, ClientChannel};
use crate::dispatcher::dispatch;
use crate::error::RemotingError;
use crate::message::{CallMessage, ReturnMessage};
use crate::uri::{ObjectUri, Scheme};
use crate::wellknown::ObjectTable;

/// Maximum accepted body size.
pub const MAX_BODY: usize = 64 << 20;

/// Writes an HTTP request carrying `body`.
fn write_request(stream: &mut impl Write, object: &str, body: &[u8]) -> std::io::Result<()> {
    write!(
        stream,
        "POST /{object} HTTP/1.1\r\nHost: remoting\r\nContent-Type: text/xml; charset=utf-8\r\nSOAPAction: \"#invoke\"\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes an HTTP response with `status` and `body`.
fn write_response(stream: &mut impl Write, status: &str, body: &[u8]) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: text/xml; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one HTTP message (request or response): returns `(first_line,
/// body)`, or `None` on clean EOF before the first byte.
fn read_message(reader: &mut impl BufRead) -> std::io::Result<Option<(String, Vec<u8>)>> {
    let mut first_line = String::new();
    if reader.read_line(&mut first_line)? == 0 {
        return Ok(None);
    }
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof inside headers",
            ));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    let len = content_length.ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "missing content-length")
    })?;
    if len > MAX_BODY {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Some((first_line.trim_end().to_string(), body)))
}

/// Server half of the HTTP channel.
pub struct HttpServerChannel {
    addr: SocketAddr,
    objects: ObjectTable,
    stop: Arc<AtomicBool>,
}

impl HttpServerChannel {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(addr: &str) -> Result<HttpServerChannel, RemotingError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let objects = ObjectTable::new();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_objects = objects.clone();
        let accept_stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("http-accept-{local}"))
            .spawn(move || accept_loop(listener, accept_objects, accept_stop))
            .expect("spawning http accept thread");
        Ok(HttpServerChannel { addr: local, objects, stop })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The published-object table.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// An `http://` URI for an object on this server.
    pub fn uri_for(&self, object: &str) -> String {
        format!("http://{}/{}", self.addr, object)
    }
}

impl Drop for HttpServerChannel {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

impl std::fmt::Debug for HttpServerChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServerChannel").field("addr", &self.addr).finish()
    }
}

fn accept_loop(listener: TcpListener, objects: ObjectTable, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let objects = objects.clone();
        let stop = Arc::clone(&stop);
        let _ = std::thread::Builder::new()
            .name("http-conn".into())
            .spawn(move || serve_connection(stream, objects, stop));
    }
}

fn serve_connection(stream: TcpStream, objects: ObjectTable, stop: Arc<AtomicBool>) {
    let formatter = SoapFormatter::new();
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let (_request_line, body) = match read_message(&mut reader) {
            Ok(Some(msg)) => msg,
            Ok(None) | Err(_) => return,
        };
        // A stopped server closes instead of answering.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match CallMessage::decode(&formatter, &body) {
            Ok(call) => match dispatch(&objects, &call) {
                Some(reply) => {
                    let _span = parc_obs::Span::enter(parc_obs::kinds::REPLY);
                    let Ok(bytes) = reply.encode(&formatter) else { return };
                    if write_response(&mut writer, "200 OK", &bytes).is_err() {
                        return;
                    }
                }
                // One-way over HTTP still acknowledges receipt.
                None => {
                    if write_response(&mut writer, "202 Accepted", b"").is_err() {
                        return;
                    }
                }
            },
            Err(e) => {
                let fault = ReturnMessage::fault(0, e.to_string());
                let Ok(bytes) = fault.encode(&formatter) else { return };
                if write_response(&mut writer, "500 Internal Server Error", &bytes).is_err() {
                    return;
                }
            }
        }
    }
}

/// Default number of keep-alive connections an [`HttpClientChannel`]
/// retains per authority.
pub const DEFAULT_HTTP_POOL: usize = 2;

/// One keep-alive connection: buffered read half plus raw write half.
struct HttpConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpConn {
    fn dial(addr: &str) -> Result<HttpConn, RemotingError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(crate::retry::call_timeout()))?;
        let writer = stream.try_clone()?;
        Ok(HttpConn { reader: BufReader::new(stream), writer })
    }
}

/// Client half of the HTTP channel: a small pool of keep-alive
/// connections per authority, so concurrent callers no longer serialize
/// on one socket. Each request checks a connection out for its round
/// trip; healthy connections return to the pool (up to
/// [`DEFAULT_HTTP_POOL`]), failed ones are dropped and redialed lazily.
pub struct HttpClientChannel {
    addr: String,
    idle: Mutex<Vec<HttpConn>>,
    max_idle: usize,
    formatter: SoapFormatter,
}

impl HttpClientChannel {
    /// Connects (keep-alive) to a server with the default pool size.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<HttpClientChannel, RemotingError> {
        HttpClientChannel::connect_pooled(addr, DEFAULT_HTTP_POOL)
    }

    /// Connects with an explicit keep-alive pool cap (`>= 1`). One
    /// connection is dialed eagerly so bad addresses fail here, matching
    /// the previous single-connection behavior.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_pooled(addr: &str, max_idle: usize) -> Result<HttpClientChannel, RemotingError> {
        let first = HttpConn::dial(addr)?;
        Ok(HttpClientChannel {
            addr: addr.to_string(),
            idle: Mutex::new(vec![first]),
            max_idle: max_idle.max(1),
            formatter: SoapFormatter::new(),
        })
    }

    /// Keep-alive connections currently idle in the pool.
    pub fn idle_connections(&self) -> usize {
        self.idle.lock().len()
    }

    /// Pops an idle connection or dials a new one — callers beyond the
    /// pool's idle cap get their own socket for the duration of the call.
    fn checkout(&self) -> Result<HttpConn, RemotingError> {
        let recycled = self.idle.lock().pop();
        match recycled {
            Some(conn) => Ok(conn),
            None => HttpConn::dial(&self.addr),
        }
    }

    /// Returns a healthy connection to the pool, dropping it when the
    /// pool already holds `max_idle` connections.
    fn checkin(&self, conn: HttpConn) {
        let mut idle = self.idle.lock();
        if idle.len() < self.max_idle {
            idle.push(conn);
        }
    }

    /// One request/response round trip; returns the status line, response
    /// body and the size of the *request* body that was sent.
    fn exchange(&self, msg: &CallMessage) -> Result<(String, Vec<u8>, usize), RemotingError> {
        let body = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::SERIALIZE);
            msg.encode(&self.formatter)?
        };
        let sent = body.len();
        let mut conn = self.checkout()?;
        // Any error drops the connection (it may hold half a response);
        // only a clean round trip returns it to the pool.
        let outcome = (|| {
            {
                let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_SEND);
                write_request(&mut conn.writer, &msg.object, &body)?;
            }
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_RECV);
            read_message(&mut conn.reader)?
                .ok_or(RemotingError::Transport { detail: "server closed connection".into() })
        })();
        if outcome.is_ok() {
            self.checkin(conn);
        }
        outcome.map(|(status, body)| (status, body, sent))
    }
}

impl ClientChannel for HttpClientChannel {
    fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
        let (_status, body, _sent) = self.exchange(msg)?;
        let _span = parc_obs::Span::enter(parc_obs::kinds::DESERIALIZE);
        Ok(ReturnMessage::decode(&self.formatter, &body)?)
    }

    fn post(&self, msg: &CallMessage) -> Result<usize, RemotingError> {
        // HTTP always answers; a one-way call reads its 202 and discards it.
        let (status, _body, sent) = self.exchange(msg)?;
        if status.contains("202") || status.contains("200") {
            Ok(sent)
        } else {
            Err(RemotingError::Transport { detail: format!("unexpected status {status:?}") })
        }
    }

    fn scheme(&self) -> &'static str {
        "http"
    }
}

impl std::fmt::Debug for HttpClientChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpClientChannel").finish_non_exhaustive()
    }
}

/// Channel provider resolving `http://host:port/Object` URIs.
#[derive(Default)]
pub struct HttpChannelProvider {
    cache: Mutex<std::collections::HashMap<String, Arc<HttpClientChannel>>>,
}

impl HttpChannelProvider {
    /// Creates a provider with an empty connection cache.
    pub fn new() -> HttpChannelProvider {
        HttpChannelProvider::default()
    }
}

impl ChannelProvider for HttpChannelProvider {
    fn open(&self, uri: &ObjectUri) -> Result<Arc<dyn ClientChannel>, RemotingError> {
        if uri.scheme() != Scheme::Http {
            return Err(RemotingError::BadUri {
                uri: uri.to_string(),
                detail: "http provider only serves http:// uris".into(),
            });
        }
        let mut cache = self.cache.lock();
        if let Some(chan) = cache.get(uri.authority()) {
            return Ok(Arc::clone(chan) as Arc<dyn ClientChannel>);
        }
        let chan = Arc::new(HttpClientChannel::connect(uri.authority())?);
        cache.insert(uri.authority().to_string(), Arc::clone(&chan));
        Ok(chan)
    }
}

impl std::fmt::Debug for HttpChannelProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpChannelProvider")
            .field("cached", &self.cache.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activator::Activator;
    use crate::dispatcher::FnInvokable;
    use parc_serial::Value;

    fn start_server() -> HttpServerChannel {
        let server = HttpServerChannel::bind("127.0.0.1:0").unwrap();
        server.objects().register_singleton(
            "Svc",
            Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
                "double" => Ok(Value::I32(args[0].as_i32().unwrap_or(0) * 2)),
                "text" => Ok(Value::Str("<xml> & such".into())),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Svc".into(),
                    method: method.into(),
                }),
            })),
        );
        server
    }

    #[test]
    fn soap_call_over_http_roundtrips() {
        let server = start_server();
        let provider = HttpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Svc")).unwrap();
        assert_eq!(proxy.call("double", vec![Value::I32(21)]).unwrap(), Value::I32(42));
    }

    #[test]
    fn markup_content_survives_soap_escaping() {
        let server = start_server();
        let provider = HttpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Svc")).unwrap();
        assert_eq!(
            proxy.call("text", vec![]).unwrap(),
            Value::Str("<xml> & such".into())
        );
    }

    #[test]
    fn keep_alive_serves_many_requests() {
        let server = start_server();
        let provider = HttpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Svc")).unwrap();
        for i in 0..50 {
            assert_eq!(proxy.call("double", vec![Value::I32(i)]).unwrap(), Value::I32(i * 2));
        }
    }

    #[test]
    fn oneway_post_gets_202_and_connection_survives() {
        let server = start_server();
        let provider = HttpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Svc")).unwrap();
        proxy.post("double", vec![Value::I32(1)]).unwrap();
        assert_eq!(proxy.call("double", vec![Value::I32(2)]).unwrap(), Value::I32(4));
    }

    #[test]
    fn fault_travels_back_as_server_fault() {
        let server = start_server();
        let provider = HttpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Svc")).unwrap();
        assert!(matches!(
            proxy.call("nope", vec![]),
            Err(RemotingError::ServerFault { .. })
        ));
    }

    #[test]
    fn http_message_codec_roundtrips() {
        let mut buf = Vec::new();
        write_request(&mut buf, "Obj", b"<body/>").unwrap();
        let mut reader = BufReader::new(std::io::Cursor::new(buf));
        let (line, body) = read_message(&mut reader).unwrap().unwrap();
        assert!(line.starts_with("POST /Obj HTTP/1.1"));
        assert_eq!(body, b"<body/>");
        assert!(read_message(&mut reader).unwrap().is_none());
    }

    #[test]
    fn missing_content_length_is_error() {
        let raw = b"POST / HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut reader = BufReader::new(std::io::Cursor::new(raw.to_vec()));
        assert!(read_message(&mut reader).is_err());
    }

    #[test]
    fn concurrent_callers_use_pooled_connections() {
        let server = start_server();
        let chan = Arc::new(
            HttpClientChannel::connect_pooled(&server.local_addr().to_string(), 2).unwrap(),
        );
        std::thread::scope(|scope| {
            for t in 0..4i32 {
                let chan = Arc::clone(&chan);
                scope.spawn(move || {
                    let proxy = crate::channel::RemoteObject::new(
                        Arc::clone(&chan) as Arc<dyn ClientChannel>,
                        "Svc",
                    );
                    for i in 0..10 {
                        let v = proxy.call("double", vec![Value::I32(t * 100 + i)]).unwrap();
                        assert_eq!(v, Value::I32((t * 100 + i) * 2));
                    }
                });
            }
        });
        // Overflow connections (beyond the idle cap) were dropped, not kept.
        assert!(chan.idle_connections() <= 2);
    }

    #[test]
    fn pool_keeps_at_most_the_configured_idle_connections() {
        let server = start_server();
        let chan =
            HttpClientChannel::connect_pooled(&server.local_addr().to_string(), 1).unwrap();
        assert_eq!(chan.idle_connections(), 1);
        // Sequential calls reuse the single pooled connection.
        let proxy = crate::channel::RemoteObject::new(
            Arc::new(chan) as Arc<dyn ClientChannel>,
            "Svc",
        );
        for i in 0..5 {
            assert_eq!(proxy.call("double", vec![Value::I32(i)]).unwrap(), Value::I32(i * 2));
        }
    }

    #[test]
    fn wrong_scheme_rejected_by_provider() {
        let provider = HttpChannelProvider::new();
        let uri: ObjectUri = "tcp://h:1/x".parse().unwrap();
        assert!(matches!(provider.open(&uri), Err(RemotingError::BadUri { .. })));
    }
}
