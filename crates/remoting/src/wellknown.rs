//! Well-known object publication — the `RemotingConfiguration` analogue.
//!
//! The paper contrasts C# remoting with Java RMI precisely here (§2): in
//! addition to publishing explicitly instantiated objects, .NET can register
//! an object *factory* in one of two modes:
//!
//! 1. **singleton** — all remote calls are executed by the same instance
//!    (created lazily on first call);
//! 2. **singlecall** — each remote call may be executed by a different
//!    instance (no state is kept between calls).
//!
//! [`ObjectTable`] supports both plus explicit instance registration, and is
//! shared by every server channel on an endpoint.

use std::collections::HashMap;
use std::sync::Arc;

use parc_sync::RwLock;

use crate::dispatcher::Invokable;
use crate::error::RemotingError;

/// Reserved name of the per-node telemetry plane object every runtime
/// endpoint publishes (the `/telemetry` well-known object): a singleton
/// serving stats snapshots, dispatch depth, latency quantiles and fault
/// counters over the ordinary remoting stack.
pub const TELEMETRY_OBJECT: &str = "__telemetry";

/// Publication mode for a well-known service type (.NET
/// `WellKnownObjectMode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WellKnownObjectMode {
    /// One shared instance serves every call.
    Singleton,
    /// A fresh instance serves each call; state never persists.
    SingleCall,
}

type Factory = Arc<dyn Fn() -> Arc<dyn Invokable> + Send + Sync>;

enum Entry {
    /// An explicitly registered (or lazily created singleton) instance.
    Instance(Arc<dyn Invokable>),
    /// A factory still waiting for its first singleton call.
    LazySingleton(Factory),
    /// A factory invoked per call.
    PerCall(Factory),
}

/// Registry of published server objects for one endpoint.
///
/// Cloning is cheap (it is an `Arc` handle); all clones observe the same
/// registrations.
#[derive(Clone, Default)]
pub struct ObjectTable {
    entries: Arc<RwLock<HashMap<String, Entry>>>,
}

impl ObjectTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ObjectTable::default()
    }

    /// Publishes an explicitly instantiated object (the Java-RMI-style
    /// `rebind` path, also available in .NET via `RemotingServices.Marshal`).
    pub fn register_singleton(&self, name: impl Into<String>, object: Arc<dyn Invokable>) {
        self.entries.write().insert(name.into(), Entry::Instance(object));
    }

    /// Publishes a well-known service type backed by `factory`, in the
    /// given mode — `RemotingConfiguration.RegisterWellKnownServiceType`.
    pub fn register_well_known(
        &self,
        name: impl Into<String>,
        mode: WellKnownObjectMode,
        factory: impl Fn() -> Arc<dyn Invokable> + Send + Sync + 'static,
    ) {
        let factory: Factory = Arc::new(factory);
        let entry = match mode {
            WellKnownObjectMode::Singleton => Entry::LazySingleton(factory),
            WellKnownObjectMode::SingleCall => Entry::PerCall(factory),
        };
        self.entries.write().insert(name.into(), entry);
    }

    /// Removes a published object (used by lease expiry and tests).
    /// Returns `true` if something was removed.
    pub fn unregister(&self, name: &str) -> bool {
        self.entries.write().remove(name).is_some()
    }

    /// True if `name` is currently published.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.read().contains_key(name)
    }

    /// Names of all published objects (sorted, for deterministic output).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.entries.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Resolves the object that should serve the next call on `name`.
    ///
    /// For `Singleton` factories, the first resolution creates the instance
    /// and caches it; for `SingleCall`, every resolution creates a fresh
    /// instance.
    ///
    /// # Errors
    ///
    /// [`RemotingError::ObjectNotFound`] when nothing is published as
    /// `name`.
    pub fn resolve(&self, name: &str) -> Result<Arc<dyn Invokable>, RemotingError> {
        // Fast path: read lock.
        {
            let entries = self.entries.read();
            match entries.get(name) {
                Some(Entry::Instance(obj)) => return Ok(Arc::clone(obj)),
                Some(Entry::PerCall(factory)) => return Ok(factory()),
                Some(Entry::LazySingleton(_)) => {}
                None => return Err(RemotingError::ObjectNotFound { object: name.to_string() }),
            }
        }
        // Slow path: promote the lazy singleton under the write lock.
        let mut entries = self.entries.write();
        match entries.get(name) {
            Some(Entry::LazySingleton(factory)) => {
                let obj = factory();
                entries.insert(name.to_string(), Entry::Instance(Arc::clone(&obj)));
                Ok(obj)
            }
            Some(Entry::Instance(obj)) => Ok(Arc::clone(obj)),
            Some(Entry::PerCall(factory)) => Ok(factory()),
            None => Err(RemotingError::ObjectNotFound { object: name.to_string() }),
        }
    }
}

impl std::fmt::Debug for ObjectTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectTable").field("names", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use parc_serial::Value;

    /// Counts instance creations and invocations.
    struct Probe {
        instance: usize,
        calls: Arc<AtomicUsize>,
    }

    impl Invokable for Probe {
        fn invoke(&self, _method: &str, _args: &[Value]) -> Result<Value, RemotingError> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            Ok(Value::I32(self.instance as i32))
        }
    }

    fn probe_factory() -> (Arc<AtomicUsize>, Arc<AtomicUsize>, impl Fn() -> Arc<dyn Invokable>) {
        let created = Arc::new(AtomicUsize::new(0));
        let calls = Arc::new(AtomicUsize::new(0));
        let created2 = Arc::clone(&created);
        let calls2 = Arc::clone(&calls);
        let factory = move || -> Arc<dyn Invokable> {
            let instance = created2.fetch_add(1, Ordering::SeqCst);
            Arc::new(Probe { instance, calls: Arc::clone(&calls2) })
        };
        (created, calls, factory)
    }

    #[test]
    fn singleton_factory_creates_exactly_once() {
        let (created, _, factory) = probe_factory();
        let table = ObjectTable::new();
        table.register_well_known("S", WellKnownObjectMode::Singleton, factory);
        assert_eq!(created.load(Ordering::SeqCst), 0, "lazy until first call");
        let a = table.resolve("S").unwrap();
        let b = table.resolve("S").unwrap();
        assert_eq!(created.load(Ordering::SeqCst), 1);
        assert_eq!(a.invoke("m", &[]).unwrap(), b.invoke("m", &[]).unwrap());
    }

    #[test]
    fn singlecall_factory_creates_per_resolution() {
        let (created, _, factory) = probe_factory();
        let table = ObjectTable::new();
        table.register_well_known("SC", WellKnownObjectMode::SingleCall, factory);
        let a = table.resolve("SC").unwrap().invoke("m", &[]).unwrap();
        let b = table.resolve("SC").unwrap().invoke("m", &[]).unwrap();
        assert_eq!(created.load(Ordering::SeqCst), 2);
        assert_ne!(a, b, "each call sees a distinct instance");
    }

    #[test]
    fn missing_object_is_not_found() {
        let table = ObjectTable::new();
        assert!(matches!(
            table.resolve("ghost"),
            Err(RemotingError::ObjectNotFound { .. })
        ));
    }

    #[test]
    fn unregister_removes() {
        let (_, _, factory) = probe_factory();
        let table = ObjectTable::new();
        table.register_well_known("X", WellKnownObjectMode::Singleton, factory);
        assert!(table.contains("X"));
        assert!(table.unregister("X"));
        assert!(!table.contains("X"));
        assert!(!table.unregister("X"));
        assert!(table.resolve("X").is_err());
    }

    #[test]
    fn names_are_sorted() {
        let table = ObjectTable::new();
        for n in ["zeta", "alpha", "mid"] {
            let (_, _, factory) = probe_factory();
            table.register_well_known(n, WellKnownObjectMode::SingleCall, factory);
        }
        assert_eq!(table.names(), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn clones_share_registrations() {
        let table = ObjectTable::new();
        let clone = table.clone();
        let (_, _, factory) = probe_factory();
        clone.register_well_known("shared", WellKnownObjectMode::Singleton, factory);
        assert!(table.contains("shared"));
    }

    #[test]
    fn concurrent_singleton_resolution_is_single_instance() {
        let (created, _, factory) = probe_factory();
        let table = ObjectTable::new();
        table.register_well_known("S", WellKnownObjectMode::Singleton, factory);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = table.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        t.resolve("S").unwrap();
                    }
                });
            }
        });
        assert_eq!(created.load(Ordering::SeqCst), 1);
    }
}
