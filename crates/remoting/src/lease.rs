//! Lifetime leases — ".Net-managed" object lifetime.
//!
//! §3.2: *"In the new platform object lifetime is managed by the .Net
//! implementation"* — ParC++ destroyed IO objects explicitly, ParC# leaves
//! it to remoting's lease-based distributed GC. [`LeaseManager`] reproduces
//! that: every published object gets a lease; each call renews it; a sweep
//! unregisters objects whose lease lapsed.
//!
//! Time is injected (a nanosecond counter) so expiry is testable without
//! wall-clock sleeps; runtimes feed it from `Instant` or from virtual time.

use std::collections::HashMap;
use std::time::Duration;

use parc_sync::Mutex;

use crate::wellknown::ObjectTable;

/// Env var holding the lease time-to-live in milliseconds. One knob for
/// both lease domains: the runtime failure detector's node leases and the
/// reservation subsystem's claim leases ([`crate::reserve`]).
pub const LEASE_TTL_ENV: &str = "PARC_LEASE_TTL_MS";

/// Default claim-lease TTL when [`LEASE_TTL_ENV`] is unset: long enough
/// that a healthy holder always renews in time, short enough that a dead
/// holder's claim is reclaimed promptly.
pub const DEFAULT_CLAIM_TTL: Duration = Duration::from_millis(1000);

/// The [`LEASE_TTL_ENV`] override, if set to a positive integer.
pub fn ttl_from_env() -> Option<Duration> {
    std::env::var(LEASE_TTL_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// The claim-lease TTL: [`LEASE_TTL_ENV`] when set, else
/// [`DEFAULT_CLAIM_TTL`].
pub fn claim_ttl() -> Duration {
    ttl_from_env().unwrap_or(DEFAULT_CLAIM_TTL)
}

/// Lease bookkeeping for one endpoint's object table.
#[derive(Debug)]
pub struct LeaseManager {
    ttl_nanos: u64,
    leases: Mutex<HashMap<String, u64>>,
}

impl LeaseManager {
    /// Creates a manager with the given time-to-live per lease.
    pub fn new(ttl_nanos: u64) -> LeaseManager {
        LeaseManager { ttl_nanos, leases: Mutex::new(HashMap::new()) }
    }

    /// Lease TTL in nanoseconds.
    pub fn ttl_nanos(&self) -> u64 {
        self.ttl_nanos
    }

    /// Grants (or re-grants) a lease for `object` starting at `now`.
    pub fn grant(&self, object: impl Into<String>, now: u64) {
        self.leases.lock().insert(object.into(), now.saturating_add(self.ttl_nanos));
    }

    /// Renews the lease on a call, if one exists. Returns `false` when the
    /// object holds no lease (infinite lifetime).
    pub fn renew(&self, object: &str, now: u64) -> bool {
        match self.leases.lock().get_mut(object) {
            Some(expiry) => {
                *expiry = now.saturating_add(self.ttl_nanos);
                true
            }
            None => false,
        }
    }

    /// Cancels a lease without collecting the object. Returns `true` if a
    /// lease existed.
    pub fn cancel(&self, object: &str) -> bool {
        self.leases.lock().remove(object).is_some()
    }

    /// Remaining lease time at `now`, if a lease exists (zero if lapsed).
    pub fn remaining(&self, object: &str, now: u64) -> Option<u64> {
        self.leases.lock().get(object).map(|expiry| expiry.saturating_sub(now))
    }

    /// Number of live leases.
    pub fn len(&self) -> usize {
        self.leases.lock().len()
    }

    /// True when no leases are tracked.
    pub fn is_empty(&self) -> bool {
        self.leases.lock().is_empty()
    }

    /// Unregisters every object whose lease lapsed at `now` from `table`,
    /// returning the collected names (sorted, for deterministic logs).
    pub fn sweep(&self, table: &ObjectTable, now: u64) -> Vec<String> {
        let mut leases = self.leases.lock();
        let mut collected: Vec<String> = leases
            .iter()
            .filter(|(_, &expiry)| expiry <= now)
            .map(|(name, _)| name.clone())
            .collect();
        collected.sort();
        for name in &collected {
            leases.remove(name);
            table.unregister(name);
        }
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::FnInvokable;
    use parc_serial::Value;
    use std::sync::Arc;

    fn table_with(names: &[&str]) -> ObjectTable {
        let table = ObjectTable::new();
        for name in names {
            table.register_singleton(
                *name,
                Arc::new(FnInvokable(|_: &str, _: &[Value]| Ok(Value::Null))),
            );
        }
        table
    }

    #[test]
    fn lease_expires_and_object_is_collected() {
        let table = table_with(&["A"]);
        let mgr = LeaseManager::new(100);
        mgr.grant("A", 0);
        assert_eq!(mgr.sweep(&table, 99), Vec::<String>::new());
        assert!(table.contains("A"));
        assert_eq!(mgr.sweep(&table, 100), vec!["A"]);
        assert!(!table.contains("A"));
        assert!(mgr.is_empty());
    }

    #[test]
    fn renewal_extends_lifetime() {
        let table = table_with(&["A"]);
        let mgr = LeaseManager::new(100);
        mgr.grant("A", 0);
        assert!(mgr.renew("A", 90));
        assert!(mgr.sweep(&table, 150).is_empty());
        assert_eq!(mgr.sweep(&table, 190), vec!["A"]);
    }

    #[test]
    fn unleased_objects_are_never_collected() {
        let table = table_with(&["A", "Pinned"]);
        let mgr = LeaseManager::new(10);
        mgr.grant("A", 0);
        assert!(!mgr.renew("Pinned", 0));
        mgr.sweep(&table, 1_000);
        assert!(table.contains("Pinned"));
        assert!(!table.contains("A"));
    }

    #[test]
    fn cancel_preserves_object() {
        let table = table_with(&["A"]);
        let mgr = LeaseManager::new(10);
        mgr.grant("A", 0);
        assert!(mgr.cancel("A"));
        assert!(!mgr.cancel("A"));
        mgr.sweep(&table, 1_000);
        assert!(table.contains("A"));
    }

    #[test]
    fn remaining_reports_time_left() {
        let mgr = LeaseManager::new(100);
        mgr.grant("A", 50);
        assert_eq!(mgr.remaining("A", 100), Some(50));
        assert_eq!(mgr.remaining("A", 200), Some(0));
        assert_eq!(mgr.remaining("B", 0), None);
    }

    #[test]
    fn sweep_collects_multiple_sorted() {
        let table = table_with(&["z", "a", "m"]);
        let mgr = LeaseManager::new(5);
        for n in ["z", "a", "m"] {
            mgr.grant(n, 0);
        }
        assert_eq!(mgr.sweep(&table, 10), vec!["a", "m", "z"]);
    }
}
