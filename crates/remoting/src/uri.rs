//! Object URIs — `tcp://host:port/Name`, `http://host:port/Name`,
//! `inproc://node/Name`.
//!
//! The paper's clients obtain proxies with
//! `Activator.GetObject(typeof(T), "tcp://localhost:1050/DivideServer")`;
//! [`ObjectUri`] is the parsed form of that string.

use std::fmt;
use std::str::FromStr;

use crate::error::RemotingError;

/// Transport scheme of an object URI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Binary formatter over framed TCP (Mono `TcpChannel`).
    Tcp,
    /// SOAP formatter over HTTP-style framing (Mono `HttpChannel`).
    Http,
    /// In-process channel (threads + queues), for single-machine runtimes
    /// and tests.
    Inproc,
}

impl Scheme {
    /// The scheme's URI prefix.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Tcp => "tcp",
            Scheme::Http => "http",
            Scheme::Inproc => "inproc",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed remote-object address.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectUri {
    scheme: Scheme,
    authority: String,
    object: String,
}

impl ObjectUri {
    /// Builds a URI from parts.
    ///
    /// # Errors
    ///
    /// [`RemotingError::BadUri`] if `authority` or `object` is empty or
    /// `object` contains `/`.
    pub fn new(
        scheme: Scheme,
        authority: impl Into<String>,
        object: impl Into<String>,
    ) -> Result<ObjectUri, RemotingError> {
        let authority = authority.into();
        let object = object.into();
        if authority.is_empty() {
            return Err(RemotingError::BadUri {
                uri: format!("{scheme}://{authority}/{object}"),
                detail: "empty authority".into(),
            });
        }
        if object.is_empty() || object.contains('/') {
            return Err(RemotingError::BadUri {
                uri: format!("{scheme}://{authority}/{object}"),
                detail: "object name must be a single non-empty path segment".into(),
            });
        }
        Ok(ObjectUri { scheme, authority, object })
    }

    /// The transport scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Host:port (tcp/http) or node name (inproc).
    pub fn authority(&self) -> &str {
        &self.authority
    }

    /// The published object name.
    pub fn object(&self) -> &str {
        &self.object
    }
}

impl FromStr for ObjectUri {
    type Err = RemotingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = |detail: &str| RemotingError::BadUri { uri: s.to_string(), detail: detail.into() };
        let (scheme_str, rest) = s.split_once("://").ok_or_else(|| bad("missing ://"))?;
        let scheme = match scheme_str {
            "tcp" => Scheme::Tcp,
            "http" => Scheme::Http,
            "inproc" => Scheme::Inproc,
            _ => return Err(bad("unknown scheme")),
        };
        let (authority, object) = rest.split_once('/').ok_or_else(|| bad("missing object path"))?;
        ObjectUri::new(scheme, authority, object)
    }
}

impl fmt::Display for ObjectUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}/{}", self.scheme, self.authority, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let uri: ObjectUri = "tcp://localhost:1050/DivideServer".parse().unwrap();
        assert_eq!(uri.scheme(), Scheme::Tcp);
        assert_eq!(uri.authority(), "localhost:1050");
        assert_eq!(uri.object(), "DivideServer");
    }

    #[test]
    fn display_roundtrips() {
        for s in [
            "tcp://localhost:1050/DivideServer",
            "http://10.0.0.1:8080/factory.soap",
            "inproc://node3/PrimeServer",
        ] {
            let uri: ObjectUri = s.parse().unwrap();
            assert_eq!(uri.to_string(), s);
            assert_eq!(uri.to_string().parse::<ObjectUri>().unwrap(), uri);
        }
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "",
            "tcp://",
            "tcp://host",          // no object
            "tcp:///obj",          // empty authority
            "tcp://host/",         // empty object
            "ftp://host/obj",      // unknown scheme
            "tcp//host/obj",       // missing colon
        ] {
            assert!(s.parse::<ObjectUri>().is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn nested_path_rejected() {
        assert!(ObjectUri::new(Scheme::Tcp, "h:1", "a/b").is_err());
        // ...but a parse of "tcp://h/a/b" splits at the first slash, making
        // object "a/b", which is invalid too.
        assert!("tcp://h/a/b".parse::<ObjectUri>().is_err());
    }

    #[test]
    fn soap_suffix_names_are_fine() {
        // The paper registers factories as "factory.soap".
        let uri = ObjectUri::new(Scheme::Http, "host:80", "factory.soap").unwrap();
        assert_eq!(uri.object(), "factory.soap");
    }
}
