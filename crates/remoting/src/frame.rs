//! The v2 wire frame: length, correlation ID and flags ahead of the
//! formatter payload.
//!
//! The original frame was a bare 4-byte length, which forced the client
//! to hold its stream for the entire request/response round trip — replies
//! were correlated purely by arrival order. The v2 header carries a
//! transport-level correlation ID so a dedicated reader thread can demux
//! replies that arrive in any order, plus a flags byte whose
//! [`FLAG_ONEWAY`] bit tells the server (before deserializing anything)
//! that no reply must be produced for this frame.
//!
//! ```text
//! offset 0..4    payload length, u32 big-endian
//! offset 4..12   correlation id, u64 big-endian
//! offset 12      flags (bit 0: one-way)
//! offset 13..    payload (formatter bytes)
//! ```
//!
//! Writes are vectored: header and payload go to the socket in one
//! `write_all`-equivalent call with no intermediate concatenation. Reads
//! land in a caller-supplied buffer so one allocation serves a whole
//! connection's lifetime of frames.

use std::io::{IoSlice, Read, Write};

/// Size of the fixed v2 header.
pub const HEADER_LEN: usize = 13;

/// Flag bit: the sender expects no reply to this frame.
pub const FLAG_ONEWAY: u8 = 0b0000_0001;

/// Upper bound on a single frame's payload; larger lengths indicate
/// corruption (or an unframed peer) and poison the connection.
pub const MAX_FRAME: usize = 64 << 20;

/// Decoded v2 frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Transport-level correlation id (echoed verbatim in the reply).
    pub corr_id: u64,
    /// Flag bits ([`FLAG_ONEWAY`]).
    pub flags: u8,
    /// Payload length in bytes.
    pub len: usize,
}

impl FrameHeader {
    /// True when the one-way bit is set.
    pub fn oneway(&self) -> bool {
        self.flags & FLAG_ONEWAY != 0
    }

    /// Encodes the header into its 13 wire bytes.
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&(self.len as u32).to_be_bytes());
        out[4..12].copy_from_slice(&self.corr_id.to_be_bytes());
        out[12] = self.flags;
        out
    }

    /// Decodes a header from its 13 wire bytes.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the declared length exceeds [`MAX_FRAME`].
    pub fn from_bytes(raw: &[u8; HEADER_LEN]) -> std::io::Result<FrameHeader> {
        let len = u32::from_be_bytes([raw[0], raw[1], raw[2], raw[3]]) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds limit"),
            ));
        }
        let corr_id = u64::from_be_bytes([
            raw[4], raw[5], raw[6], raw[7], raw[8], raw[9], raw[10], raw[11],
        ]);
        Ok(FrameHeader { corr_id, flags: raw[12], len })
    }
}

/// Writes one v2 frame: header and payload in a single vectored
/// `write_all`-equivalent (no intermediate concatenation).
///
/// # Errors
///
/// `InvalidInput` for over-long payloads; socket errors otherwise.
pub fn write_frame(
    stream: &mut impl Write,
    corr_id: u64,
    flags: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"));
    }
    let header = FrameHeader { corr_id, flags, len: payload.len() }.to_bytes();
    write_all_vectored(stream, &header, payload)?;
    stream.flush()
}

/// Drives `write_vectored` to completion over `head` then `tail`,
/// falling back transparently when the writer consumes partial slices.
fn write_all_vectored(
    stream: &mut impl Write,
    head: &[u8],
    tail: &[u8],
) -> std::io::Result<()> {
    let mut head_done = 0usize;
    let mut tail_done = 0usize;
    while head_done < head.len() || tail_done < tail.len() {
        let slices = [IoSlice::new(&head[head_done..]), IoSlice::new(&tail[tail_done..])];
        let n = match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let from_head = n.min(head.len() - head_done);
        head_done += from_head;
        tail_done += n - from_head;
    }
    Ok(())
}

/// Outcome of one [`read_frame_into`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame arrived; the payload is in the caller's buffer.
    Frame(FrameHeader),
    /// Clean EOF at a frame boundary (peer closed between frames).
    Eof,
    /// The read timed out *before any header byte arrived* — the
    /// connection is idle, not broken. Timeouts mid-frame are errors.
    Idle,
}

/// Reads one v2 frame into `payload` (cleared and resized in place, so the
/// buffer's allocation is reused across frames).
///
/// # Errors
///
/// Socket errors; `InvalidData` for oversized lengths; `UnexpectedEof` for
/// truncation mid-frame. A timeout with zero bytes consumed is reported as
/// [`FrameRead::Idle`] rather than an error so multiplexed reader threads
/// can keep a quiet connection open.
pub fn read_frame_into(
    stream: &mut impl Read,
    payload: &mut Vec<u8>,
) -> std::io::Result<FrameRead> {
    let mut header = [0u8; HEADER_LEN];
    let mut have = 0usize;
    while have < HEADER_LEN {
        match stream.read(&mut header[have..]) {
            Ok(0) if have == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if have == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(FrameRead::Idle)
            }
            Err(e) => return Err(e),
        }
    }
    let header = FrameHeader::from_bytes(&header)?;
    payload.clear();
    payload.resize(header.len, 0);
    stream.read_exact(payload)?;
    Ok(FrameRead::Frame(header))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let h = FrameHeader { corr_id: u64::MAX - 3, flags: FLAG_ONEWAY, len: 12345 };
        assert_eq!(FrameHeader::from_bytes(&h.to_bytes()).unwrap(), h);
        assert!(h.oneway());
    }

    #[test]
    fn frame_roundtrips_through_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 42, 0, b"hello").unwrap();
        assert_eq!(wire.len(), HEADER_LEN + 5);
        let mut cursor = std::io::Cursor::new(wire);
        let mut payload = Vec::new();
        let FrameRead::Frame(h) = read_frame_into(&mut cursor, &mut payload).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!((h.corr_id, h.flags, payload.as_slice()), (42, 0, &b"hello"[..]));
        assert_eq!(read_frame_into(&mut cursor, &mut payload).unwrap(), FrameRead::Eof);
    }

    #[test]
    fn payload_buffer_is_reused_across_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, 0, &[7u8; 64]).unwrap();
        write_frame(&mut wire, 2, 0, &[9u8; 8]).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut payload = Vec::new();
        let _ = read_frame_into(&mut cursor, &mut payload).unwrap();
        let cap = payload.capacity();
        let FrameRead::Frame(h) = read_frame_into(&mut cursor, &mut payload).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!((h.corr_id, payload.len()), (2, 8));
        assert_eq!(payload.capacity(), cap, "second read reuses the allocation");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut wire = FrameHeader { corr_id: 0, flags: 0, len: 0 }.to_bytes().to_vec();
        wire[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut payload = Vec::new();
        let err = read_frame_into(&mut std::io::Cursor::new(wire), &mut payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_mid_header_and_mid_payload_are_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 5, 0, b"abcdef").unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 2] {
            let mut payload = Vec::new();
            let err = read_frame_into(
                &mut std::io::Cursor::new(wire[..cut].to_vec()),
                &mut payload,
            )
            .unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    /// A writer that forces one-byte progress to exercise the partial
    /// vectored-write resumption logic.
    struct OneByteWriter(Vec<u8>);

    impl Write for OneByteWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_vectored_writes_still_produce_a_whole_frame() {
        let mut w = OneByteWriter(Vec::new());
        write_frame(&mut w, 77, FLAG_ONEWAY, b"slow").unwrap();
        let mut payload = Vec::new();
        let FrameRead::Frame(h) =
            read_frame_into(&mut std::io::Cursor::new(w.0), &mut payload).unwrap()
        else {
            panic!("expected frame");
        };
        assert_eq!((h.corr_id, h.oneway(), payload.as_slice()), (77, true, &b"slow"[..]));
    }
}
