//! The v2 wire frame: length, correlation ID and flags ahead of the
//! formatter payload.
//!
//! The original frame was a bare 4-byte length, which forced the client
//! to hold its stream for the entire request/response round trip — replies
//! were correlated purely by arrival order. The v2 header carries a
//! transport-level correlation ID so a dedicated reader thread can demux
//! replies that arrive in any order, plus a flags byte whose
//! [`FLAG_ONEWAY`] bit tells the server (before deserializing anything)
//! that no reply must be produced for this frame.
//!
//! ```text
//! offset 0..4    payload length, u32 big-endian
//! offset 4..12   correlation id, u64 big-endian
//! offset 12      flags (bit 0: one-way, bit 1: trace context present)
//! offset 13..    payload (formatter bytes)
//! ```
//!
//! When [`FLAG_TRACE`] is set, the first [`TRACE_EXT_LEN`] payload bytes
//! are a trace-context extension (trace id, parent span id and a
//! sampling word, each u64 big-endian) and the formatter bytes start
//! after it. The extension is *counted inside the length field*, so
//! framing-level readers ([`read_frame_into`], [`FrameAssembler`]) need
//! no changes at all — dispatchers peel it off with [`split_trace_ext`].
//! A receiver that ignores the flag still sees a well-formed frame; it
//! just fails to decode the payload, exactly as for any version skew.
//!
//! When [`FLAG_DEPTH`] is set, the first [`DEPTH_EXT_LEN`] payload bytes
//! are a dispatch-depth extension (scheduler-wide pending jobs and the
//! deepest single mailbox, each u32 big-endian): the server's live
//! backlog piggybacked on a **reply** so clients can drive batching
//! decisions off real backpressure instead of guessing. Same discipline
//! as the trace extension — counted inside the length, peeled with
//! [`split_depth_ext`]. Requests carry trace context, replies carry
//! depth; a frame never carries both in practice, but if it did the
//! canonical order is trace extension first, depth extension second.
//!
//! Writes are vectored: header and payload go to the socket in one
//! `write_all`-equivalent call with no intermediate concatenation. Reads
//! land in a caller-supplied buffer so one allocation serves a whole
//! connection's lifetime of frames.

use std::io::{IoSlice, Read, Write};

/// Size of the fixed v2 header.
pub const HEADER_LEN: usize = 13;

/// Flag bit: the sender expects no reply to this frame.
pub const FLAG_ONEWAY: u8 = 0b0000_0001;

/// Flag bit: the payload starts with a [`TRACE_EXT_LEN`]-byte
/// trace-context extension.
pub const FLAG_TRACE: u8 = 0b0000_0010;

/// Size of the trace-context extension (three u64 words).
pub const TRACE_EXT_LEN: usize = 24;

/// Flag bit: the payload starts with a [`DEPTH_EXT_LEN`]-byte
/// dispatch-depth extension (set on replies only).
pub const FLAG_DEPTH: u8 = 0b0000_0100;

/// Size of the dispatch-depth extension (two u32 words).
pub const DEPTH_EXT_LEN: usize = 8;

/// Upper bound on a single frame's payload; larger lengths indicate
/// corruption (or an unframed peer) and poison the connection.
pub const MAX_FRAME: usize = 64 << 20;

/// Decoded v2 frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Transport-level correlation id (echoed verbatim in the reply).
    pub corr_id: u64,
    /// Flag bits ([`FLAG_ONEWAY`]).
    pub flags: u8,
    /// Payload length in bytes.
    pub len: usize,
}

/// The trace-context extension a traced frame carries ahead of its
/// formatter bytes: which causal chain the enclosed call belongs to and
/// which caller-side span its server-side work is a child of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceExt {
    /// Causal chain id, shared across every hop.
    pub trace_id: u64,
    /// The sender's innermost span at frame-write time.
    pub parent_span_id: u64,
    /// Sampling word (bit 0: sampled).
    pub sampling: u64,
}

impl TraceExt {
    /// The sender's current trace context, if tracing is live and wire
    /// propagation is on — one relaxed atomic load when recording is
    /// disabled.
    #[inline]
    pub fn capture() -> Option<TraceExt> {
        parc_obs::trace::current_for_wire().map(TraceExt::from_context)
    }

    /// Converts an obs-layer context into its wire form.
    pub fn from_context(ctx: parc_obs::TraceContext) -> TraceExt {
        TraceExt {
            trace_id: ctx.trace_id,
            parent_span_id: ctx.span_id,
            sampling: ctx.sampling,
        }
    }

    /// The obs-layer context a *receiver* installs: the wire parent span
    /// becomes the context's span id (the thing new spans parent under).
    pub fn to_context(self) -> parc_obs::TraceContext {
        parc_obs::TraceContext {
            trace_id: self.trace_id,
            span_id: self.parent_span_id,
            sampling: self.sampling,
        }
    }

    /// Encodes the extension into its 24 wire bytes.
    pub fn to_bytes(&self) -> [u8; TRACE_EXT_LEN] {
        let mut out = [0u8; TRACE_EXT_LEN];
        out[0..8].copy_from_slice(&self.trace_id.to_be_bytes());
        out[8..16].copy_from_slice(&self.parent_span_id.to_be_bytes());
        out[16..24].copy_from_slice(&self.sampling.to_be_bytes());
        out
    }

    /// Decodes an extension from its 24 wire bytes.
    pub fn from_bytes(raw: &[u8; TRACE_EXT_LEN]) -> TraceExt {
        let word = |i: usize| {
            u64::from_be_bytes(raw[i * 8..(i + 1) * 8].try_into().expect("8-byte word"))
        };
        TraceExt { trace_id: word(0), parent_span_id: word(1), sampling: word(2) }
    }
}

/// Peels a [`TraceExt`] off the front of a received payload when the
/// header's [`FLAG_TRACE`] bit is set, returning the extension (if any)
/// and the formatter bytes proper.
///
/// # Errors
///
/// `InvalidData` when the flag is set but the payload is shorter than
/// the extension — a corrupt or lying frame.
pub fn split_trace_ext<'a>(
    header: &FrameHeader,
    payload: &'a [u8],
) -> std::io::Result<(Option<TraceExt>, &'a [u8])> {
    if header.flags & FLAG_TRACE == 0 {
        return Ok((None, payload));
    }
    if payload.len() < TRACE_EXT_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "traced frame shorter than its trace extension",
        ));
    }
    let ext = TraceExt::from_bytes(
        payload[..TRACE_EXT_LEN].try_into().expect("checked length"),
    );
    Ok((Some(ext), &payload[TRACE_EXT_LEN..]))
}

/// The dispatch-depth extension a reply frame carries ahead of its
/// formatter bytes: the serving scheduler's backlog at reply-write time,
/// the feedback half of the closed-loop aggregation controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthExt {
    /// Jobs enqueued and not yet finished, scheduler-wide.
    pub pending: u32,
    /// Queued jobs in the deepest single mailbox (the hotspot).
    pub busiest: u32,
}

impl DepthExt {
    /// Captures the current backlog of a mailbox scheduler through its
    /// depth handle.
    pub fn capture(depth: &crate::mailbox::DispatchDepth) -> DepthExt {
        DepthExt {
            pending: depth.pending().min(u32::MAX as usize) as u32,
            busiest: depth.max_object_depth().min(u32::MAX as usize) as u32,
        }
    }

    /// Encodes the extension into its 8 wire bytes.
    pub fn to_bytes(&self) -> [u8; DEPTH_EXT_LEN] {
        let mut out = [0u8; DEPTH_EXT_LEN];
        out[0..4].copy_from_slice(&self.pending.to_be_bytes());
        out[4..8].copy_from_slice(&self.busiest.to_be_bytes());
        out
    }

    /// Decodes an extension from its 8 wire bytes.
    pub fn from_bytes(raw: &[u8; DEPTH_EXT_LEN]) -> DepthExt {
        DepthExt {
            pending: u32::from_be_bytes(raw[0..4].try_into().expect("4-byte word")),
            busiest: u32::from_be_bytes(raw[4..8].try_into().expect("4-byte word")),
        }
    }
}

/// Peels a [`DepthExt`] off the front of a received payload when the
/// header's [`FLAG_DEPTH`] bit is set, returning the extension (if any)
/// and the formatter bytes proper. When a frame also carries a trace
/// extension, peel that first ([`split_trace_ext`]) and hand the
/// remainder here.
///
/// # Errors
///
/// `InvalidData` when the flag is set but the payload is shorter than
/// the extension — a corrupt or lying frame.
pub fn split_depth_ext<'a>(
    header: &FrameHeader,
    payload: &'a [u8],
) -> std::io::Result<(Option<DepthExt>, &'a [u8])> {
    if header.flags & FLAG_DEPTH == 0 {
        return Ok((None, payload));
    }
    if payload.len() < DEPTH_EXT_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame shorter than its depth extension",
        ));
    }
    let ext = DepthExt::from_bytes(
        payload[..DEPTH_EXT_LEN].try_into().expect("checked length"),
    );
    Ok((Some(ext), &payload[DEPTH_EXT_LEN..]))
}

impl FrameHeader {
    /// True when the one-way bit is set.
    pub fn oneway(&self) -> bool {
        self.flags & FLAG_ONEWAY != 0
    }

    /// True when the trace-context bit is set.
    pub fn traced(&self) -> bool {
        self.flags & FLAG_TRACE != 0
    }

    /// True when the dispatch-depth bit is set.
    pub fn has_depth(&self) -> bool {
        self.flags & FLAG_DEPTH != 0
    }

    /// Encodes the header into its 13 wire bytes.
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..4].copy_from_slice(&(self.len as u32).to_be_bytes());
        out[4..12].copy_from_slice(&self.corr_id.to_be_bytes());
        out[12] = self.flags;
        out
    }

    /// Decodes a header from its 13 wire bytes.
    ///
    /// # Errors
    ///
    /// `InvalidData` when the declared length exceeds [`MAX_FRAME`].
    pub fn from_bytes(raw: &[u8; HEADER_LEN]) -> std::io::Result<FrameHeader> {
        let len = u32::from_be_bytes([raw[0], raw[1], raw[2], raw[3]]) as usize;
        if len > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds limit"),
            ));
        }
        let corr_id = u64::from_be_bytes([
            raw[4], raw[5], raw[6], raw[7], raw[8], raw[9], raw[10], raw[11],
        ]);
        Ok(FrameHeader { corr_id, flags: raw[12], len })
    }
}

/// Writes one v2 frame: header and payload in a single vectored
/// `write_all`-equivalent (no intermediate concatenation).
///
/// # Errors
///
/// `InvalidInput` for over-long payloads; socket errors otherwise.
pub fn write_frame(
    stream: &mut impl Write,
    corr_id: u64,
    flags: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"));
    }
    let header = FrameHeader { corr_id, flags, len: payload.len() }.to_bytes();
    write_all_vectored(stream, &header, payload)?;
    stream.flush()
}

/// Maximum head size: fixed header plus the trace extension.
pub const TRACED_HEAD_MAX: usize = HEADER_LEN + TRACE_EXT_LEN;

/// Builds the wire head (header, plus extension when `trace` is present)
/// for a frame with `payload_len` formatter bytes. Returns the buffer
/// and the number of valid bytes in it — [`HEADER_LEN`] untraced,
/// [`TRACED_HEAD_MAX`] traced. Transports that hand-roll their writes
/// (the reactor's non-blocking path) use this instead of
/// [`write_frame_traced`].
pub fn traced_head(
    corr_id: u64,
    flags: u8,
    trace: Option<TraceExt>,
    payload_len: usize,
) -> ([u8; TRACED_HEAD_MAX], usize) {
    let mut out = [0u8; TRACED_HEAD_MAX];
    match trace {
        Some(ext) => {
            let header = FrameHeader {
                corr_id,
                flags: flags | FLAG_TRACE,
                len: TRACE_EXT_LEN + payload_len,
            };
            out[..HEADER_LEN].copy_from_slice(&header.to_bytes());
            out[HEADER_LEN..].copy_from_slice(&ext.to_bytes());
            (out, TRACED_HEAD_MAX)
        }
        None => {
            let header = FrameHeader { corr_id, flags: flags & !FLAG_TRACE, len: payload_len };
            out[..HEADER_LEN].copy_from_slice(&header.to_bytes());
            (out, HEADER_LEN)
        }
    }
}

/// [`write_frame`] with an optional trace-context extension: sets
/// [`FLAG_TRACE`] and prepends the 24 extension bytes (inside the
/// counted length) when `trace` is present. Still one vectored write.
///
/// # Errors
///
/// `InvalidInput` for over-long payloads; socket errors otherwise.
pub fn write_frame_traced(
    stream: &mut impl Write,
    corr_id: u64,
    flags: u8,
    trace: Option<TraceExt>,
    payload: &[u8],
) -> std::io::Result<()> {
    if payload.len().saturating_add(TRACE_EXT_LEN) > MAX_FRAME {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"));
    }
    let (head, head_len) = traced_head(corr_id, flags, trace, payload.len());
    write_all_vectored(stream, &head[..head_len], payload)?;
    stream.flush()
}

/// Maximum reply-head size: fixed header plus the depth extension.
pub const DEPTH_HEAD_MAX: usize = HEADER_LEN + DEPTH_EXT_LEN;

/// Builds the wire head (header, plus extension when `depth` is present)
/// for a reply frame with `payload_len` formatter bytes. Returns the
/// buffer and the number of valid bytes in it — [`HEADER_LEN`] plain,
/// [`DEPTH_HEAD_MAX`] with backlog feedback. The reply analogue of
/// [`traced_head`].
pub fn depth_head(
    corr_id: u64,
    flags: u8,
    depth: Option<DepthExt>,
    payload_len: usize,
) -> ([u8; DEPTH_HEAD_MAX], usize) {
    let mut out = [0u8; DEPTH_HEAD_MAX];
    match depth {
        Some(ext) => {
            let header = FrameHeader {
                corr_id,
                flags: flags | FLAG_DEPTH,
                len: DEPTH_EXT_LEN + payload_len,
            };
            out[..HEADER_LEN].copy_from_slice(&header.to_bytes());
            out[HEADER_LEN..].copy_from_slice(&ext.to_bytes());
            (out, DEPTH_HEAD_MAX)
        }
        None => {
            let header = FrameHeader { corr_id, flags: flags & !FLAG_DEPTH, len: payload_len };
            out[..HEADER_LEN].copy_from_slice(&header.to_bytes());
            (out, HEADER_LEN)
        }
    }
}

/// [`write_frame`] with an optional dispatch-depth extension: sets
/// [`FLAG_DEPTH`] and prepends the 8 extension bytes (inside the counted
/// length) when `depth` is present. Still one vectored write.
///
/// # Errors
///
/// `InvalidInput` for over-long payloads; socket errors otherwise.
pub fn write_frame_depth(
    stream: &mut impl Write,
    corr_id: u64,
    flags: u8,
    depth: Option<DepthExt>,
    payload: &[u8],
) -> std::io::Result<()> {
    if payload.len().saturating_add(DEPTH_EXT_LEN) > MAX_FRAME {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"));
    }
    let (head, head_len) = depth_head(corr_id, flags, depth, payload.len());
    write_all_vectored(stream, &head[..head_len], payload)?;
    stream.flush()
}

/// Drives `write_vectored` to completion over `head` then `tail`,
/// falling back transparently when the writer consumes partial slices.
fn write_all_vectored(
    stream: &mut impl Write,
    head: &[u8],
    tail: &[u8],
) -> std::io::Result<()> {
    let mut head_done = 0usize;
    let mut tail_done = 0usize;
    while head_done < head.len() || tail_done < tail.len() {
        let slices = [IoSlice::new(&head[head_done..]), IoSlice::new(&tail[tail_done..])];
        let n = match stream.write_vectored(&slices) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let from_head = n.min(head.len() - head_done);
        head_done += from_head;
        tail_done += n - from_head;
    }
    Ok(())
}

/// Outcome of one [`read_frame_into`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame arrived; the payload is in the caller's buffer.
    Frame(FrameHeader),
    /// Clean EOF at a frame boundary (peer closed between frames).
    Eof,
    /// The read timed out *before any header byte arrived* — the
    /// connection is idle, not broken. Timeouts mid-frame are errors.
    Idle,
}

/// Reads one v2 frame into `payload` (cleared and resized in place, so the
/// buffer's allocation is reused across frames).
///
/// # Errors
///
/// Socket errors; `InvalidData` for oversized lengths; `UnexpectedEof` for
/// truncation mid-frame. A timeout with zero bytes consumed is reported as
/// [`FrameRead::Idle`] rather than an error so multiplexed reader threads
/// can keep a quiet connection open.
pub fn read_frame_into(
    stream: &mut impl Read,
    payload: &mut Vec<u8>,
) -> std::io::Result<FrameRead> {
    let mut header = [0u8; HEADER_LEN];
    let mut have = 0usize;
    while have < HEADER_LEN {
        match stream.read(&mut header[have..]) {
            Ok(0) if have == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if have == 0
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
            {
                return Ok(FrameRead::Idle)
            }
            Err(e) => return Err(e),
        }
    }
    let header = FrameHeader::from_bytes(&header)?;
    payload.clear();
    payload.resize(header.len, 0);
    stream.read_exact(payload)?;
    Ok(FrameRead::Frame(header))
}

/// Incremental v2 frame reassembly for readiness-driven transports.
///
/// A blocking reader can call [`read_frame_into`] and park until a whole
/// frame arrives; a reactor cannot — it gets whatever bytes the socket
/// had ready, at arbitrary boundaries (mid-header, mid-payload, three
/// frames and a half in one chunk). The assembler is the state machine
/// between those chunks and complete frames: feed it every chunk in
/// arrival order and it emits each completed frame exactly once, reusing
/// one internal payload allocation across the connection's lifetime.
///
/// Oversized declared lengths are rejected the moment the header is
/// complete — before any payload byte is buffered — exactly like
/// [`read_frame_into`]; the connection owning a poisoned assembler must
/// be torn down (the stream can no longer be resynced).
#[derive(Debug, Default)]
pub struct FrameAssembler {
    header: [u8; HEADER_LEN],
    have_header: usize,
    /// Parsed header whose payload is still being accumulated.
    pending: Option<FrameHeader>,
    payload: Vec<u8>,
}

impl FrameAssembler {
    /// A fresh assembler at a frame boundary.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// True when bytes of a partially-received frame are buffered — i.e.
    /// the stream is *not* at a frame boundary. EOF while `mid_frame()`
    /// is truncation; EOF at a boundary is a clean close.
    pub fn mid_frame(&self) -> bool {
        self.have_header > 0 || self.pending.is_some()
    }

    /// Consumes one chunk, invoking `sink` once per frame completed by
    /// it (possibly zero, possibly several). The payload slice handed to
    /// `sink` is only valid for the duration of the callback — copy it
    /// out if it must outlive the call.
    ///
    /// # Errors
    ///
    /// `InvalidData` when a completed header declares more than
    /// [`MAX_FRAME`] payload bytes. The assembler is then poisoned
    /// mid-frame; feeding further chunks keeps erroring.
    pub fn feed(
        &mut self,
        mut chunk: &[u8],
        sink: &mut dyn FnMut(FrameHeader, &[u8]),
    ) -> std::io::Result<()> {
        while !chunk.is_empty() {
            match self.pending {
                None => {
                    let want = HEADER_LEN - self.have_header;
                    let take = want.min(chunk.len());
                    self.header[self.have_header..self.have_header + take]
                        .copy_from_slice(&chunk[..take]);
                    self.have_header += take;
                    chunk = &chunk[take..];
                    if self.have_header == HEADER_LEN {
                        // Oversize is rejected here, mid-reassembly, with
                        // no payload allocation — and the header bytes are
                        // deliberately NOT consumed back to zero, so the
                        // assembler stays visibly mid-frame (poisoned).
                        let header = FrameHeader::from_bytes(&self.header)?;
                        self.payload.clear();
                        if header.len == 0 {
                            // Zero-payload frames complete with the header.
                            sink(header, &[]);
                            self.have_header = 0;
                        } else {
                            self.payload.reserve(header.len);
                            self.pending = Some(header);
                        }
                    }
                }
                Some(header) => {
                    let want = header.len - self.payload.len();
                    let take = want.min(chunk.len());
                    self.payload.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    if self.payload.len() == header.len {
                        sink(header, &self.payload);
                        self.pending = None;
                        self.have_header = 0;
                        self.payload.clear();
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let h = FrameHeader { corr_id: u64::MAX - 3, flags: FLAG_ONEWAY, len: 12345 };
        assert_eq!(FrameHeader::from_bytes(&h.to_bytes()).unwrap(), h);
        assert!(h.oneway());
    }

    #[test]
    fn frame_roundtrips_through_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 42, 0, b"hello").unwrap();
        assert_eq!(wire.len(), HEADER_LEN + 5);
        let mut cursor = std::io::Cursor::new(wire);
        let mut payload = Vec::new();
        let FrameRead::Frame(h) = read_frame_into(&mut cursor, &mut payload).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!((h.corr_id, h.flags, payload.as_slice()), (42, 0, &b"hello"[..]));
        assert_eq!(read_frame_into(&mut cursor, &mut payload).unwrap(), FrameRead::Eof);
    }

    #[test]
    fn payload_buffer_is_reused_across_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, 0, &[7u8; 64]).unwrap();
        write_frame(&mut wire, 2, 0, &[9u8; 8]).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let mut payload = Vec::new();
        let _ = read_frame_into(&mut cursor, &mut payload).unwrap();
        let cap = payload.capacity();
        let FrameRead::Frame(h) = read_frame_into(&mut cursor, &mut payload).unwrap() else {
            panic!("expected frame");
        };
        assert_eq!((h.corr_id, payload.len()), (2, 8));
        assert_eq!(payload.capacity(), cap, "second read reuses the allocation");
    }

    #[test]
    fn oversized_length_is_rejected_without_allocation() {
        let mut wire = FrameHeader { corr_id: 0, flags: 0, len: 0 }.to_bytes().to_vec();
        wire[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut payload = Vec::new();
        let err = read_frame_into(&mut std::io::Cursor::new(wire), &mut payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_mid_header_and_mid_payload_are_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 5, 0, b"abcdef").unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 2] {
            let mut payload = Vec::new();
            let err = read_frame_into(
                &mut std::io::Cursor::new(wire[..cut].to_vec()),
                &mut payload,
            )
            .unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    /// A writer that forces one-byte progress to exercise the partial
    /// vectored-write resumption logic.
    struct OneByteWriter(Vec<u8>);

    impl Write for OneByteWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn collect_frames(
        assembler: &mut FrameAssembler,
        chunk: &[u8],
    ) -> std::io::Result<Vec<(FrameHeader, Vec<u8>)>> {
        let mut out = Vec::new();
        assembler.feed(chunk, &mut |h, p| out.push((h, p.to_vec())))?;
        Ok(out)
    }

    #[test]
    fn assembler_handles_byte_at_a_time_delivery() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 3, FLAG_ONEWAY, b"ab").unwrap();
        write_frame(&mut wire, 4, 0, b"").unwrap();
        write_frame(&mut wire, 5, 0, b"xyz").unwrap();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &wire {
            got.extend(collect_frames(&mut asm, std::slice::from_ref(b)).unwrap());
        }
        assert!(!asm.mid_frame());
        let want = [
            (3u64, true, b"ab".to_vec()),
            (4, false, Vec::new()),
            (5, false, b"xyz".to_vec()),
        ];
        assert_eq!(got.len(), want.len());
        for ((h, p), (corr, oneway, payload)) in got.iter().zip(&want) {
            assert_eq!((h.corr_id, h.oneway(), p), (*corr, *oneway, payload));
        }
    }

    #[test]
    fn assembler_emits_multiple_frames_from_one_chunk() {
        let mut wire = Vec::new();
        for i in 0..5u64 {
            write_frame(&mut wire, i, 0, &vec![i as u8; i as usize]).unwrap();
        }
        let mut asm = FrameAssembler::new();
        let got = collect_frames(&mut asm, &wire).unwrap();
        assert_eq!(got.len(), 5);
        assert!(!asm.mid_frame());
    }

    #[test]
    fn assembler_reports_mid_frame_after_truncation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 9, 0, b"abcdef").unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 2] {
            let mut asm = FrameAssembler::new();
            let got = collect_frames(&mut asm, &wire[..cut]).unwrap();
            assert!(got.is_empty(), "cut at {cut} emitted a frame");
            assert!(asm.mid_frame(), "cut at {cut} not reported mid-frame");
        }
    }

    #[test]
    fn assembler_rejects_oversize_mid_reassembly() {
        let mut raw = FrameHeader { corr_id: 1, flags: 0, len: 0 }.to_bytes().to_vec();
        raw[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut asm = FrameAssembler::new();
        // Split the poisoned header across two chunks: the error must fire
        // exactly when the header completes, and the assembler stays
        // poisoned for later chunks.
        assert!(collect_frames(&mut asm, &raw[..7]).is_ok());
        let err = collect_frames(&mut asm, &raw[7..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(asm.mid_frame());
    }

    #[test]
    fn traced_frame_roundtrips_and_strips_cleanly() {
        let ext = TraceExt { trace_id: 0xdead_beef_cafe_f00d, parent_span_id: 42, sampling: 1 };
        let mut wire = Vec::new();
        write_frame_traced(&mut wire, 9, FLAG_ONEWAY, Some(ext), b"payload").unwrap();
        assert_eq!(wire.len(), HEADER_LEN + TRACE_EXT_LEN + 7);
        let mut payload = Vec::new();
        let FrameRead::Frame(h) =
            read_frame_into(&mut std::io::Cursor::new(wire), &mut payload).unwrap()
        else {
            panic!("expected frame");
        };
        assert!(h.traced());
        assert!(h.oneway());
        assert_eq!(h.len, TRACE_EXT_LEN + 7);
        let (got, rest) = split_trace_ext(&h, &payload).unwrap();
        assert_eq!(got, Some(ext));
        assert_eq!(rest, b"payload");
    }

    #[test]
    fn untraced_frames_are_bit_identical_to_write_frame() {
        let mut plain = Vec::new();
        write_frame(&mut plain, 7, 0, b"abc").unwrap();
        let mut traced_none = Vec::new();
        write_frame_traced(&mut traced_none, 7, 0, None, b"abc").unwrap();
        assert_eq!(plain, traced_none);
        let h = FrameHeader { corr_id: 7, flags: 0, len: 3 };
        let (ext, rest) = split_trace_ext(&h, b"abc").unwrap();
        assert_eq!(ext, None);
        assert_eq!(rest, b"abc");
    }

    #[test]
    fn traced_frames_reassemble_through_the_assembler() {
        let ext = TraceExt { trace_id: 3, parent_span_id: 4, sampling: 1 };
        let mut wire = Vec::new();
        write_frame_traced(&mut wire, 11, 0, Some(ext), b"xy").unwrap();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &wire {
            got.extend(collect_frames(&mut asm, std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(got.len(), 1);
        let (h, p) = &got[0];
        let (stripped, rest) = split_trace_ext(h, p).unwrap();
        assert_eq!(stripped, Some(ext));
        assert_eq!(rest, b"xy");
    }

    #[test]
    fn lying_trace_flag_is_invalid_data() {
        let h = FrameHeader { corr_id: 1, flags: FLAG_TRACE, len: 5 };
        let err = split_trace_ext(&h, &[0u8; 5]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn traced_head_matches_streamed_bytes() {
        let ext = TraceExt { trace_id: 10, parent_span_id: 20, sampling: 1 };
        let (head, head_len) = traced_head(5, 0, Some(ext), 3);
        let mut wire = Vec::new();
        write_frame_traced(&mut wire, 5, 0, Some(ext), b"abc").unwrap();
        assert_eq!(&wire[..head_len], &head[..head_len]);
        let (plain_head, plain_len) = traced_head(5, 0, None, 3);
        assert_eq!(plain_len, HEADER_LEN);
        let mut plain = Vec::new();
        write_frame(&mut plain, 5, 0, b"abc").unwrap();
        assert_eq!(&plain[..plain_len], &plain_head[..plain_len]);
    }

    #[test]
    fn depth_frame_roundtrips_and_strips_cleanly() {
        let ext = DepthExt { pending: 4096, busiest: 37 };
        let mut wire = Vec::new();
        write_frame_depth(&mut wire, 13, 0, Some(ext), b"reply").unwrap();
        assert_eq!(wire.len(), HEADER_LEN + DEPTH_EXT_LEN + 5);
        let mut payload = Vec::new();
        let FrameRead::Frame(h) =
            read_frame_into(&mut std::io::Cursor::new(wire), &mut payload).unwrap()
        else {
            panic!("expected frame");
        };
        assert!(h.has_depth());
        assert!(!h.traced());
        assert_eq!(h.len, DEPTH_EXT_LEN + 5);
        let (got, rest) = split_depth_ext(&h, &payload).unwrap();
        assert_eq!(got, Some(ext));
        assert_eq!(rest, b"reply");
    }

    #[test]
    fn depthless_frames_are_bit_identical_to_write_frame() {
        let mut plain = Vec::new();
        write_frame(&mut plain, 8, 0, b"abc").unwrap();
        let mut depth_none = Vec::new();
        write_frame_depth(&mut depth_none, 8, 0, None, b"abc").unwrap();
        assert_eq!(plain, depth_none);
        let h = FrameHeader { corr_id: 8, flags: 0, len: 3 };
        let (ext, rest) = split_depth_ext(&h, b"abc").unwrap();
        assert_eq!(ext, None);
        assert_eq!(rest, b"abc");
    }

    #[test]
    fn depth_frames_reassemble_through_the_assembler() {
        let ext = DepthExt { pending: 9, busiest: 3 };
        let mut wire = Vec::new();
        write_frame_depth(&mut wire, 21, 0, Some(ext), b"xy").unwrap();
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &wire {
            got.extend(collect_frames(&mut asm, std::slice::from_ref(b)).unwrap());
        }
        assert_eq!(got.len(), 1);
        let (h, p) = &got[0];
        let (stripped, rest) = split_depth_ext(h, p).unwrap();
        assert_eq!(stripped, Some(ext));
        assert_eq!(rest, b"xy");
    }

    #[test]
    fn lying_depth_flag_is_invalid_data() {
        let h = FrameHeader { corr_id: 1, flags: FLAG_DEPTH, len: 4 };
        let err = split_depth_ext(&h, &[0u8; 4]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn depth_head_matches_streamed_bytes() {
        let ext = DepthExt { pending: 100, busiest: 7 };
        let (head, head_len) = depth_head(5, 0, Some(ext), 3);
        let mut wire = Vec::new();
        write_frame_depth(&mut wire, 5, 0, Some(ext), b"abc").unwrap();
        assert_eq!(&wire[..head_len], &head[..head_len]);
        let (plain_head, plain_len) = depth_head(5, 0, None, 3);
        assert_eq!(plain_len, HEADER_LEN);
        let mut plain = Vec::new();
        write_frame(&mut plain, 5, 0, b"abc").unwrap();
        assert_eq!(&plain[..plain_len], &plain_head[..plain_len]);
    }

    #[test]
    fn partial_vectored_writes_still_produce_a_whole_frame() {
        let mut w = OneByteWriter(Vec::new());
        write_frame(&mut w, 77, FLAG_ONEWAY, b"slow").unwrap();
        let mut payload = Vec::new();
        let FrameRead::Frame(h) =
            read_frame_into(&mut std::io::Cursor::new(w.0), &mut payload).unwrap()
        else {
            panic!("expected frame");
        };
        assert_eq!((h.corr_id, h.oneway(), payload.as_slice()), (77, true, &b"slow"[..]));
    }
}
