//! Server-side dispatch: from decoded [`CallMessage`]s to object method
//! invocations.
//!
//! In .NET remoting the server-side stack is reflective; here, server
//! objects implement [`Invokable`] (usually via the generated dispatcher of
//! [`crate::remote_interface!`]) and [`dispatch`] routes a call through an
//! [`ObjectTable`]. This function is shared by every channel — inproc, TCP
//! and HTTP differ only in framing and formatter.

use std::sync::Arc;

use parc_serial::Value;

use crate::error::RemotingError;
use crate::message::{CallMessage, ReturnMessage};
use crate::wellknown::ObjectTable;

/// A server object reachable by name: given a method name and marshalled
/// arguments, produce a marshalled result.
///
/// Implementations must be thread-safe — the channels dispatch concurrent
/// calls from multiple connections, exactly like .NET singleton objects,
/// which "must be prepared for concurrent access". Use interior mutability
/// for state.
pub trait Invokable: Send + Sync {
    /// Invokes `method` with `args`.
    ///
    /// # Errors
    ///
    /// [`RemotingError::MethodNotFound`] for unknown methods,
    /// [`RemotingError::BadArguments`] for marshalling mismatches, or any
    /// error the method itself produces.
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, RemotingError>;
}

impl<T: Invokable + ?Sized> Invokable for Arc<T> {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, RemotingError> {
        (**self).invoke(method, args)
    }
}

/// Routes one call through the table, producing a reply (unless one-way).
///
/// Faults never poison the channel: every error becomes a fault
/// [`ReturnMessage`] for two-way calls and is silently dropped for one-way
/// calls (matching fire-and-forget delegate semantics). A *panic* inside
/// the method body is caught here and converted to
/// [`RemotingError::ServerFault`] — without this, a mailbox worker's own
/// `catch_unwind` would contain the panic but never send a reply, and the
/// caller would burn its whole per-call deadline on a dead correlation
/// slot.
pub fn dispatch(table: &ObjectTable, call: &CallMessage) -> Option<ReturnMessage> {
    let _span = parc_obs::Span::enter(parc_obs::kinds::DISPATCH);
    let outcome = table.resolve(&call.object).and_then(|obj| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            obj.invoke(&call.method, &call.args)
        }))
        .unwrap_or_else(|payload| {
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Err(RemotingError::ServerFault {
                detail: format!("method {:?} panicked: {detail}", call.method),
            })
        })
    });
    if call.oneway {
        return None;
    }
    Some(match outcome {
        // A `__moved` envelope from a forwarding entry becomes the Moved
        // reply variant: the inner value travels as the result and the new
        // location rides the reply's `moved_to` field.
        Ok(value) => match crate::forward::split_moved(value) {
            (value, Some(uri)) => ReturnMessage::ok(call.call_id, value).with_moved_to(uri),
            (value, None) => ReturnMessage::ok(call.call_id, value),
        },
        // Unwrap server faults so the client does not double-wrap the
        // prefix when it re-raises the fault as its own ServerFault.
        Err(RemotingError::ServerFault { detail }) => ReturnMessage::fault(call.call_id, detail),
        Err(e) => ReturnMessage::fault(call.call_id, e.to_string()),
    })
}

/// Convenience [`Invokable`] built from a closure — handy in tests and for
/// tiny service objects.
pub struct FnInvokable<F>(pub F);

impl<F> Invokable for FnInvokable<F>
where
    F: Fn(&str, &[Value]) -> Result<Value, RemotingError> + Send + Sync,
{
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, RemotingError> {
        (self.0)(method, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wellknown::ObjectTable;

    fn echo_table() -> ObjectTable {
        let table = ObjectTable::new();
        table.register_singleton(
            "Echo",
            Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
                "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
                "boom" => Err(RemotingError::ServerFault { detail: "kaboom".into() }),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Echo".into(),
                    method: method.into(),
                }),
            })),
        );
        table
    }

    #[test]
    fn dispatch_routes_to_method() {
        let table = echo_table();
        let call = CallMessage::new("Echo", "echo", vec![Value::I32(5)]);
        let reply = dispatch(&table, &call).unwrap();
        assert_eq!(reply.result, Ok(Value::I32(5)));
    }

    #[test]
    fn unknown_object_is_fault_not_crash() {
        let table = echo_table();
        let call = CallMessage::new("Nope", "echo", vec![]);
        let reply = dispatch(&table, &call).unwrap();
        let err = reply.result.unwrap_err();
        assert!(err.contains("Nope"), "{err}");
    }

    #[test]
    fn unknown_method_is_fault() {
        let table = echo_table();
        let reply = dispatch(&table, &CallMessage::new("Echo", "frobnicate", vec![])).unwrap();
        assert!(reply.result.is_err());
    }

    #[test]
    fn server_error_becomes_fault_reply() {
        let table = echo_table();
        let reply = dispatch(&table, &CallMessage::new("Echo", "boom", vec![])).unwrap();
        assert!(reply.result.unwrap_err().contains("kaboom"));
    }

    #[test]
    fn oneway_calls_get_no_reply_even_on_error() {
        let table = echo_table();
        assert!(dispatch(&table, &CallMessage::one_way("Echo", "echo", vec![])).is_none());
        assert!(dispatch(&table, &CallMessage::one_way("Nope", "echo", vec![])).is_none());
    }

    #[test]
    fn method_panic_becomes_server_fault_reply() {
        let table = ObjectTable::new();
        table.register_singleton(
            "Bomb",
            Arc::new(FnInvokable(|method: &str, _args: &[Value]| -> Result<Value, RemotingError> {
                panic!("detonated in {method}")
            })),
        );
        let reply = dispatch(&table, &CallMessage::new("Bomb", "tick", vec![])).unwrap();
        let err = reply.result.unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("detonated in tick"), "{err}");
    }

    #[test]
    fn reply_echoes_call_id() {
        let table = echo_table();
        let mut call = CallMessage::new("Echo", "echo", vec![]);
        call.call_id = 777;
        assert_eq!(dispatch(&table, &call).unwrap().call_id, 777);
    }
}
