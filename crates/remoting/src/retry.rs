//! Retry policy and per-call deadlines.
//!
//! The channel layer's original failure behaviour was a single hard-coded
//! 30 s reply deadline and a permanent error afterwards. This module makes
//! both halves configurable and deterministic: [`call_timeout`] is the
//! per-call deadline every channel consults (`PARC_CALL_TIMEOUT`
//! overrides it in milliseconds), and [`RetryPolicy`] wraps an operation
//! in bounded retries with exponential backoff and deterministic
//! SplitMix64 jitter (`PARC_RETRY` configures it). One-way posts and
//! idempotent-marked methods retry transparently in the proxies; two-way
//! non-idempotent calls never retry implicitly, preserving at-most-once
//! semantics.

use std::sync::OnceLock;
use std::time::Duration;

use crate::error::RemotingError;

/// The default per-call reply deadline (the historical constant).
pub const DEFAULT_CALL_TIMEOUT: Duration = Duration::from_secs(30);

/// SplitMix64 — the same tiny deterministic generator parc-testkit uses,
/// duplicated here because the remoting crate cannot depend on the test
/// harness. One `mix` step is a pure function of its input, which keeps
/// backoff jitter reproducible per (seed, attempt) pair.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stateful SplitMix64 stream for places that need a sequence of draws.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The per-call reply deadline: `PARC_CALL_TIMEOUT` (milliseconds) when
/// set and parseable, [`DEFAULT_CALL_TIMEOUT`] otherwise. Read once per
/// process.
pub fn call_timeout() -> Duration {
    static TIMEOUT: OnceLock<Duration> = OnceLock::new();
    *TIMEOUT.get_or_init(|| {
        std::env::var("PARC_CALL_TIMEOUT")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map_or(DEFAULT_CALL_TIMEOUT, Duration::from_millis)
    })
}

/// Bounded-retry policy: up to `max_attempts` tries with exponential
/// backoff (`base_backoff * 2^attempt`, capped at `max_backoff`) and
/// deterministic jitter in `[0.5, 1.0]` of the computed delay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Jitter seed; same seed → same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Builds a policy with explicit bounds.
    pub fn new(max_attempts: u32, base_backoff: Duration, max_backoff: Duration) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff,
            max_backoff,
            ..RetryPolicy::default()
        }
    }

    /// Re-seeds the jitter stream (for reproducible tests and benches).
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// The process-wide policy: parsed once from `PARC_RETRY`
    /// (`attempts=N,base_ms=B,max_ms=M`, or a bare attempt count), falling
    /// back to the default policy when unset or malformed.
    pub fn from_env() -> RetryPolicy {
        static POLICY: OnceLock<RetryPolicy> = OnceLock::new();
        POLICY
            .get_or_init(|| {
                std::env::var("PARC_RETRY")
                    .ok()
                    .map_or_else(RetryPolicy::default, |v| RetryPolicy::parse(&v))
            })
            .clone()
    }

    /// Parses a `PARC_RETRY`-style spec. Unknown keys are ignored;
    /// malformed values fall back to the default for that field.
    pub fn parse(spec: &str) -> RetryPolicy {
        let mut policy = RetryPolicy::default();
        let spec = spec.trim();
        if let Ok(n) = spec.parse::<u32>() {
            policy.max_attempts = n.max(1);
            return policy;
        }
        for part in spec.split(',') {
            let Some((key, value)) = part.split_once('=') else { continue };
            match (key.trim(), value.trim().parse::<u64>()) {
                ("attempts", Ok(n)) => policy.max_attempts = (n as u32).max(1),
                ("base_ms", Ok(ms)) => policy.base_backoff = Duration::from_millis(ms),
                ("max_ms", Ok(ms)) => policy.max_backoff = Duration::from_millis(ms),
                ("seed", Ok(s)) => policy.seed = s,
                _ => {}
            }
        }
        policy
    }

    /// The backoff delay before retry number `attempt` (0-based: the
    /// delay slept after the first failure is `backoff(0)`). Pure
    /// function of the policy — same policy, same schedule.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_backoff.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.max_backoff);
        // Deterministic jitter in [0.5, 1.0] of the capped delay.
        let draw = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37)) >> 11;
        let unit = draw as f64 / (1u64 << 53) as f64;
        capped.mul_f64(0.5 + unit / 2.0)
    }

    /// Runs `op` under this policy: retries while the error
    /// [`RemotingError::is_retryable`] and attempts remain, sleeping the
    /// backoff between tries and counting each retry in
    /// `parc-obs` (`call.retried`).
    ///
    /// # Errors
    ///
    /// The last error when every attempt fails, or the first
    /// non-retryable error immediately.
    pub fn run<T>(
        &self,
        mut op: impl FnMut() -> Result<T, RemotingError>,
    ) -> Result<T, RemotingError> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(e) if e.is_retryable() && attempt + 1 < self.max_attempts => {
                    parc_obs::counter(parc_obs::kinds::CALL_RETRIED).incr();
                    parc_obs::event(parc_obs::kinds::CALL_RETRIED, || {
                        format!("attempt={} error={e}", attempt + 1)
                    });
                    let delay = self.backoff(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn parse_bare_count() {
        let p = RetryPolicy::parse("5");
        assert_eq!(p.max_attempts, 5);
        assert_eq!(p.base_backoff, RetryPolicy::default().base_backoff);
    }

    #[test]
    fn parse_key_value_spec() {
        let p = RetryPolicy::parse("attempts=4,base_ms=2,max_ms=40,seed=9");
        assert_eq!(p.max_attempts, 4);
        assert_eq!(p.base_backoff, Duration::from_millis(2));
        assert_eq!(p.max_backoff, Duration::from_millis(40));
        assert_eq!(p.seed, 9);
    }

    #[test]
    fn parse_garbage_falls_back_to_default() {
        assert_eq!(RetryPolicy::parse("nonsense"), RetryPolicy::default());
        assert_eq!(RetryPolicy::parse("attempts=no"), RetryPolicy::default());
    }

    #[test]
    fn zero_attempts_clamps_to_one() {
        assert_eq!(RetryPolicy::parse("0").max_attempts, 1);
        assert_eq!(RetryPolicy::new(0, Duration::ZERO, Duration::ZERO).max_attempts, 1);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::new(8, Duration::from_millis(10), Duration::from_millis(100));
        // Jitter keeps every delay within [0.5, 1.0] of the nominal value.
        assert!(p.backoff(0) <= Duration::from_millis(10));
        assert!(p.backoff(0) >= Duration::from_millis(5));
        assert!(p.backoff(6) <= Duration::from_millis(100));
        assert!(p.backoff(6) >= Duration::from_millis(50));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let a = RetryPolicy::default().with_seed(42);
        let b = RetryPolicy::default().with_seed(42);
        let c = RetryPolicy::default().with_seed(43);
        assert_eq!(a.backoff(1), b.backoff(1));
        assert_ne!(a.backoff(1), c.backoff(1), "different seeds should jitter differently");
    }

    #[test]
    fn run_retries_retryable_until_success() {
        let p = RetryPolicy::new(4, Duration::ZERO, Duration::ZERO);
        let tries = AtomicU32::new(0);
        let out = p.run(|| {
            if tries.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(RemotingError::Transport { detail: "flaky".into() })
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_gives_up_after_max_attempts() {
        let p = RetryPolicy::new(3, Duration::ZERO, Duration::ZERO);
        let tries = AtomicU32::new(0);
        let out: Result<(), _> = p.run(|| {
            tries.fetch_add(1, Ordering::Relaxed);
            Err(RemotingError::Transport { detail: "dead".into() })
        });
        assert!(out.is_err());
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_never_retries_non_retryable() {
        let p = RetryPolicy::new(5, Duration::ZERO, Duration::ZERO);
        let tries = AtomicU32::new(0);
        let out: Result<(), _> = p.run(|| {
            tries.fetch_add(1, Ordering::Relaxed);
            Err(RemotingError::ServerFault { detail: "logic bug".into() })
        });
        assert!(matches!(out, Err(RemotingError::ServerFault { .. })));
        assert_eq!(tries.load(Ordering::Relaxed), 1, "server faults are deterministic");
    }

    #[test]
    fn splitmix_stream_matches_testkit_constants() {
        // First draw from seed 0 of the canonical SplitMix64.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        let f = rng.next_f64();
        assert!((0.0..1.0).contains(&f));
    }
}
