//! Deterministic fault injection for the channel layer.
//!
//! A [`FaultPlan`] is a seeded schedule of channel-level faults: every
//! call or post that flows through a [`ChaosChannel`] consumes one slot
//! in the plan, and the plan's SplitMix64 stream decides whether that
//! slot drops, delays, duplicates, truncates or corrupts the frame — or
//! kills the connection outright at a chosen call index. Same seed, same
//! spec, same call sequence → byte-identical injection trace, which is
//! what makes chaos tests replayable and lets `scripts/verify.sh` assert
//! trace equality across runs.
//!
//! The plan is reusable from three places:
//!
//! * tests construct one directly ([`FaultPlan::new`]) and wrap any
//!   channel in a [`ChaosChannel`];
//! * benches do the same to measure recovery throughput;
//! * `PARC_CHAOS=<seed>:<spec>` arms a process-global plan that the
//!   inproc and TCP channel providers consult when opening channels
//!   ([`FaultPlan::from_env`] / [`wrap_if_chaotic`]).
//!
//! The spec grammar is a comma-separated list of clauses:
//!
//! ```text
//! drop=0.1,delay=0.2:5,dup=0.05,truncate=0.01,corrupt=0.01,kill@25
//! ```
//!
//! where probabilities are per-message, `delay=<p>:<ms>` sleeps `ms`
//! milliseconds, and `kill@<n>` kills the connection at message index
//! `n` (0-based). Unknown clauses are ignored.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use parc_sync::Mutex;

use crate::channel::ClientChannel;
use crate::error::RemotingError;
use crate::message::{CallMessage, ReturnMessage};
use crate::retry::SplitMix64;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The frame is silently discarded (a call sees a transport error, a
    /// post is lost).
    Drop,
    /// The frame is delivered after the given delay in milliseconds.
    Delay(u64),
    /// The frame is delivered twice.
    Duplicate,
    /// The frame arrives cut short; it cannot decode.
    Truncate,
    /// The frame arrives with flipped bytes; it cannot decode.
    Corrupt,
    /// The connection dies; this and every later frame on it fails.
    Kill,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Drop => write!(f, "drop"),
            FaultKind::Delay(ms) => write!(f, "delay:{ms}"),
            FaultKind::Duplicate => write!(f, "dup"),
            FaultKind::Truncate => write!(f, "truncate"),
            FaultKind::Corrupt => write!(f, "corrupt"),
            FaultKind::Kill => write!(f, "kill"),
        }
    }
}

/// Per-message fault probabilities plus the optional kill index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability a message is dropped.
    pub drop: f64,
    /// Probability a message is delayed.
    pub delay: f64,
    /// How long a delayed message sleeps, in milliseconds.
    pub delay_ms: u64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is truncated.
    pub truncate: f64,
    /// Probability a message is corrupted.
    pub corrupt: f64,
    /// Message index (0-based) at which the connection is killed.
    pub kill_at: Option<u64>,
}

impl FaultSpec {
    /// Parses the spec grammar described in the module docs. Unknown
    /// clauses and malformed values are ignored rather than fatal, so a
    /// typo in `PARC_CHAOS` degrades to "fewer faults", never a panic.
    pub fn parse(spec: &str) -> FaultSpec {
        let mut out = FaultSpec::default();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if let Some(idx) = clause.strip_prefix("kill@") {
                if let Ok(n) = idx.parse::<u64>() {
                    out.kill_at = Some(n);
                }
                continue;
            }
            let Some((key, value)) = clause.split_once('=') else { continue };
            match key.trim() {
                "drop" => {
                    if let Ok(p) = value.parse::<f64>() {
                        out.drop = p.clamp(0.0, 1.0);
                    }
                }
                "delay" => {
                    let (p, ms) = match value.split_once(':') {
                        Some((p, ms)) => (p, ms.parse::<u64>().unwrap_or(1)),
                        None => (value, 1),
                    };
                    if let Ok(p) = p.parse::<f64>() {
                        out.delay = p.clamp(0.0, 1.0);
                        out.delay_ms = ms;
                    }
                }
                "dup" => {
                    if let Ok(p) = value.parse::<f64>() {
                        out.duplicate = p.clamp(0.0, 1.0);
                    }
                }
                "truncate" => {
                    if let Ok(p) = value.parse::<f64>() {
                        out.truncate = p.clamp(0.0, 1.0);
                    }
                }
                "corrupt" => {
                    if let Ok(p) = value.parse::<f64>() {
                        out.corrupt = p.clamp(0.0, 1.0);
                    }
                }
                _ => {}
            }
        }
        out
    }
}

struct PlanState {
    rng: SplitMix64,
    index: u64,
    trace: Vec<(u64, FaultKind)>,
}

/// A seeded, replayable schedule of faults. Thread-safe; every message
/// that consults the plan advances one global message index.
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// Builds a plan from a seed and spec.
    pub fn new(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan {
            seed,
            spec,
            state: Mutex::new(PlanState {
                rng: SplitMix64::new(seed),
                index: 0,
                trace: Vec::new(),
            }),
        }
    }

    /// Parses a `PARC_CHAOS`-style `<seed>:<spec>` string; a bare number
    /// is a seed with no probabilistic faults (useful with `kill@`-only
    /// specs the other way round: `0:kill@10`).
    pub fn parse(text: &str) -> Option<FaultPlan> {
        let text = text.trim();
        if text.is_empty() {
            return None;
        }
        let (seed_text, spec_text) = match text.split_once(':') {
            Some((s, rest)) => (s, rest),
            None => (text, ""),
        };
        let seed = seed_text.trim().parse::<u64>().ok()?;
        Some(FaultPlan::new(seed, FaultSpec::parse(spec_text)))
    }

    /// The process-global plan armed by `PARC_CHAOS`, if any. Parsed
    /// once; every channel the providers open shares it (and therefore
    /// one global message index).
    pub fn from_env() -> Option<&'static Arc<FaultPlan>> {
        static PLAN: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();
        PLAN.get_or_init(|| {
            std::env::var("PARC_CHAOS").ok().and_then(|v| FaultPlan::parse(&v)).map(Arc::new)
        })
        .as_ref()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the fault (if any) for the next message. Advances the
    /// message index, records injections in the trace, and counts them
    /// in parc-obs.
    pub fn next_fault(&self) -> Option<FaultKind> {
        let mut state = self.state.lock();
        let index = state.index;
        state.index += 1;
        let fault = if self.spec.kill_at == Some(index) {
            Some(FaultKind::Kill)
        } else {
            let draw = state.rng.next_f64();
            let s = &self.spec;
            let mut floor = 0.0;
            let mut pick = None;
            for (p, kind) in [
                (s.drop, FaultKind::Drop),
                (s.delay, FaultKind::Delay(s.delay_ms)),
                (s.duplicate, FaultKind::Duplicate),
                (s.truncate, FaultKind::Truncate),
                (s.corrupt, FaultKind::Corrupt),
            ] {
                if draw < floor + p {
                    pick = Some(kind);
                    break;
                }
                floor += p;
            }
            pick
        };
        if let Some(kind) = fault {
            state.trace.push((index, kind));
            drop(state);
            parc_obs::counter(parc_obs::kinds::FAULT_INJECTED).incr();
            parc_obs::event(parc_obs::kinds::FAULT_INJECTED, || {
                format!("kind={kind} index={index}")
            });
        }
        fault
    }

    /// Messages the plan has seen so far.
    pub fn messages_seen(&self) -> u64 {
        self.state.lock().index
    }

    /// The injection trace so far: `(message index, fault)` pairs in
    /// injection order.
    pub fn trace(&self) -> Vec<(u64, FaultKind)> {
        self.state.lock().trace.clone()
    }

    /// The trace as a canonical string (`"3:drop 10:kill"`) — handy for
    /// same-seed equality assertions in tests and CI.
    pub fn trace_string(&self) -> String {
        let state = self.state.lock();
        let mut out = String::new();
        for (i, (index, kind)) in state.trace.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{index}:{kind}"));
        }
        out
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("spec", &self.spec)
            .field("messages_seen", &self.messages_seen())
            .finish()
    }
}

/// A [`ClientChannel`] decorator that injects the plan's faults into
/// every call and post.
///
/// Fault semantics mirror what a real lossy transport would produce:
/// a dropped or mangled *call* surfaces as a retryable
/// [`RemotingError::Transport`] (the reply never arrives; the mux would
/// fail the slot); a dropped or mangled *post* is silently lost (fire
/// and forget has no failure path); `Kill` poisons this channel wrapper
/// permanently, the way a dead TCP connection poisons its mux.
pub struct ChaosChannel {
    inner: Arc<dyn ClientChannel>,
    plan: Arc<FaultPlan>,
    killed: AtomicBool,
}

impl ChaosChannel {
    /// Wraps `inner` with faults drawn from `plan`.
    pub fn new(inner: Arc<dyn ClientChannel>, plan: Arc<FaultPlan>) -> ChaosChannel {
        ChaosChannel { inner, plan, killed: AtomicBool::new(false) }
    }

    /// The plan this channel draws from.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    fn check_killed(&self) -> Result<(), RemotingError> {
        if self.killed.load(Ordering::Acquire) {
            Err(RemotingError::Transport { detail: "chaos: connection killed".into() })
        } else {
            Ok(())
        }
    }

    fn kill(&self) -> RemotingError {
        self.killed.store(true, Ordering::Release);
        RemotingError::Transport { detail: "chaos: connection killed".into() }
    }
}

impl ClientChannel for ChaosChannel {
    fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
        self.check_killed()?;
        match self.plan.next_fault() {
            None => self.inner.call(msg),
            Some(FaultKind::Drop) => {
                Err(RemotingError::Transport { detail: "chaos: dropped frame".into() })
            }
            Some(FaultKind::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.call(msg)
            }
            Some(FaultKind::Duplicate) => {
                // Deliver twice; the caller sees the first reply, the
                // duplicate's effects land server-side regardless.
                let first = self.inner.call(msg);
                let _ = self.inner.call(msg);
                first
            }
            Some(FaultKind::Truncate) => {
                Err(RemotingError::Transport { detail: "chaos: truncated frame".into() })
            }
            Some(FaultKind::Corrupt) => {
                Err(RemotingError::Transport { detail: "chaos: corrupted frame".into() })
            }
            Some(FaultKind::Kill) => Err(self.kill()),
        }
    }

    fn post(&self, msg: &CallMessage) -> Result<usize, RemotingError> {
        self.check_killed()?;
        match self.plan.next_fault() {
            None => self.inner.post(msg),
            // Lost or undecodable one-way frames vanish without a trace —
            // exactly the fire-and-forget contract.
            Some(FaultKind::Drop | FaultKind::Truncate | FaultKind::Corrupt) => Ok(0),
            Some(FaultKind::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                self.inner.post(msg)
            }
            Some(FaultKind::Duplicate) => {
                let n = self.inner.post(msg)?;
                let _ = self.inner.post(msg);
                Ok(n)
            }
            Some(FaultKind::Kill) => Err(self.kill()),
        }
    }

    fn scheme(&self) -> &'static str {
        self.inner.scheme()
    }

    fn feedback(&self) -> Option<Arc<crate::channel::LinkFeedback>> {
        // Feedback is an observation plane, not a delivery path: chaos
        // perturbs calls, the inner channel still reports what it saw.
        self.inner.feedback()
    }
}

/// Wraps `channel` in a [`ChaosChannel`] when `PARC_CHAOS` armed a
/// process-global plan; otherwise returns it untouched. The channel
/// providers call this on every open.
pub fn wrap_if_chaotic(channel: Arc<dyn ClientChannel>) -> Arc<dyn ClientChannel> {
    match FaultPlan::from_env() {
        Some(plan) => Arc::new(ChaosChannel::new(channel, Arc::clone(plan))),
        None => channel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_serial::Value;

    struct CountingChannel {
        calls: std::sync::atomic::AtomicU64,
        posts: std::sync::atomic::AtomicU64,
    }

    impl CountingChannel {
        fn new() -> Arc<CountingChannel> {
            Arc::new(CountingChannel {
                calls: std::sync::atomic::AtomicU64::new(0),
                posts: std::sync::atomic::AtomicU64::new(0),
            })
        }
    }

    impl ClientChannel for CountingChannel {
        fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(ReturnMessage::ok(msg.call_id, Value::Null))
        }

        fn post(&self, _msg: &CallMessage) -> Result<usize, RemotingError> {
            self.posts.fetch_add(1, Ordering::Relaxed);
            Ok(1)
        }

        fn scheme(&self) -> &'static str {
            "fake"
        }
    }

    #[test]
    fn spec_parses_full_grammar() {
        let s = FaultSpec::parse("drop=0.1,delay=0.2:5,dup=0.05,truncate=0.01,corrupt=0.02,kill@25");
        assert_eq!(s.drop, 0.1);
        assert_eq!(s.delay, 0.2);
        assert_eq!(s.delay_ms, 5);
        assert_eq!(s.duplicate, 0.05);
        assert_eq!(s.truncate, 0.01);
        assert_eq!(s.corrupt, 0.02);
        assert_eq!(s.kill_at, Some(25));
    }

    #[test]
    fn spec_ignores_garbage() {
        let s = FaultSpec::parse("bogus,drop=no,=,kill@x,delay=0.5");
        assert_eq!(s.drop, 0.0);
        assert_eq!(s.delay, 0.5);
        assert_eq!(s.delay_ms, 1, "delay without :ms defaults to 1ms");
        assert_eq!(s.kill_at, None);
    }

    #[test]
    fn plan_parse_seed_and_spec() {
        let p = FaultPlan::parse("42:drop=1.0").unwrap();
        assert_eq!(p.seed(), 42);
        assert_eq!(p.next_fault(), Some(FaultKind::Drop));
        assert!(FaultPlan::parse("").is_none());
        assert!(FaultPlan::parse("notanumber:drop=1").is_none());
        assert_eq!(FaultPlan::parse("7").unwrap().next_fault(), None);
    }

    #[test]
    fn same_seed_same_trace() {
        let spec = "drop=0.2,dup=0.1,corrupt=0.1";
        let a = FaultPlan::new(99, FaultSpec::parse(spec));
        let b = FaultPlan::new(99, FaultSpec::parse(spec));
        for _ in 0..200 {
            a.next_fault();
            b.next_fault();
        }
        assert!(!a.trace().is_empty(), "20% drop over 200 draws must fire");
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.trace_string(), b.trace_string());
    }

    #[test]
    fn different_seed_different_trace() {
        let spec = FaultSpec::parse("drop=0.3");
        let a = FaultPlan::new(1, spec.clone());
        let b = FaultPlan::new(2, spec);
        for _ in 0..200 {
            a.next_fault();
            b.next_fault();
        }
        assert_ne!(a.trace(), b.trace());
    }

    #[test]
    fn kill_at_fires_exactly_once_at_index() {
        let plan = FaultPlan::new(0, FaultSpec::parse("kill@2"));
        assert_eq!(plan.next_fault(), None);
        assert_eq!(plan.next_fault(), None);
        assert_eq!(plan.next_fault(), Some(FaultKind::Kill));
        assert_eq!(plan.next_fault(), None, "kill is a point event in the plan");
        assert_eq!(plan.trace(), vec![(2, FaultKind::Kill)]);
    }

    #[test]
    fn chaos_channel_drops_calls_as_transport_errors() {
        let inner = CountingChannel::new();
        let chan = ChaosChannel::new(
            Arc::clone(&inner) as Arc<dyn ClientChannel>,
            Arc::new(FaultPlan::new(0, FaultSpec::parse("drop=1.0"))),
        );
        let err = chan.call(&CallMessage::new("O", "m", vec![])).unwrap_err();
        assert!(err.is_retryable(), "{err}");
        assert_eq!(inner.calls.load(Ordering::Relaxed), 0, "dropped call never reached inner");
    }

    #[test]
    fn chaos_channel_loses_posts_silently() {
        let inner = CountingChannel::new();
        let chan = ChaosChannel::new(
            Arc::clone(&inner) as Arc<dyn ClientChannel>,
            Arc::new(FaultPlan::new(0, FaultSpec::parse("drop=1.0"))),
        );
        assert_eq!(chan.post(&CallMessage::one_way("O", "m", vec![])).unwrap(), 0);
        assert_eq!(inner.posts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn chaos_channel_duplicates_deliver_twice() {
        let inner = CountingChannel::new();
        let chan = ChaosChannel::new(
            Arc::clone(&inner) as Arc<dyn ClientChannel>,
            Arc::new(FaultPlan::new(0, FaultSpec::parse("dup=1.0"))),
        );
        chan.call(&CallMessage::new("O", "m", vec![])).unwrap();
        assert_eq!(inner.calls.load(Ordering::Relaxed), 2);
        chan.post(&CallMessage::one_way("O", "m", vec![])).unwrap();
        assert_eq!(inner.posts.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn kill_poisons_the_wrapper_permanently() {
        let inner = CountingChannel::new();
        let chan = ChaosChannel::new(
            Arc::clone(&inner) as Arc<dyn ClientChannel>,
            Arc::new(FaultPlan::new(0, FaultSpec::parse("kill@0"))),
        );
        assert!(chan.call(&CallMessage::new("O", "m", vec![])).is_err());
        assert!(chan.post(&CallMessage::one_way("O", "m", vec![])).is_err());
        assert!(chan.call(&CallMessage::new("O", "m", vec![])).is_err());
        assert_eq!(inner.calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn clean_plan_passes_everything_through() {
        let inner = CountingChannel::new();
        let chan = ChaosChannel::new(
            Arc::clone(&inner) as Arc<dyn ClientChannel>,
            Arc::new(FaultPlan::new(0, FaultSpec::default())),
        );
        for _ in 0..10 {
            chan.call(&CallMessage::new("O", "m", vec![])).unwrap();
        }
        assert_eq!(inner.calls.load(Ordering::Relaxed), 10);
        assert!(chan.plan().trace().is_empty());
        assert_eq!(chan.plan().messages_seen(), 10);
    }
}
