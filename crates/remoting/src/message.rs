//! The remoting wire protocol: call and return messages.
//!
//! Messages are represented as [`Value`] structs and pushed through a
//! [`Formatter`], so the bytes each channel puts on the wire are real —
//! the benchmark harness measures them directly.

use parc_serial::{Formatter, SerialError, StructValue, Value};

use crate::error::RemotingError;

/// A method invocation travelling to a server object.
#[derive(Debug, Clone, PartialEq)]
pub struct CallMessage {
    /// Published name of the target object.
    pub object: String,
    /// Method to invoke.
    pub method: String,
    /// Correlation id (echoed in the reply).
    pub call_id: u64,
    /// One-way flag: `true` means no reply is produced — the transport of
    /// the paper's asynchronous method invocations.
    pub oneway: bool,
    /// Marshalled arguments.
    pub args: Vec<Value>,
}

impl CallMessage {
    /// Creates a two-way (synchronous) call.
    pub fn new(object: impl Into<String>, method: impl Into<String>, args: Vec<Value>) -> Self {
        CallMessage {
            object: object.into(),
            method: method.into(),
            call_id: 0,
            oneway: false,
            args,
        }
    }

    /// Creates a one-way (asynchronous, no-reply) call.
    pub fn one_way(object: impl Into<String>, method: impl Into<String>, args: Vec<Value>) -> Self {
        CallMessage { oneway: true, ..CallMessage::new(object, method, args) }
    }

    /// Encodes into a wire [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Struct(
            StructValue::new("Call")
                .with_field("obj", Value::Str(self.object.clone()))
                .with_field("method", Value::Str(self.method.clone()))
                .with_field("id", Value::I64(self.call_id as i64))
                .with_field("oneway", Value::Bool(self.oneway))
                .with_field("args", Value::List(self.args.clone())),
        )
    }

    /// Decodes from a wire [`Value`].
    ///
    /// # Errors
    ///
    /// [`SerialError::Parse`] when the value is not a well-formed call.
    pub fn from_value(value: &Value) -> Result<CallMessage, SerialError> {
        let s = expect_struct(value, "Call")?;
        Ok(CallMessage {
            object: expect_str(s, "obj")?,
            method: expect_str(s, "method")?,
            call_id: expect_i64(s, "id")? as u64,
            oneway: expect_bool(s, "oneway")?,
            args: match s.field("args") {
                Some(Value::List(items)) => items.clone(),
                _ => return Err(shape_err("args list")),
            },
        })
    }

    /// Serializes through a formatter.
    ///
    /// # Errors
    ///
    /// Propagates formatter failures.
    pub fn encode(&self, f: &dyn Formatter) -> Result<Vec<u8>, SerialError> {
        f.serialize(&self.to_value())
    }

    /// Serializes through a formatter into a reused buffer (appends).
    ///
    /// # Errors
    ///
    /// Propagates formatter failures.
    pub fn encode_into(&self, f: &dyn Formatter, out: &mut Vec<u8>) -> Result<(), SerialError> {
        f.serialize_into(&self.to_value(), out)
    }

    /// Deserializes through a formatter.
    ///
    /// # Errors
    ///
    /// Propagates formatter failures and shape errors.
    pub fn decode(f: &dyn Formatter, bytes: &[u8]) -> Result<CallMessage, SerialError> {
        CallMessage::from_value(&f.deserialize(bytes)?)
    }
}

/// A reply travelling back to the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct ReturnMessage {
    /// Correlation id copied from the call.
    pub call_id: u64,
    /// The outcome: a marshalled return value, or a fault description.
    pub result: Result<Value, String>,
    /// `Moved` variant: when set, the object that served this call now
    /// lives at the given URI (it was migrated and the reply travelled
    /// through a forwarding entry). Clients repoint their channel at the
    /// new home; the value itself is still authoritative. Encoded as an
    /// optional wire field so every formatter stays backward compatible.
    pub moved_to: Option<String>,
}

impl ReturnMessage {
    /// Creates a success reply.
    pub fn ok(call_id: u64, value: Value) -> Self {
        ReturnMessage { call_id, result: Ok(value), moved_to: None }
    }

    /// Creates a fault reply.
    pub fn fault(call_id: u64, detail: impl Into<String>) -> Self {
        ReturnMessage { call_id, result: Err(detail.into()), moved_to: None }
    }

    /// Tags the reply with the object's new home (the `Moved` variant).
    pub fn with_moved_to(mut self, uri: impl Into<String>) -> Self {
        self.moved_to = Some(uri.into());
        self
    }

    /// Encodes into a wire [`Value`].
    pub fn to_value(&self) -> Value {
        let mut s = StructValue::new("Return")
            .with_field("id", Value::I64(self.call_id as i64))
            .with_field("ok", Value::Bool(self.result.is_ok()));
        match &self.result {
            Ok(v) => s.push_field("value", v.clone()),
            Err(e) => s.push_field("error", Value::Str(e.clone())),
        }
        if let Some(uri) = &self.moved_to {
            s.push_field("moved", Value::Str(uri.clone()));
        }
        Value::Struct(s)
    }

    /// Decodes from a wire [`Value`].
    ///
    /// # Errors
    ///
    /// [`SerialError::Parse`] when the value is not a well-formed reply.
    pub fn from_value(value: &Value) -> Result<ReturnMessage, SerialError> {
        let s = expect_struct(value, "Return")?;
        let call_id = expect_i64(s, "id")? as u64;
        let ok = expect_bool(s, "ok")?;
        let result = if ok {
            Ok(s.field("value").cloned().ok_or_else(|| shape_err("value field"))?)
        } else {
            Err(expect_str(s, "error")?)
        };
        let moved_to = s.field("moved").and_then(Value::as_str).map(str::to_string);
        Ok(ReturnMessage { call_id, result, moved_to })
    }

    /// Serializes through a formatter.
    ///
    /// # Errors
    ///
    /// Propagates formatter failures.
    pub fn encode(&self, f: &dyn Formatter) -> Result<Vec<u8>, SerialError> {
        f.serialize(&self.to_value())
    }

    /// Serializes through a formatter into a reused buffer (appends).
    ///
    /// # Errors
    ///
    /// Propagates formatter failures.
    pub fn encode_into(&self, f: &dyn Formatter, out: &mut Vec<u8>) -> Result<(), SerialError> {
        f.serialize_into(&self.to_value(), out)
    }

    /// Deserializes through a formatter.
    ///
    /// # Errors
    ///
    /// Propagates formatter failures and shape errors.
    pub fn decode(f: &dyn Formatter, bytes: &[u8]) -> Result<ReturnMessage, SerialError> {
        ReturnMessage::from_value(&f.deserialize(bytes)?)
    }

    /// Converts the reply into the caller-facing result.
    ///
    /// # Errors
    ///
    /// [`RemotingError::ServerFault`] when the server reported a fault.
    pub fn into_result(self) -> Result<Value, RemotingError> {
        self.result.map_err(|detail| RemotingError::ServerFault { detail })
    }

    /// Converts the reply into the caller-facing result, preserving the
    /// `Moved` location when present.
    ///
    /// # Errors
    ///
    /// [`RemotingError::ServerFault`] when the server reported a fault.
    pub fn into_located(self) -> Result<(Value, Option<String>), RemotingError> {
        let moved_to = self.moved_to;
        self.result
            .map(|v| (v, moved_to))
            .map_err(|detail| RemotingError::ServerFault { detail })
    }
}

fn shape_err(what: &str) -> SerialError {
    SerialError::Parse { detail: format!("malformed message: missing {what}") }
}

fn expect_struct<'v>(value: &'v Value, name: &str) -> Result<&'v StructValue, SerialError> {
    match value.as_struct() {
        Some(s) if s.name() == name => Ok(s),
        _ => Err(SerialError::Parse { detail: format!("expected {name} message") }),
    }
}

fn expect_str(s: &StructValue, field: &str) -> Result<String, SerialError> {
    s.field(field).and_then(Value::as_str).map(str::to_string).ok_or_else(|| shape_err(field))
}

fn expect_i64(s: &StructValue, field: &str) -> Result<i64, SerialError> {
    s.field(field).and_then(Value::as_i64).ok_or_else(|| shape_err(field))
}

fn expect_bool(s: &StructValue, field: &str) -> Result<bool, SerialError> {
    s.field(field).and_then(Value::as_bool).ok_or_else(|| shape_err(field))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_serial::{BinaryFormatter, JavaFormatter, SoapFormatter};

    fn sample_call() -> CallMessage {
        let mut c = CallMessage::new("PrimeServer", "process", vec![Value::I32Array(vec![1, 2, 3])]);
        c.call_id = 42;
        c
    }

    #[test]
    fn call_roundtrips_through_all_formats() {
        let call = sample_call();
        let formats: [&dyn Formatter; 3] =
            [&BinaryFormatter::new(), &SoapFormatter::new(), &JavaFormatter::new()];
        for f in formats {
            let bytes = call.encode(f).unwrap();
            assert_eq!(CallMessage::decode(f, &bytes).unwrap(), call, "format {}", f.name());
        }
    }

    #[test]
    fn oneway_flag_survives() {
        let call = CallMessage::one_way("O", "m", vec![]);
        assert!(call.oneway);
        let f = BinaryFormatter::new();
        assert!(CallMessage::decode(&f, &call.encode(&f).unwrap()).unwrap().oneway);
    }

    #[test]
    fn return_ok_roundtrips() {
        let ret = ReturnMessage::ok(7, Value::F64(2.5));
        let f = BinaryFormatter::new();
        let back = ReturnMessage::decode(&f, &ret.encode(&f).unwrap()).unwrap();
        assert_eq!(back, ret);
        assert_eq!(back.into_result().unwrap(), Value::F64(2.5));
    }

    #[test]
    fn return_fault_roundtrips_and_surfaces_as_server_fault() {
        let ret = ReturnMessage::fault(9, "divide by zero");
        let f = BinaryFormatter::new();
        let back = ReturnMessage::decode(&f, &ret.encode(&f).unwrap()).unwrap();
        assert_eq!(back.call_id, 9);
        match back.into_result() {
            Err(RemotingError::ServerFault { detail }) => assert_eq!(detail, "divide by zero"),
            other => panic!("expected server fault, got {other:?}"),
        }
    }

    #[test]
    fn moved_reply_roundtrips_through_all_formats() {
        let ret = ReturnMessage::ok(3, Value::I64(8)).with_moved_to("inproc://node2/io-2-5");
        let formats: [&dyn Formatter; 3] =
            [&BinaryFormatter::new(), &SoapFormatter::new(), &JavaFormatter::new()];
        for f in formats {
            let back = ReturnMessage::decode(f, &ret.encode(f).unwrap()).unwrap();
            assert_eq!(back, ret, "format {}", f.name());
            let (value, moved) = back.into_located().unwrap();
            assert_eq!(value, Value::I64(8));
            assert_eq!(moved.as_deref(), Some("inproc://node2/io-2-5"));
        }
    }

    #[test]
    fn reply_without_moved_field_decodes_as_not_moved() {
        // Wire compatibility: replies encoded before the Moved variant
        // existed carry no "moved" field and must decode to None.
        let v = Value::Struct(
            StructValue::new("Return")
                .with_field("id", Value::I64(1))
                .with_field("ok", Value::Bool(true))
                .with_field("value", Value::Null),
        );
        assert_eq!(ReturnMessage::from_value(&v).unwrap().moved_to, None);
    }

    #[test]
    fn call_rejects_return_shape_and_vice_versa() {
        let f = BinaryFormatter::new();
        let call_bytes = sample_call().encode(&f).unwrap();
        assert!(ReturnMessage::decode(&f, &call_bytes).is_err());
        let ret_bytes = ReturnMessage::ok(1, Value::Null).encode(&f).unwrap();
        assert!(CallMessage::decode(&f, &ret_bytes).is_err());
    }

    #[test]
    fn missing_fields_are_parse_errors() {
        let v = Value::Struct(StructValue::new("Call").with_field("obj", Value::Str("x".into())));
        assert!(CallMessage::from_value(&v).is_err());
    }

    #[test]
    fn soap_call_is_much_bigger_than_binary_call() {
        let call = sample_call();
        let b = call.encode(&BinaryFormatter::new()).unwrap().len();
        let s = call.encode(&SoapFormatter::new()).unwrap().len();
        assert!(s > 2 * b, "soap {s} vs binary {b}");
    }
}
