//! A real bounded thread pool — the execution engine behind delegates and
//! server-side dispatch.
//!
//! Mono's runtime serves both remoting dispatch and `BeginInvoke` delegates
//! from a bounded managed pool; the paper blames exactly that bound for the
//! Fig. 9 starvation. This is the *real* (wall-clock) counterpart of
//! the `ThreadPoolModel` in `parc-sim`: a fixed set of worker threads
//! draining a shared queue, with graceful shutdown on drop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parc_sync::channel::{unbounded, Receiver, Sender};

type Task = Box<dyn FnOnce() + Send>;

/// Monitoring counters. These are statistics, not synchronization: no
/// other memory access is ordered by them, so every operation is
/// `Relaxed` — SeqCst here bought nothing but fence traffic on the
/// submit/execute hot path. Each counter is still individually coherent
/// (`fetch_add`/`fetch_sub` are atomic RMWs), so totals are exact; only
/// cross-counter snapshots are approximate, which `queued()` already
/// documents.
#[derive(Default)]
struct Counters {
    queued: AtomicUsize,
    executed: AtomicUsize,
}

/// Fixed-size worker pool.
pub struct ThreadPool {
    // `None` only during shutdown; dropping the sole sender disconnects the
    // queue and lets the workers exit.
    tx: Option<Sender<Task>>,
    counters: Arc<Counters>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> ThreadPool {
        assert!(threads > 0, "thread pool needs at least one worker");
        let (tx, rx) = unbounded::<Task>();
        let counters = Arc::new(Counters::default());
        let workers = (0..threads)
            .map(|i| {
                let rx: Receiver<Task> = rx.clone();
                let counters = Arc::clone(&counters);
                std::thread::Builder::new()
                    .name(format!("parc-pool-{i}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            counters.queued.fetch_sub(1, Ordering::Relaxed);
                            task();
                            counters.executed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .expect("spawning pool worker")
            })
            .collect();
        ThreadPool { tx: Some(tx), counters, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Tasks accepted but not yet started (a monitoring snapshot — may
    /// lag the queue by a task while a worker is between dequeue and
    /// decrement).
    pub fn queued(&self) -> usize {
        self.counters.queued.load(Ordering::Relaxed)
    }

    /// Tasks fully executed.
    pub fn executed(&self) -> usize {
        self.counters.executed.load(Ordering::Relaxed)
    }

    /// Submits a task for execution.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        self.counters.queued.fetch_add(1, Ordering::Relaxed);
        let submitted_ns = parc_obs::timestamp_if_enabled();
        self.tx
            .as_ref()
            .expect("pool alive")
            .send(Box::new(move || {
                parc_obs::record_wait(parc_obs::kinds::POOL_WAIT, submitted_ns);
                task();
            }))
            .expect("workers alive");
    }

    /// Waits for all queued tasks to finish and joins the workers.
    pub fn shutdown(mut self) {
        self.join_workers();
    }

    fn join_workers(&mut self) {
        // Dropping the only sender closes the queue once drained.
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.join_workers();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .field("queued", &self.queued())
            .field("executed", &self.executed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn tasks_all_execute() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU32::new(0));
        for i in 0..100 {
            let c = Arc::clone(&counter);
            pool.submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
            // Queue-depth sanity: never more than the tasks submitted so
            // far, regardless of how far the workers have drained.
            assert!(pool.queued() <= i + 1, "queued {} > submitted {}", pool.queued(), i + 1);
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_waits_for_queued_tasks() {
        let counter = Arc::new(AtomicU32::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..20 {
                let c = Arc::clone(&counter);
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn tasks_run_concurrently() {
        let pool = ThreadPool::new(4);
        let gate = Arc::new(std::sync::Barrier::new(4));
        let hit = Arc::new(AtomicU32::new(0));
        for _ in 0..4 {
            let gate = Arc::clone(&gate);
            let hit = Arc::clone(&hit);
            pool.submit(move || {
                // Deadlocks unless all four tasks run in parallel.
                gate.wait();
                hit.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(hit.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn executed_counter_tracks() {
        let pool = ThreadPool::new(1);
        for _ in 0..5 {
            pool.submit(|| {});
        }
        // Wait for the queue to drain, then check the counter.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.executed() < 5 {
            // Queue-depth sanity while draining: bounded by what was
            // submitted and never negative (usize underflow would show up
            // as a huge value here).
            assert!(pool.queued() <= 5, "queued {} out of range", pool.queued());
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        // Relaxed counters give no cross-variable ordering, so the queued
        // decrements may trail the executed increments briefly.
        while pool.queued() > 0 {
            assert!(std::time::Instant::now() < deadline, "queue never drained");
            std::thread::yield_now();
        }
        assert_eq!(pool.executed(), 5);
        pool.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = ThreadPool::new(0);
    }
}
