//! The TCP channel: binary formatter over framed sockets — Mono's
//! `TcpChannel`, rebuilt as a **multiplexed, pipelined connection**.
//!
//! Frames are the v2 format of [`crate::frame`]: a 13-byte header
//! (length, correlation ID, flags) followed by the formatter payload.
//! Each client connection owns a dedicated reader thread that demuxes
//! reply frames by correlation ID into per-call completion slots, so N
//! callers can have calls in flight on one socket simultaneously — the
//! stream mutex covers only the `write`, never the round trip. On top of
//! the multiplexing sits a small per-authority socket pool (default
//! [`DEFAULT_POOL_SIZE`], override with the `PARC_TCP_POOL` environment
//! variable) for bandwidth-bound payloads.
//!
//! The server accepts connections on a loopback-or-LAN socket and serves
//! each connection from its own reader thread. By default that thread
//! only decodes frames and enqueues them on the shared per-object
//! [`MailboxScheduler`] ([`DispatchMode::Mailbox`]), returning to the
//! socket immediately: calls to one object run serially in arrival order
//! (one-way posts, batches and two-way calls alike), distinct objects
//! run in parallel on the scheduler's work-stealing workers, and a slow
//! method on one object can no longer head-of-line-block every object
//! behind the same socket. Replies are written back in completion order;
//! the correlation ID is what makes out-of-order replies safe.
//!
//! The pre-mailbox server — one-way posts dispatched inline on the
//! reader thread, two-way calls on a fixed [`DISPATCH_WORKERS`]-sized
//! pool — survives as [`DispatchMode::Inline`] (select it with
//! `PARC_DISPATCH_MODE=inline` or [`TcpServerChannel::bind_with_mode`])
//! so the `mailbox_scaling` benchmark can measure exactly what the
//! scheduler buys. Likewise the pre-multiplexing client — one
//! connection, stream mutex held across the entire round trip — survives
//! as [`LockStepClientChannel`] for `tcp_concurrency`.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parc_serial::BinaryFormatter;
use parc_sync::{Condvar, Mutex};

use crate::bufpool;
use crate::channel::{ChannelProvider, ClientChannel, LinkFeedback};
use crate::dispatcher::dispatch;
use crate::error::RemotingError;
use crate::frame::{self, DepthExt, FrameRead, FLAG_ONEWAY};
use crate::mailbox::{DispatchDepth, MailboxScheduler};
use crate::message::{CallMessage, ReturnMessage};
use crate::retry::call_timeout;
use crate::threadpool::ThreadPool;
use crate::uri::{ObjectUri, Scheme};
use crate::wellknown::ObjectTable;

pub use crate::frame::MAX_FRAME;

/// Default per-call reply deadline when `PARC_CALL_TIMEOUT` is unset.
/// Kept as a named constant for the benches and docs; the live value
/// every connection actually uses is [`crate::retry::call_timeout`].
pub const DEFAULT_TIMEOUT: Duration = crate::retry::DEFAULT_CALL_TIMEOUT;

/// Default per-authority socket-pool size.
pub const DEFAULT_POOL_SIZE: usize = 2;

/// Worker threads in an [`DispatchMode::Inline`] server's shared two-way
/// dispatch pool (the pre-mailbox baseline shape).
pub const DISPATCH_WORKERS: usize = 4;

/// Environment variable overriding the per-authority socket-pool size.
pub const POOL_SIZE_ENV: &str = "PARC_TCP_POOL";

/// Environment variable selecting the server dispatch mode: `inline`
/// restores the pre-mailbox baseline; anything else (or unset) means
/// [`DispatchMode::Mailbox`].
pub const DISPATCH_MODE_ENV: &str = "PARC_DISPATCH_MODE";

/// Environment variable selecting the client transport the
/// [`TcpChannelProvider`] opens for `tcp://` URIs: `reactor` multiplexes
/// onto the shared readiness-driven reactor pool
/// ([`crate::reactor::ReactorClientChannel`]), `lockstep` restores the
/// pre-multiplexing baseline, anything else (or unset) means the
/// thread-per-connection multiplexed client ([`TcpClientChannel`]).
pub const TRANSPORT_ENV: &str = "PARC_TRANSPORT";

/// Which client transport serves `tcp://` URIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Multiplexed pipelined connections, one reader thread per socket
    /// (the default).
    Mux,
    /// One blocking socket, stream mutex across the round trip — the
    /// pre-multiplexing baseline.
    Lockstep,
    /// Nonblocking sockets multiplexed onto the shared reactor pool: no
    /// per-connection threads at all.
    Reactor,
}

impl Transport {
    /// The configured transport ([`TRANSPORT_ENV`]).
    pub fn from_env() -> Transport {
        match std::env::var(TRANSPORT_ENV).as_deref() {
            Ok("reactor") => Transport::Reactor,
            Ok("lockstep") => Transport::Lockstep,
            _ => Transport::Mux,
        }
    }
}

/// How a server executes decoded calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Per-object FIFO mailboxes drained by `workers` work-stealing
    /// threads (the default; see [`crate::mailbox`]).
    Mailbox {
        /// Worker-thread count (clamped to ≥ 1).
        workers: usize,
    },
    /// The pre-mailbox baseline: one-way posts run inline on each
    /// connection's reader thread, two-way calls on a fixed
    /// [`DISPATCH_WORKERS`]-sized shared pool. Kept so `mailbox_scaling`
    /// compares honestly.
    Inline,
}

impl DispatchMode {
    /// The configured mode: [`DispatchMode::Inline`] when
    /// `PARC_DISPATCH_MODE=inline`, otherwise [`DispatchMode::Mailbox`]
    /// with [`crate::mailbox::workers_from_env`] workers.
    pub fn from_env() -> DispatchMode {
        match std::env::var(DISPATCH_MODE_ENV).as_deref() {
            Ok("inline") => DispatchMode::Inline,
            _ => DispatchMode::Mailbox { workers: crate::mailbox::workers_from_env() },
        }
    }
}

/// A server's live dispatch backend, shared by every connection. The
/// reactor server (`crate::reactor`) reuses the same backend shapes, so
/// "mailbox vs inline" means exactly the same thing on every transport.
#[derive(Clone)]
pub(crate) enum ServerDispatch {
    Mailbox(Arc<MailboxScheduler>),
    Inline(Arc<ThreadPool>),
}

impl ServerDispatch {
    /// Builds the backend a [`DispatchMode`] names.
    pub(crate) fn for_mode(mode: DispatchMode) -> ServerDispatch {
        match mode {
            DispatchMode::Mailbox { workers } => {
                ServerDispatch::Mailbox(Arc::new(MailboxScheduler::with_workers(workers)))
            }
            DispatchMode::Inline => {
                ServerDispatch::Inline(Arc::new(ThreadPool::new(DISPATCH_WORKERS)))
            }
        }
    }

    /// The mailbox scheduler, when this backend has one.
    pub(crate) fn scheduler(&self) -> Option<Arc<MailboxScheduler>> {
        match self {
            ServerDispatch::Mailbox(s) => Some(Arc::clone(s)),
            ServerDispatch::Inline(_) => None,
        }
    }
}

/// The configured pool size: `PARC_TCP_POOL` when set and positive,
/// otherwise [`DEFAULT_POOL_SIZE`].
pub fn pool_size_from_env() -> usize {
    std::env::var(POOL_SIZE_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_POOL_SIZE)
}

/// Server half of the TCP channel.
pub struct TcpServerChannel {
    addr: SocketAddr,
    objects: ObjectTable,
    stop: Arc<AtomicBool>,
    scheduler: Option<Arc<MailboxScheduler>>,
}

impl TcpServerChannel {
    /// Binds and starts accepting with the configured dispatch mode
    /// ([`DispatchMode::from_env`]). Use `"127.0.0.1:0"` to let the OS
    /// pick a port, then read it back with
    /// [`TcpServerChannel::local_addr`].
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(addr: &str) -> Result<TcpServerChannel, RemotingError> {
        TcpServerChannel::bind_with_mode(addr, DispatchMode::from_env())
    }

    /// Binds with an explicit dispatch mode.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind_with_mode(
        addr: &str,
        mode: DispatchMode,
    ) -> Result<TcpServerChannel, RemotingError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let objects = ObjectTable::new();
        let stop = Arc::new(AtomicBool::new(false));
        // One dispatch backend per server, shared by every connection.
        // Mailbox: per-object serial, cross-object parallel, stealing
        // workers. Inline: the pre-mailbox fixed pool (the analogue of
        // Mono serving remoting from its managed thread pool), kept as
        // the benchmark baseline.
        let dispatch = ServerDispatch::for_mode(mode);
        let scheduler = dispatch.scheduler();
        let accept_objects = objects.clone();
        let accept_stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("tcp-accept-{local}"))
            .spawn(move || accept_loop(listener, accept_objects, accept_stop, dispatch))
            .expect("spawning tcp accept thread");
        Ok(TcpServerChannel { addr: local, objects, stop, scheduler })
    }

    /// Live backlog view of the mailbox scheduler (`None` when the server
    /// runs in [`DispatchMode::Inline`]).
    pub fn dispatch_depth(&self) -> Option<DispatchDepth> {
        self.scheduler.as_ref().map(|s| s.depth_handle())
    }

    /// Scheduler counter snapshot (`None` in [`DispatchMode::Inline`]).
    pub fn dispatch_stats(&self) -> Option<crate::mailbox::DispatchStats> {
        self.scheduler.as_ref().map(|s| s.stats())
    }

    /// The bound address (host:port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The published-object table served on this socket.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// A `tcp://` URI for an object on this server.
    pub fn uri_for(&self, object: &str) -> String {
        format!("tcp://{}/{}", self.addr, object)
    }
}

impl Drop for TcpServerChannel {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so the accept loop observes the stop flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl std::fmt::Debug for TcpServerChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServerChannel").field("addr", &self.addr).finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    objects: ObjectTable,
    stop: Arc<AtomicBool>,
    dispatch: ServerDispatch,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let objects = objects.clone();
        let stop = Arc::clone(&stop);
        let dispatch = dispatch.clone();
        let _ = std::thread::Builder::new()
            .name("tcp-conn".into())
            .spawn(move || serve_connection(stream, objects, stop, dispatch));
    }
}

/// Encodes `reply` and writes it as one frame under the connection's
/// write mutex, tearing the connection down on a failed write (a
/// half-written reply stream cannot be resynced). When the server runs a
/// mailbox scheduler, its live queue depth is sampled *at reply-write
/// time* and piggybacked as a [`DepthExt`] so the client's aggregation
/// controller sees backpressure with zero extra round trips.
fn write_reply(
    writer: &Arc<Mutex<TcpStream>>,
    corr_id: u64,
    reply: &ReturnMessage,
    depth: Option<&DispatchDepth>,
) {
    let formatter = BinaryFormatter::new();
    let _span = parc_obs::Span::enter(parc_obs::kinds::REPLY);
    let mut reply_buf = bufpool::global().checkout();
    if reply.encode_into(&formatter, &mut reply_buf).is_ok() {
        let ext = depth.map(DepthExt::capture);
        let mut w = writer.lock();
        if frame::write_frame_depth(&mut *w, corr_id, 0, ext, &reply_buf).is_err() {
            let _ = w.shutdown(std::net::Shutdown::Both);
        }
    }
    bufpool::global().checkin(reply_buf);
}

fn serve_connection(
    mut stream: TcpStream,
    objects: ObjectTable,
    stop: Arc<AtomicBool>,
    dispatch_backend: ServerDispatch,
) {
    let formatter = BinaryFormatter::new();
    let _ = stream.set_nodelay(true);
    // The read half stays on this thread; replies are written by dispatch
    // workers under this mutex, in completion order. Correlation IDs are
    // what make completion-order replies safe for the client.
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // Mailbox servers report their live backlog on every reply; the
    // inline baseline has no scheduler and sends bare frames.
    let depth = dispatch_backend.scheduler().map(|s| s.depth_handle());
    // The request buffer is recycled through the global pool. In mailbox
    // mode every frame is decoded right here (the decoded call is what
    // routes to a mailbox), so the buffer is reusable immediately; in
    // inline mode two-way frames hand it to a pool worker and take a
    // fresh (pooled) buffer for the next read.
    let mut payload = bufpool::global().checkout();
    loop {
        let header = match frame::read_frame_into(&mut stream, &mut payload) {
            Ok(FrameRead::Frame(h)) => h,
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Eof) | Err(_) => break,
        };
        // A stopped server closes its connections instead of serving new
        // requests (clients observe EOF -> transport error).
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Peel the trace-context extension (if any) off the payload; the
        // caller's context is installed around the dispatch below so the
        // server-side spans become children of the client's send span.
        let (trace_ctx, body_start) = match frame::split_trace_ext(&header, &payload) {
            Ok((ext, rest)) => {
                (ext.map(frame::TraceExt::to_context), payload.len() - rest.len())
            }
            Err(e) => {
                if !header.oneway() {
                    write_reply(
                        &writer,
                        header.corr_id,
                        &ReturnMessage::fault(0, e.to_string()),
                        depth.as_ref(),
                    );
                }
                continue;
            }
        };
        // Trust the frame flag over the payload: a post never gets a
        // reply, so it can never consume (or corrupt) a caller's slot.
        match &dispatch_backend {
            // Mailbox mode: decode and enqueue, nothing more — the reader
            // returns to the socket immediately. One-way posts, batches
            // and two-way calls all ride the target object's FIFO
            // mailbox, so per-object order (including one-way/two-way
            // interleaving from this connection) is preserved while
            // distinct objects run in parallel.
            ServerDispatch::Mailbox(sched) => {
                let call = match CallMessage::decode(&formatter, &payload[body_start..]) {
                    Ok(call) => call,
                    Err(e) => {
                        if !header.oneway() {
                            write_reply(
                                &writer,
                                header.corr_id,
                                &ReturnMessage::fault(0, e.to_string()),
                                depth.as_ref(),
                            );
                        }
                        continue;
                    }
                };
                let object = call.object.clone();
                if header.oneway() {
                    let objects = objects.clone();
                    sched.enqueue(&object, move || {
                        let _trace = parc_obs::trace::with_remote_parent(trace_ctx);
                        let _ = dispatch(&objects, &call);
                    });
                } else {
                    let objects = objects.clone();
                    let writer = Arc::clone(&writer);
                    let corr_id = header.corr_id;
                    let depth = depth.clone();
                    sched.enqueue(&object, move || {
                        let _trace = parc_obs::trace::with_remote_parent(trace_ctx);
                        let reply = dispatch_call(&objects, &call);
                        write_reply(&writer, corr_id, &reply, depth.as_ref());
                    });
                }
            }
            // Inline baseline: the pre-mailbox shape. One-way posts run
            // on this reader thread in arrival order; a slow post
            // head-of-line-blocks the whole connection (exactly what the
            // mailbox_scaling bench measures against).
            ServerDispatch::Inline(pool) => {
                if header.oneway() {
                    if let Ok(call) = CallMessage::decode(&formatter, &payload[body_start..]) {
                        let _trace = parc_obs::trace::with_remote_parent(trace_ctx);
                        let _ = dispatch(&objects, &call);
                    }
                    continue;
                }
                // Two-way call: run it on the shared pool so a slow call
                // does not convoy the calls pipelined behind it.
                let mut req = bufpool::global().checkout();
                std::mem::swap(&mut req, &mut payload);
                let objects = objects.clone();
                let writer = Arc::clone(&writer);
                let corr_id = header.corr_id;
                pool.submit(move || {
                    let formatter = BinaryFormatter::new();
                    let _trace = parc_obs::trace::with_remote_parent(trace_ctx);
                    let reply = match CallMessage::decode(&formatter, &req[body_start..]) {
                        Ok(call) => dispatch_call(&objects, &call),
                        Err(e) => ReturnMessage::fault(0, e.to_string()),
                    };
                    bufpool::global().checkin(req);
                    write_reply(&writer, corr_id, &reply, None);
                });
            }
        }
    }
    bufpool::global().checkin(payload);
}

/// Dispatches a two-way call, turning a "no reply" dispatch outcome (which
/// only one-way posts produce) into an explicit fault instead of leaving
/// the caller to time out.
pub(crate) fn dispatch_call(objects: &ObjectTable, call: &CallMessage) -> ReturnMessage {
    dispatch(objects, call)
        .unwrap_or_else(|| ReturnMessage::fault(call.call_id, "call produced no reply"))
}

/// One completion slot a caller parks on while its call is in flight.
/// Shared with the reactor client, whose callers park exactly the same
/// way — only the thread that *completes* the slot differs.
pub(crate) struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

enum SlotState {
    Waiting,
    Done(Result<Vec<u8>, RemotingError>),
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(SlotState::Waiting), cv: Condvar::new() })
    }

    pub(crate) fn complete(&self, outcome: Result<Vec<u8>, RemotingError>) {
        *self.state.lock() = SlotState::Done(outcome);
        self.cv.notify_all();
    }

    pub(crate) fn wait(&self, timeout: Duration) -> Result<Vec<u8>, RemotingError> {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut state = self.state.lock();
        loop {
            if let SlotState::Done(outcome) = std::mem::replace(&mut *state, SlotState::Waiting) {
                return outcome;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RemotingError::timed_out(now - start, timeout));
            }
            self.cv.wait_for(&mut state, deadline - now);
        }
    }
}

/// State shared between callers and whichever thread demuxes replies —
/// a dedicated reader thread (mux) or a reactor thread (reactor).
pub(crate) struct MuxShared {
    pub(crate) pending: Mutex<HashMap<u64, Arc<Slot>>>,
    /// Set once the reader dies; later calls fail fast with this detail.
    pub(crate) dead: Mutex<Option<String>>,
}

impl MuxShared {
    pub(crate) fn new() -> Arc<MuxShared> {
        Arc::new(MuxShared { pending: Mutex::new(HashMap::new()), dead: Mutex::new(None) })
    }

    /// Fails every parked caller and remembers why, so calls issued after
    /// the connection broke do not block until their timeout.
    pub(crate) fn poison(&self, detail: &str) {
        *self.dead.lock() = Some(detail.to_string());
        let drained: Vec<Arc<Slot>> = self.pending.lock().drain().map(|(_, s)| s).collect();
        for slot in drained {
            if parc_obs::is_enabled() {
                parc_obs::gauge(parc_obs::kinds::INFLIGHT).adjust(-1);
            }
            slot.complete(Err(RemotingError::Transport { detail: detail.to_string() }));
        }
    }
}

/// One multiplexed connection: writers interleave frames under a short
/// write lock; a dedicated reader thread routes replies to their slots.
struct MuxConnection {
    writer: Mutex<TcpStream>,
    shared: Arc<MuxShared>,
    next_corr: AtomicU64,
    formatter: BinaryFormatter,
    /// Per-call reply deadline for every call on this connection.
    timeout: Duration,
    /// Channel-level feedback sink (RTT + server depth reports). Shared
    /// by every pooled connection and surviving revives, so the
    /// aggregation controller's view is per-authority, not per-socket.
    feedback: Arc<LinkFeedback>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl MuxConnection {
    fn connect(
        addr: &str,
        timeout: Duration,
        feedback: Arc<LinkFeedback>,
    ) -> Result<MuxConnection, RemotingError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // The reader thread treats a timeout at a frame boundary as "idle"
        // (see `frame::FrameRead::Idle`), so this timeout only bounds how
        // long a *partial* frame may stall.
        stream.set_read_timeout(Some(timeout))?;
        let reader_stream = stream.try_clone()?;
        let shared = MuxShared::new();
        let reader_shared = Arc::clone(&shared);
        let reader_feedback = Arc::clone(&feedback);
        let reader = std::thread::Builder::new()
            .name("tcp-mux-reader".into())
            .spawn(move || reader_loop(reader_stream, &reader_shared, &reader_feedback))
            .expect("spawning tcp mux reader");
        Ok(MuxConnection {
            writer: Mutex::new(stream),
            shared,
            next_corr: AtomicU64::new(1),
            formatter: BinaryFormatter::new(),
            timeout,
            feedback,
            reader: Some(reader),
        })
    }

    fn check_alive(&self) -> Result<(), RemotingError> {
        if let Some(detail) = self.shared.dead.lock().clone() {
            return Err(RemotingError::Transport { detail });
        }
        Ok(())
    }

    /// Whether the reader thread has poisoned this connection.
    fn is_dead(&self) -> bool {
        self.shared.dead.lock().is_some()
    }

    /// Forcibly breaks the socket (test hook): the reader observes the
    /// shutdown and poisons the connection exactly as a real network
    /// failure would.
    fn sever(&self) {
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }

    /// Serializes `msg` into a pooled buffer and writes one frame,
    /// returning the encoded payload size. The write lock covers only the
    /// socket write — never a round trip.
    fn send_frame(&self, msg: &CallMessage, corr_id: u64, flags: u8) -> Result<usize, RemotingError> {
        let pool = bufpool::global();
        let mut buf = pool.checkout();
        let encoded = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::SERIALIZE);
            msg.encode_into(&self.formatter, &mut buf)
        };
        if let Err(e) = encoded {
            pool.checkin(buf);
            return Err(e.into());
        }
        let sent = buf.len();
        let written = {
            // Capture the caller context inside the send span so the
            // server-side dispatch hangs directly under `channel.send`.
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_SEND);
            let trace = frame::TraceExt::capture();
            let mut writer = self.writer.lock();
            frame::write_frame_traced(&mut *writer, corr_id, flags, trace, &buf)
        };
        pool.checkin(buf);
        if let Err(e) = &written {
            // A failed write is definitive: the socket is broken. Poison
            // now instead of waiting for the reader thread to notice, so
            // an immediate (zero-backoff) retry already sees a dead
            // connection and revives the pool slot rather than racing the
            // reader and burning its attempts on the same corpse.
            self.shared.poison(&format!("send failed: {e}"));
        }
        written.map_err(RemotingError::from).map(|()| sent)
    }

    fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
        let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_PIPELINE);
        self.check_alive()?;
        let corr_id = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let slot = Slot::new();
        self.shared.pending.lock().insert(corr_id, Arc::clone(&slot));
        if parc_obs::is_enabled() {
            parc_obs::gauge(parc_obs::kinds::INFLIGHT).adjust(1);
        }
        let outcome = self.call_inner(msg, corr_id, &slot);
        // Success paths had their slot removed by the reader; make sure
        // error paths (send failure, timeout) do not leak the entry.
        self.shared.pending.lock().remove(&corr_id);
        if parc_obs::is_enabled() {
            parc_obs::gauge(parc_obs::kinds::INFLIGHT).adjust(-1);
        }
        outcome
    }

    fn call_inner(
        &self,
        msg: &CallMessage,
        corr_id: u64,
        slot: &Arc<Slot>,
    ) -> Result<ReturnMessage, RemotingError> {
        let started = Instant::now();
        self.send_frame(msg, corr_id, 0)?;
        let payload = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_RECV);
            slot.wait(self.timeout)?
        };
        self.feedback.record_rtt(started.elapsed());
        let _span = parc_obs::Span::enter(parc_obs::kinds::DESERIALIZE);
        let reply = ReturnMessage::decode(&self.formatter, &payload);
        bufpool::global().checkin(payload);
        Ok(reply?)
    }

    fn post(&self, msg: &CallMessage) -> Result<usize, RemotingError> {
        self.check_alive()?;
        // One-way posts never register a slot: the server's reply stream
        // skips them entirely (FLAG_ONEWAY), so they cannot desynchronize
        // correlation even when the target method does not exist.
        let corr_id = self.next_corr.fetch_add(1, Ordering::Relaxed);
        self.send_frame(msg, corr_id, FLAG_ONEWAY)
    }
}

impl Drop for MuxConnection {
    fn drop(&mut self) {
        // Unblock the reader (it is parked in `read`) and reap it.
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

fn reader_loop(mut stream: TcpStream, shared: &Arc<MuxShared>, feedback: &LinkFeedback) {
    let pool = bufpool::global();
    loop {
        let mut payload = pool.checkout();
        let header = match frame::read_frame_into(&mut stream, &mut payload) {
            Ok(FrameRead::Frame(h)) => h,
            Ok(FrameRead::Idle) => {
                pool.checkin(payload);
                continue;
            }
            Ok(FrameRead::Eof) => {
                pool.checkin(payload);
                shared.poison("server closed connection");
                return;
            }
            Err(e) => {
                pool.checkin(payload);
                shared.poison(&format!("tcp read failed: {e}"));
                return;
            }
        };
        // Peel the server's backlog report (if any) off the reply and
        // strip its bytes so callers decode a bare payload.
        match frame::split_depth_ext(&header, &payload) {
            Ok((Some(ext), _)) => {
                feedback.record_depth(ext.pending as usize, ext.busiest as usize);
                payload.drain(..frame::DEPTH_EXT_LEN);
            }
            Ok((None, _)) => {}
            Err(e) => {
                pool.checkin(payload);
                shared.poison(&format!("malformed depth extension: {e}"));
                return;
            }
        }
        match shared.pending.lock().remove(&header.corr_id) {
            Some(slot) => slot.complete(Ok(payload)),
            // Unknown id: a reply that raced a caller's timeout (its slot
            // is gone) — drop it and keep the stream healthy.
            None => pool.checkin(payload),
        }
    }
}

/// Client half of the TCP channel: a small pool of multiplexed
/// connections; calls from any number of threads pipeline freely.
///
/// A connection whose reader dies (server restart, network blip) used to
/// poison its pool slot forever. Now each slot is swappable: the first
/// caller to hit the poisoned connection reconnects it, installing a
/// fresh socket with a fresh (empty) correlation slot table, and retries
/// its own operation once on the new connection. Pending calls on the
/// old connection were already failed by the poison — their owners see a
/// retryable transport error and re-register on the fresh table via the
/// proxy-level [`crate::retry::RetryPolicy`].
pub struct TcpClientChannel {
    addr: String,
    timeout: Duration,
    connections: Vec<Mutex<Arc<MuxConnection>>>,
    next: AtomicUsize,
    feedback: Arc<LinkFeedback>,
}

impl TcpClientChannel {
    /// Connects to a server with the configured pool size
    /// ([`pool_size_from_env`]) and per-call deadline
    /// ([`crate::retry::call_timeout`]).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<TcpClientChannel, RemotingError> {
        TcpClientChannel::connect_pooled(addr, pool_size_from_env())
    }

    /// Connects with an explicit socket-pool size (`>= 1`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_pooled(addr: &str, pool: usize) -> Result<TcpClientChannel, RemotingError> {
        TcpClientChannel::connect_pooled_with_timeout(addr, pool, call_timeout())
    }

    /// Connects with an explicit pool size and per-call deadline (tests
    /// pin short deadlines without touching the process environment).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_pooled_with_timeout(
        addr: &str,
        pool: usize,
        timeout: Duration,
    ) -> Result<TcpClientChannel, RemotingError> {
        let pool = pool.max(1);
        let feedback = Arc::new(LinkFeedback::new());
        let mut connections = Vec::with_capacity(pool);
        for _ in 0..pool {
            connections.push(Mutex::new(Arc::new(MuxConnection::connect(
                addr,
                timeout,
                Arc::clone(&feedback),
            )?)));
        }
        Ok(TcpClientChannel {
            addr: addr.to_string(),
            timeout,
            connections,
            next: AtomicUsize::new(0),
            feedback,
        })
    }

    /// Number of sockets in this channel's pool.
    pub fn pool_size(&self) -> usize {
        self.connections.len()
    }

    /// The per-call reply deadline this channel applies.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Severs every pooled socket (test hook): readers observe the
    /// shutdown and poison their connections exactly like a real network
    /// failure, so reconnect paths can be exercised deterministically
    /// against a still-live server.
    pub fn break_connections(&self) {
        for slot in &self.connections {
            slot.lock().sever();
        }
    }

    /// Picks the next pooled slot, reviving its connection first when a
    /// previous caller left it poisoned (nothing has been sent yet, so
    /// this retry is always safe).
    fn pick_live(
        &self,
    ) -> Result<(&Mutex<Arc<MuxConnection>>, Arc<MuxConnection>), RemotingError> {
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.connections[n % self.connections.len()];
        let conn = Arc::clone(&slot.lock());
        if conn.is_dead() {
            let fresh = self.revive(slot, &conn)?;
            return Ok((slot, fresh));
        }
        Ok((slot, conn))
    }

    /// Replaces a poisoned connection in `slot` (unless a racing caller
    /// already did), re-registering a fresh correlation slot table.
    fn revive(
        &self,
        slot: &Mutex<Arc<MuxConnection>>,
        stale: &Arc<MuxConnection>,
    ) -> Result<Arc<MuxConnection>, RemotingError> {
        let started = Instant::now();
        let mut guard = slot.lock();
        if !Arc::ptr_eq(&guard, stale) && !guard.is_dead() {
            return Ok(Arc::clone(&guard));
        }
        let fresh = Arc::new(MuxConnection::connect(
            &self.addr,
            self.timeout,
            Arc::clone(&self.feedback),
        )?);
        *guard = Arc::clone(&fresh);
        drop(guard);
        parc_obs::counter(parc_obs::kinds::CONN_RECONNECTED).incr();
        parc_obs::histogram(parc_obs::kinds::RECOVERY_LATENCY)
            .record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        parc_obs::event(parc_obs::kinds::CONN_RECONNECTED, || {
            format!("addr={} elapsed_us={}", self.addr, started.elapsed().as_micros())
        });
        Ok(fresh)
    }
}

impl ClientChannel for TcpClientChannel {
    fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
        let (slot, conn) = self.pick_live()?;
        let outcome = conn.call(msg);
        // A call that was in flight when the connection died may already
        // have executed server-side, so it is NOT resent here (that would
        // break at-most-once for non-idempotent methods) — but the slot
        // is revived so the channel recovers for every later caller, and
        // the surfaced error stays retryable for idempotent proxies.
        if outcome.is_err() && conn.is_dead() {
            let _ = self.revive(slot, &conn);
        }
        outcome
    }

    fn post(&self, msg: &CallMessage) -> Result<usize, RemotingError> {
        let (slot, conn) = self.pick_live()?;
        match conn.post(msg) {
            // Fire-and-forget: resending after a reconnect is safe (the
            // contract is at-most-once delivery with no failure report,
            // and a send error means delivery was unlikely anyway).
            Err(e) if conn.is_dead() => match self.revive(slot, &conn) {
                Ok(fresh) => fresh.post(msg),
                Err(_) => Err(e),
            },
            outcome => outcome,
        }
    }

    fn scheme(&self) -> &'static str {
        "tcp"
    }

    fn feedback(&self) -> Option<Arc<LinkFeedback>> {
        Some(Arc::clone(&self.feedback))
    }
}

impl std::fmt::Debug for TcpClientChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClientChannel")
            .field("pool", &self.connections.len())
            .finish_non_exhaustive()
    }
}

/// The pre-multiplexing client: one connection whose stream mutex is held
/// across the **entire** request/response round trip, so concurrent
/// callers fully serialize. Kept as the baseline for the
/// `tcp_concurrency` benchmark; new code should use [`TcpClientChannel`].
pub struct LockStepClientChannel {
    stream: Mutex<TcpStream>,
    formatter: BinaryFormatter,
    next_corr: AtomicU64,
    timeout: Duration,
    feedback: Arc<LinkFeedback>,
}

impl LockStepClientChannel {
    /// Connects to a server with the per-call deadline from
    /// [`crate::retry::call_timeout`].
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<LockStepClientChannel, RemotingError> {
        let timeout = call_timeout();
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(LockStepClientChannel {
            stream: Mutex::new(stream),
            formatter: BinaryFormatter::new(),
            next_corr: AtomicU64::new(1),
            timeout,
            feedback: Arc::new(LinkFeedback::new()),
        })
    }
}

impl ClientChannel for LockStepClientChannel {
    fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
        let bytes = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::SERIALIZE);
            msg.encode(&self.formatter)?
        };
        let corr_id = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let rtt_started = Instant::now();
        let mut stream = self.stream.lock();
        {
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_SEND);
            let trace = frame::TraceExt::capture();
            frame::write_frame_traced(&mut *stream, corr_id, 0, trace, &bytes)?;
        }
        let started = Instant::now();
        let mut payload = Vec::new();
        let header;
        {
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_RECV);
            loop {
                match frame::read_frame_into(&mut *stream, &mut payload)? {
                    FrameRead::Frame(h) if h.corr_id == corr_id => {
                        header = h;
                        break;
                    }
                    // Stale reply from a timed-out predecessor: skip it.
                    FrameRead::Frame(_) => continue,
                    FrameRead::Idle => {
                        return Err(RemotingError::timed_out(started.elapsed(), self.timeout))
                    }
                    FrameRead::Eof => {
                        return Err(RemotingError::Transport {
                            detail: "server closed connection".into(),
                        })
                    }
                }
            }
        }
        self.feedback.record_rtt(rtt_started.elapsed());
        let (ext, body) = frame::split_depth_ext(&header, &payload)?;
        if let Some(ext) = ext {
            self.feedback.record_depth(ext.pending as usize, ext.busiest as usize);
        }
        let _span = parc_obs::Span::enter(parc_obs::kinds::DESERIALIZE);
        Ok(ReturnMessage::decode(&self.formatter, body)?)
    }

    fn post(&self, msg: &CallMessage) -> Result<usize, RemotingError> {
        let bytes = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::SERIALIZE);
            msg.encode(&self.formatter)?
        };
        let corr_id = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let mut stream = self.stream.lock();
        let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_SEND);
        let trace = frame::TraceExt::capture();
        frame::write_frame_traced(&mut *stream, corr_id, FLAG_ONEWAY, trace, &bytes)?;
        Ok(bytes.len())
    }

    fn scheme(&self) -> &'static str {
        "tcp"
    }

    fn feedback(&self) -> Option<Arc<LinkFeedback>> {
        Some(Arc::clone(&self.feedback))
    }
}

impl std::fmt::Debug for LockStepClientChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockStepClientChannel").finish_non_exhaustive()
    }
}

/// Channel provider resolving `tcp://host:port/Object` URIs, with one
/// cached channel per authority. The channel's shape follows
/// [`Transport::from_env`]: multiplexed thread-per-connection by default,
/// the shared reactor pool under `PARC_TRANSPORT=reactor`, the lockstep
/// baseline under `PARC_TRANSPORT=lockstep`.
pub struct TcpChannelProvider {
    cache: Mutex<std::collections::HashMap<String, Arc<dyn ClientChannel>>>,
    transport: Transport,
}

impl Default for TcpChannelProvider {
    fn default() -> TcpChannelProvider {
        TcpChannelProvider::new()
    }
}

impl TcpChannelProvider {
    /// Creates a provider with an empty connection cache and the
    /// environment-configured transport.
    pub fn new() -> TcpChannelProvider {
        TcpChannelProvider::with_transport(Transport::from_env())
    }

    /// Creates a provider pinned to an explicit transport (tests and
    /// benches select shapes without touching the process environment).
    pub fn with_transport(transport: Transport) -> TcpChannelProvider {
        TcpChannelProvider { cache: Mutex::new(std::collections::HashMap::new()), transport }
    }

    /// The transport this provider opens.
    pub fn transport(&self) -> Transport {
        self.transport
    }
}

impl ChannelProvider for TcpChannelProvider {
    fn open(&self, uri: &ObjectUri) -> Result<Arc<dyn ClientChannel>, RemotingError> {
        if uri.scheme() != Scheme::Tcp {
            return Err(RemotingError::BadUri {
                uri: uri.to_string(),
                detail: "tcp provider only serves tcp:// uris".into(),
            });
        }
        let mut cache = self.cache.lock();
        if let Some(chan) = cache.get(uri.authority()) {
            return Ok(crate::fault::wrap_if_chaotic(Arc::clone(chan)));
        }
        let chan: Arc<dyn ClientChannel> = match self.transport {
            Transport::Mux => Arc::new(TcpClientChannel::connect(uri.authority())?),
            Transport::Lockstep => Arc::new(LockStepClientChannel::connect(uri.authority())?),
            Transport::Reactor => {
                Arc::new(crate::reactor::ReactorClientChannel::connect(uri.authority())?)
            }
        };
        cache.insert(uri.authority().to_string(), Arc::clone(&chan));
        Ok(crate::fault::wrap_if_chaotic(chan))
    }
}

impl std::fmt::Debug for TcpChannelProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpChannelProvider")
            .field("cached", &self.cache.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activator::Activator;
    use crate::dispatcher::FnInvokable;
    use parc_serial::Value;

    fn start_echo_server() -> TcpServerChannel {
        let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
        server.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
                "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
                "len" => Ok(Value::I32(
                    args.first().and_then(Value::as_i32_array).map_or(-1, |a| a.len() as i32),
                )),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Echo".into(),
                    method: method.into(),
                }),
            })),
        );
        server
    }

    #[test]
    fn roundtrip_over_real_sockets() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
        assert_eq!(
            proxy.call("echo", vec![Value::Str("over tcp".into())]).unwrap(),
            Value::Str("over tcp".into())
        );
    }

    #[test]
    fn large_payload_roundtrips() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
        let big: Vec<i32> = (0..200_000).collect();
        assert_eq!(
            proxy.call("len", vec![Value::I32Array(big)]).unwrap(),
            Value::I32(200_000)
        );
    }

    #[test]
    fn concurrent_callers_share_one_multiplexed_channel() {
        let server = start_echo_server();
        let chan =
            Arc::new(TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 1).unwrap());
        assert_eq!(chan.pool_size(), 1);
        std::thread::scope(|scope| {
            for t in 0..4i32 {
                let chan = Arc::clone(&chan);
                scope.spawn(move || {
                    let proxy = crate::channel::RemoteObject::new(
                        chan as Arc<dyn ClientChannel>,
                        "Echo",
                    );
                    for i in 0..20 {
                        let v = proxy.call("echo", vec![Value::I32(t * 100 + i)]).unwrap();
                        assert_eq!(v, Value::I32(t * 100 + i));
                    }
                });
            }
        });
    }

    fn register_sleepy(server: &TcpServerChannel, name: &str) {
        server.objects().register_singleton(
            name,
            Arc::new(crate::dispatcher::FnInvokable(|method: &str, _args: &[Value]| {
                match method {
                    "nap" => {
                        std::thread::sleep(Duration::from_millis(100));
                        Ok(Value::Null)
                    }
                    _ => Err(RemotingError::MethodNotFound {
                        object: "Sleepy".into(),
                        method: method.into(),
                    }),
                }
            })),
        );
    }

    /// The server must run pipelined two-way calls to DISTINCT objects
    /// concurrently, not serially on the connection's reader thread: four
    /// calls that each sleep 100ms, issued over ONE connection, must
    /// finish in far less than the 400ms a serial server would need.
    /// (Calls to one object serialize by design — see the test below.)
    #[test]
    fn server_overlaps_pipelined_calls_from_one_connection() {
        let server =
            TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox { workers: 4 })
                .unwrap();
        for i in 0..4 {
            register_sleepy(&server, &format!("Sleepy{i}"));
        }
        let chan =
            Arc::new(TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 1).unwrap());
        let start = Instant::now();
        std::thread::scope(|scope| {
            for i in 0..4 {
                let chan = Arc::clone(&chan);
                scope.spawn(move || {
                    let proxy = crate::channel::RemoteObject::new(
                        chan as Arc<dyn ClientChannel>,
                        format!("Sleepy{i}"),
                    );
                    proxy.call("nap", vec![]).unwrap();
                });
            }
        });
        let elapsed = start.elapsed();
        // 4 mailbox workers, 4 objects: all four naps overlap (~100ms plus
        // scheduling slack). A serial server would take >= 400ms.
        assert!(
            elapsed < Duration::from_millis(300),
            "4 overlapped 100ms calls took {elapsed:?} — server is dispatching serially"
        );
    }

    /// The flip side of the active-object discipline: concurrent calls to
    /// ONE object must never overlap, whatever the client concurrency.
    #[test]
    fn calls_to_one_object_never_overlap() {
        let server =
            TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox { workers: 4 })
                .unwrap();
        let in_flight = Arc::new(AtomicUsize::new(0));
        let overlapped = Arc::new(AtomicBool::new(false));
        let (flight, over) = (Arc::clone(&in_flight), Arc::clone(&overlapped));
        server.objects().register_singleton(
            "Guarded",
            Arc::new(crate::dispatcher::FnInvokable(move |_method: &str, _args: &[Value]| {
                if flight.fetch_add(1, Ordering::SeqCst) != 0 {
                    over.store(true, Ordering::SeqCst);
                }
                std::thread::sleep(Duration::from_millis(2));
                flight.fetch_sub(1, Ordering::SeqCst);
                Ok(Value::Null)
            })),
        );
        let chan =
            Arc::new(TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 1).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let chan = Arc::clone(&chan);
                scope.spawn(move || {
                    let proxy = crate::channel::RemoteObject::new(
                        chan as Arc<dyn ClientChannel>,
                        "Guarded",
                    );
                    for _ in 0..10 {
                        proxy.post("touch", vec![]).unwrap();
                        proxy.call("touch", vec![]).unwrap();
                    }
                });
            }
        });
        assert!(
            !overlapped.load(Ordering::SeqCst),
            "two invocations of one object ran concurrently"
        );
        // The worker bumps `executed` *after* the job (whose reply is what
        // unblocked the caller), so give the counter a bounded moment.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while server.dispatch_stats().unwrap().executed < 80
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(server.dispatch_stats().unwrap().executed >= 80);
    }

    /// The pre-mailbox baseline stays selectable and functional.
    #[test]
    fn inline_baseline_mode_still_serves() {
        let server =
            TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Inline).unwrap();
        assert!(server.dispatch_depth().is_none(), "inline mode has no scheduler");
        server.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
                "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Echo".into(),
                    method: method.into(),
                }),
            })),
        );
        let provider = TcpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
        proxy.post("echo", vec![Value::I32(7)]).unwrap();
        for i in 0..10 {
            assert_eq!(proxy.call("echo", vec![Value::I32(i)]).unwrap(), Value::I32(i));
        }
    }

    #[test]
    fn provider_caches_connections_per_authority() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let uri_a: ObjectUri = server.uri_for("Echo").parse().unwrap();
        let a = provider.open(&uri_a).unwrap();
        let b = provider.open(&uri_a).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn fault_propagates_over_tcp() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
        assert!(matches!(
            proxy.call("missing", vec![]),
            Err(RemotingError::ServerFault { .. })
        ));
    }

    #[test]
    fn connecting_to_dead_port_fails() {
        // Bind and immediately drop to obtain a (very likely) dead port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(TcpClientChannel::connect(&addr.to_string()).is_err());
    }

    #[test]
    fn posts_are_fire_and_forget() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
        // Posting to a missing method must not error locally nor poison the
        // connection for the next call.
        proxy.post("missing", vec![]).unwrap();
        assert_eq!(proxy.call("echo", vec![Value::I32(1)]).unwrap(), Value::I32(1));
    }

    #[test]
    fn interleaved_posts_and_calls_from_many_threads_stay_correlated() {
        // The multiplexing regression this guards: a post must never
        // consume a reply slot, so posts to missing methods interleaved
        // with calls from other threads cannot desynchronize replies.
        let server = start_echo_server();
        let chan =
            Arc::new(TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 1).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4i32 {
                let chan = Arc::clone(&chan);
                scope.spawn(move || {
                    let proxy = crate::channel::RemoteObject::new(
                        chan as Arc<dyn ClientChannel>,
                        "Echo",
                    );
                    for i in 0..25 {
                        // Posts to both valid and missing methods...
                        proxy.post("echo", vec![Value::I32(i)]).unwrap();
                        proxy.post("missing", vec![]).unwrap();
                        // ...never corrupt the next synchronous reply.
                        let expect = t * 1000 + i;
                        let v = proxy.call("echo", vec![Value::I32(expect)]).unwrap();
                        assert_eq!(v, Value::I32(expect));
                    }
                });
            }
        });
    }

    #[test]
    fn lockstep_baseline_still_roundtrips() {
        let server = start_echo_server();
        let chan = Arc::new(
            LockStepClientChannel::connect(&server.local_addr().to_string()).unwrap(),
        );
        let proxy =
            crate::channel::RemoteObject::new(chan as Arc<dyn ClientChannel>, "Echo");
        proxy.post("missing", vec![]).unwrap();
        for i in 0..10 {
            assert_eq!(proxy.call("echo", vec![Value::I32(i)]).unwrap(), Value::I32(i));
        }
    }

    #[test]
    fn pool_size_env_parsing() {
        // Don't mutate the process env (tests run threaded); exercise the
        // default path and the explicit constructor instead.
        assert!(pool_size_from_env() >= 1);
        let server = start_echo_server();
        let chan =
            TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 3).unwrap();
        assert_eq!(chan.pool_size(), 3);
        let chan = TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 0).unwrap();
        assert_eq!(chan.pool_size(), 1, "pool size is clamped to >= 1");
    }

    #[test]
    fn broken_connections_reconnect_against_live_server() {
        let server = start_echo_server();
        let chan = Arc::new(
            TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 2).unwrap(),
        );
        let proxy = crate::channel::RemoteObject::new(
            Arc::clone(&chan) as Arc<dyn ClientChannel>,
            "Echo",
        );
        assert!(proxy.call("echo", vec![Value::I32(1)]).is_ok());
        chan.break_connections();
        // The channel recovers in place: no rebuild, fresh sockets and
        // correlation tables installed by the first callers to notice.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match proxy.call("echo", vec![Value::I32(2)]) {
                Ok(v) => {
                    assert_eq!(v, Value::I32(2));
                    break;
                }
                Err(_) => {
                    assert!(Instant::now() < deadline, "channel never recovered");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        // With a retrying proxy, recovery is invisible to the caller.
        chan.break_connections();
        let retrying = crate::channel::RemoteObject::new(
            Arc::clone(&chan) as Arc<dyn ClientChannel>,
            "Echo",
        )
        .with_retry(crate::retry::RetryPolicy::new(
            8,
            Duration::from_millis(2),
            Duration::from_millis(50),
        ));
        assert_eq!(
            retrying.call_idempotent("echo", vec![Value::I32(3)]).unwrap(),
            Value::I32(3)
        );
    }

    #[test]
    fn per_call_deadline_times_out_with_durations() {
        let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
        server.objects().register_singleton(
            "Slow",
            Arc::new(FnInvokable(|_m: &str, _a: &[Value]| {
                std::thread::sleep(Duration::from_millis(500));
                Ok(Value::Null)
            })),
        );
        let chan = TcpClientChannel::connect_pooled_with_timeout(
            &server.local_addr().to_string(),
            1,
            Duration::from_millis(50),
        )
        .unwrap();
        assert_eq!(chan.timeout(), Duration::from_millis(50));
        let proxy = crate::channel::RemoteObject::new(
            Arc::new(chan) as Arc<dyn ClientChannel>,
            "Slow",
        );
        let started = Instant::now();
        match proxy.call("nap", vec![]) {
            Err(RemotingError::Timeout { elapsed, deadline }) => {
                assert_eq!(deadline, Duration::from_millis(50));
                assert!(elapsed >= deadline, "elapsed {elapsed:?} under deadline");
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "per-call deadline was ignored"
        );
    }

    /// Every reply from a mailbox-mode server reports its scheduler
    /// backlog; the mux channel surfaces it (plus RTT) through
    /// [`ClientChannel::feedback`] without disturbing the payload.
    #[test]
    fn mux_replies_carry_depth_feedback() {
        let server = start_echo_server();
        let chan = Arc::new(
            TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 1).unwrap(),
        );
        let feedback = chan.feedback().expect("mux channel exposes feedback");
        let proxy = crate::channel::RemoteObject::new(
            Arc::clone(&chan) as Arc<dyn ClientChannel>,
            "Echo",
        );
        assert_eq!(proxy.call("echo", vec![Value::I32(9)]).unwrap(), Value::I32(9));
        assert!(feedback.rtt().is_some(), "call recorded no RTT sample");
        assert!(feedback.depth().is_some(), "mailbox reply carried no depth report");
    }

    #[test]
    fn lockstep_replies_carry_depth_feedback() {
        let server = start_echo_server();
        let chan = Arc::new(
            LockStepClientChannel::connect(&server.local_addr().to_string()).unwrap(),
        );
        let feedback = chan.feedback().expect("lockstep channel exposes feedback");
        let proxy =
            crate::channel::RemoteObject::new(Arc::clone(&chan) as Arc<dyn ClientChannel>, "Echo");
        assert_eq!(proxy.call("echo", vec![Value::I32(3)]).unwrap(), Value::I32(3));
        assert!(feedback.rtt().is_some());
        assert!(feedback.depth().is_some());
    }

    /// Inline-mode servers have no scheduler: replies stay bare frames
    /// and the client's depth view stays `None` (RTT still accrues).
    #[test]
    fn inline_replies_report_no_depth() {
        let server =
            TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Inline).unwrap();
        server.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|_m: &str, args: &[Value]| {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            })),
        );
        let chan = Arc::new(
            TcpClientChannel::connect_pooled(&server.local_addr().to_string(), 1).unwrap(),
        );
        let feedback = chan.feedback().unwrap();
        let proxy = crate::channel::RemoteObject::new(
            Arc::clone(&chan) as Arc<dyn ClientChannel>,
            "Echo",
        );
        proxy.call("echo", vec![Value::I32(1)]).unwrap();
        assert!(feedback.rtt().is_some());
        assert!(feedback.depth().is_none(), "inline server should send no depth ext");
    }

    #[test]
    fn dead_connection_fails_fast_after_poison() {
        let server = start_echo_server();
        let addr = server.local_addr().to_string();
        let chan = TcpClientChannel::connect_pooled(&addr, 1).unwrap();
        let proxy = crate::channel::RemoteObject::new(
            Arc::new(chan) as Arc<dyn ClientChannel>,
            "Echo",
        );
        assert!(proxy.call("echo", vec![Value::I32(1)]).is_ok());
        drop(server);
        // Once the reader observes the close, calls must fail quickly with
        // a transport error rather than waiting out the 30 s timeout.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match proxy.call("echo", vec![Value::I32(2)]) {
                Err(RemotingError::Transport { .. }) | Err(RemotingError::Timeout { .. }) => break,
                Err(other) => panic!("unexpected error class: {other:?}"),
                Ok(_) => {
                    assert!(Instant::now() < deadline, "dead connection kept answering");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }
}
