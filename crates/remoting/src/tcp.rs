//! The TCP channel: binary formatter over framed sockets — Mono's
//! `TcpChannel`.
//!
//! Frames are a 4-byte big-endian length followed by the formatter payload.
//! The server accepts connections on a loopback-or-LAN socket and serves
//! each connection from its own thread (requests on one connection are
//! handled in order; concurrency comes from multiple connections, as in
//! real remoting where each client proxy holds its own connection).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parc_serial::BinaryFormatter;
use parc_sync::Mutex;

use crate::channel::{ChannelProvider, ClientChannel};
use crate::dispatcher::dispatch;
use crate::error::RemotingError;
use crate::message::{CallMessage, ReturnMessage};
use crate::uri::{ObjectUri, Scheme};
use crate::wellknown::ObjectTable;

/// Upper bound on a single frame; larger frames indicate corruption.
pub const MAX_FRAME: usize = 64 << 20;

/// Default socket read timeout.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Writes one length-prefixed frame.
pub(crate) fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
pub(crate) fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Server half of the TCP channel.
pub struct TcpServerChannel {
    addr: SocketAddr,
    objects: ObjectTable,
    stop: Arc<AtomicBool>,
}

impl TcpServerChannel {
    /// Binds and starts accepting. Use `"127.0.0.1:0"` to let the OS pick a
    /// port, then read it back with [`TcpServerChannel::local_addr`].
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(addr: &str) -> Result<TcpServerChannel, RemotingError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let objects = ObjectTable::new();
        let stop = Arc::new(AtomicBool::new(false));
        let accept_objects = objects.clone();
        let accept_stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name(format!("tcp-accept-{local}"))
            .spawn(move || accept_loop(listener, accept_objects, accept_stop))
            .expect("spawning tcp accept thread");
        Ok(TcpServerChannel { addr: local, objects, stop })
    }

    /// The bound address (host:port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The published-object table served on this socket.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// A `tcp://` URI for an object on this server.
    pub fn uri_for(&self, object: &str) -> String {
        format!("tcp://{}/{}", self.addr, object)
    }
}

impl Drop for TcpServerChannel {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so the accept loop observes the stop flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl std::fmt::Debug for TcpServerChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServerChannel").field("addr", &self.addr).finish()
    }
}

fn accept_loop(listener: TcpListener, objects: ObjectTable, stop: Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let objects = objects.clone();
        let stop = Arc::clone(&stop);
        let _ = std::thread::Builder::new()
            .name("tcp-conn".into())
            .spawn(move || serve_connection(stream, objects, stop));
    }
}

fn serve_connection(mut stream: TcpStream, objects: ObjectTable, stop: Arc<AtomicBool>) {
    let formatter = BinaryFormatter::new();
    let _ = stream.set_nodelay(true);
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) | Err(_) => return,
        };
        // A stopped server closes its connections instead of serving new
        // requests (clients observe EOF -> transport error).
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let reply = match CallMessage::decode(&formatter, &frame) {
            Ok(call) => dispatch(&objects, &call),
            Err(e) => Some(ReturnMessage::fault(0, e.to_string())),
        };
        if let Some(reply) = reply {
            let _span = parc_obs::Span::enter(parc_obs::kinds::REPLY);
            let Ok(bytes) = reply.encode(&formatter) else { return };
            if write_frame(&mut stream, &bytes).is_err() {
                return;
            }
        }
    }
}

/// Client half of the TCP channel: one connection, calls serialized on it.
pub struct TcpClientChannel {
    stream: Mutex<TcpStream>,
    formatter: BinaryFormatter,
}

impl TcpClientChannel {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<TcpClientChannel, RemotingError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(DEFAULT_TIMEOUT))?;
        Ok(TcpClientChannel { stream: Mutex::new(stream), formatter: BinaryFormatter::new() })
    }
}

impl ClientChannel for TcpClientChannel {
    fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
        let bytes = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::SERIALIZE);
            msg.encode(&self.formatter)?
        };
        let mut stream = self.stream.lock();
        {
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_SEND);
            write_frame(&mut *stream, &bytes)?;
        }
        let reply = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_RECV);
            read_frame(&mut *stream)?
                .ok_or(RemotingError::Transport { detail: "server closed connection".into() })?
        };
        let _span = parc_obs::Span::enter(parc_obs::kinds::DESERIALIZE);
        Ok(ReturnMessage::decode(&self.formatter, &reply)?)
    }

    fn post(&self, msg: &CallMessage) -> Result<(), RemotingError> {
        let bytes = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::SERIALIZE);
            msg.encode(&self.formatter)?
        };
        let mut stream = self.stream.lock();
        let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_SEND);
        write_frame(&mut *stream, &bytes)?;
        Ok(())
    }

    fn scheme(&self) -> &'static str {
        "tcp"
    }
}

impl std::fmt::Debug for TcpClientChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClientChannel").finish_non_exhaustive()
    }
}

/// Channel provider resolving `tcp://host:port/Object` URIs, with one
/// cached connection per authority.
#[derive(Default)]
pub struct TcpChannelProvider {
    cache: Mutex<std::collections::HashMap<String, Arc<TcpClientChannel>>>,
}

impl TcpChannelProvider {
    /// Creates a provider with an empty connection cache.
    pub fn new() -> TcpChannelProvider {
        TcpChannelProvider::default()
    }
}

impl ChannelProvider for TcpChannelProvider {
    fn open(&self, uri: &ObjectUri) -> Result<Arc<dyn ClientChannel>, RemotingError> {
        if uri.scheme() != Scheme::Tcp {
            return Err(RemotingError::BadUri {
                uri: uri.to_string(),
                detail: "tcp provider only serves tcp:// uris".into(),
            });
        }
        let mut cache = self.cache.lock();
        if let Some(chan) = cache.get(uri.authority()) {
            return Ok(Arc::clone(chan) as Arc<dyn ClientChannel>);
        }
        let chan = Arc::new(TcpClientChannel::connect(uri.authority())?);
        cache.insert(uri.authority().to_string(), Arc::clone(&chan));
        Ok(chan)
    }
}

impl std::fmt::Debug for TcpChannelProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpChannelProvider")
            .field("cached", &self.cache.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activator::Activator;
    use crate::dispatcher::FnInvokable;
    use parc_serial::Value;

    fn start_echo_server() -> TcpServerChannel {
        let server = TcpServerChannel::bind("127.0.0.1:0").unwrap();
        server.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
                "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
                "len" => Ok(Value::I32(
                    args.first().and_then(Value::as_i32_array).map_or(-1, |a| a.len() as i32),
                )),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Echo".into(),
                    method: method.into(),
                }),
            })),
        );
        server
    }

    #[test]
    fn roundtrip_over_real_sockets() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
        assert_eq!(
            proxy.call("echo", vec![Value::Str("over tcp".into())]).unwrap(),
            Value::Str("over tcp".into())
        );
    }

    #[test]
    fn large_payload_roundtrips() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
        let big: Vec<i32> = (0..200_000).collect();
        assert_eq!(
            proxy.call("len", vec![Value::I32Array(big)]).unwrap(),
            Value::I32(200_000)
        );
    }

    #[test]
    fn concurrent_clients_each_with_own_connection() {
        let server = start_echo_server();
        let uri = server.uri_for("Echo");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let uri = uri.clone();
                scope.spawn(move || {
                    // Fresh provider per thread = fresh connection.
                    let provider = TcpChannelProvider::new();
                    let proxy = Activator::get_object(&provider, &uri).unwrap();
                    for i in 0..20 {
                        let v = proxy.call("echo", vec![Value::I32(t * 100 + i)]).unwrap();
                        assert_eq!(v, Value::I32(t * 100 + i));
                    }
                });
            }
        });
    }

    #[test]
    fn provider_caches_connections_per_authority() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let uri_a: ObjectUri = server.uri_for("Echo").parse().unwrap();
        let a = provider.open(&uri_a).unwrap();
        let b = provider.open(&uri_a).unwrap();
        assert!(Arc::ptr_eq(
            &(a as Arc<dyn ClientChannel>),
            &(b as Arc<dyn ClientChannel>)
        ));
    }

    #[test]
    fn fault_propagates_over_tcp() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
        assert!(matches!(
            proxy.call("missing", vec![]),
            Err(RemotingError::ServerFault { .. })
        ));
    }

    #[test]
    fn connecting_to_dead_port_fails() {
        // Bind and immediately drop to obtain a (very likely) dead port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(TcpClientChannel::connect(&addr.to_string()).is_err());
    }

    #[test]
    fn posts_are_fire_and_forget() {
        let server = start_echo_server();
        let provider = TcpChannelProvider::new();
        let proxy = Activator::get_object(&provider, &server.uri_for("Echo")).unwrap();
        // Posting to a missing method must not error locally nor poison the
        // connection for the next call.
        proxy.post("missing", vec![]).unwrap();
        assert_eq!(proxy.call("echo", vec![Value::I32(1)]).unwrap(), Value::I32(1));
    }

    #[test]
    fn frame_codec_roundtrips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
