//! Forwarding entries for migrated objects.
//!
//! When an object migrates, its old registration is replaced by a
//! [`Forwarder`]: an [`Invokable`] that relays every invocation to the
//! object's new home as a *two-way* call and tags each reply with the new
//! location. Two-way relaying is what preserves per-object FIFO across
//! the move — a forwarded call occupies the source mailbox slot until the
//! destination has executed it, so source-side arrival order equals
//! destination-side execution order regardless of transport.
//!
//! The new location piggybacks on the reply as a `__moved` envelope
//! ([`moved_value`]), which [`crate::dispatcher::dispatch`] unwraps into
//! the [`ReturnMessage::moved_to`](crate::message::ReturnMessage) field —
//! the `Moved` reply variant. Clients that understand it repoint their
//! channel after the next synchronous call; clients that don't keep
//! working through the forwarder indefinitely.

use parc_serial::{StructValue, Value};

use crate::channel::RemoteObject;
use crate::dispatcher::Invokable;
use crate::error::RemotingError;

/// Struct name of the reply envelope a [`Forwarder`] wraps results in.
pub const MOVED_STRUCT: &str = "__moved";

/// Wraps a result value in a `__moved` envelope carrying the object's new
/// URI. The envelope survives any [`Invokable`] boundary (it is a plain
/// [`Value`]), so forwarders compose with batching and chaos wrappers.
pub fn moved_value(uri: &str, value: Value) -> Value {
    Value::Struct(
        StructValue::new(MOVED_STRUCT)
            .with_field("uri", Value::Str(uri.to_string()))
            .with_field("value", value),
    )
}

/// Splits a possibly-`__moved` value into `(inner value, new location)`.
/// Non-envelope values pass through untouched with `None`.
pub fn split_moved(value: Value) -> (Value, Option<String>) {
    match value {
        Value::Struct(s) if s.name() == MOVED_STRUCT => {
            let uri = s.field("uri").and_then(Value::as_str).map(str::to_string);
            let inner = s.field("value").cloned().unwrap_or(Value::Null);
            match uri {
                Some(uri) => (inner, Some(uri)),
                // A malformed envelope (no uri) degrades to pass-through
                // of the whole struct rather than silently dropping data.
                None => (Value::Struct(s), None),
            }
        }
        other => (other, None),
    }
}

/// The forwarding entry installed under a migrated object's old name.
///
/// Every method — including one-way posts, which the dispatch layer
/// invokes without a reply path — is relayed as a two-way call so the
/// relay blocks until the destination executed it (the FIFO argument
/// above). Results come back wrapped in a `__moved` envelope.
pub struct Forwarder {
    target: RemoteObject,
    new_uri: String,
}

impl Forwarder {
    /// Creates a forwarder relaying to `target` (the object's new
    /// registration) and advertising `new_uri` as its home.
    pub fn new(target: RemoteObject, new_uri: impl Into<String>) -> Forwarder {
        Forwarder { target, new_uri: new_uri.into() }
    }

    /// The URI this forwarder advertises.
    pub fn new_uri(&self) -> &str {
        &self.new_uri
    }
}

impl Invokable for Forwarder {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, RemotingError> {
        parc_obs::counter(parc_obs::kinds::DIRECTORY_FORWARD).incr();
        let value = self.target.call(method, args.to_vec())?;
        Ok(moved_value(&self.new_uri, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrips() {
        let wrapped = moved_value("inproc://node1/io-1-3", Value::I32(7));
        let (inner, moved) = split_moved(wrapped);
        assert_eq!(inner, Value::I32(7));
        assert_eq!(moved.as_deref(), Some("inproc://node1/io-1-3"));
    }

    #[test]
    fn plain_values_pass_through() {
        let (inner, moved) = split_moved(Value::Str("x".into()));
        assert_eq!(inner, Value::Str("x".into()));
        assert_eq!(moved, None);
    }

    #[test]
    fn foreign_structs_pass_through() {
        let s = Value::Struct(StructValue::new("Point").with_field("x", Value::I32(1)));
        let (inner, moved) = split_moved(s.clone());
        assert_eq!(inner, s);
        assert_eq!(moved, None);
    }

    #[test]
    fn malformed_envelope_is_not_swallowed() {
        let s = Value::Struct(StructValue::new(MOVED_STRUCT).with_field("value", Value::I32(1)));
        let (inner, moved) = split_moved(s.clone());
        assert_eq!(inner, s);
        assert_eq!(moved, None);
    }

    #[test]
    fn null_inner_value_roundtrips() {
        let (inner, moved) = split_moved(moved_value("uri", Value::Null));
        assert_eq!(inner, Value::Null);
        assert_eq!(moved.as_deref(), Some("uri"));
    }
}
