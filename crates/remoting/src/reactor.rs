//! The readiness-driven reactor transport: every TCP connection —
//! client or server side — multiplexed onto a small fixed pool of
//! reactor threads, with **zero per-connection threads**.
//!
//! The thread-per-connection transport ([`crate::tcp`]) spends one
//! blocking reader thread per client socket and one per accepted server
//! socket. That is fine for tens of peers and fatal for thousands: 10k
//! connections means 10k parked threads of stack and scheduler load
//! before a single byte moves. The reactor inverts the shape, the way
//! `java.nio` selectors do over `java.io` streams (the in-tree
//! `parc-rmi::nio` module is the buffer-discipline exemplar): sockets
//! are nonblocking, a reactor thread sweeps the connections it owns for
//! readable bytes and drainable write queues, and *completed frames* —
//! reassembled incrementally by [`crate::frame::FrameAssembler`] across
//! arbitrary partial-read boundaries — feed the exact same dispatch
//! backends the blocking readers feed today ([`DispatchMode::Mailbox`]
//! per-object mailboxes by default, the fixed-pool
//! [`DispatchMode::Inline`] baseline on request). Resident threads are
//! O(reactor pool + dispatch workers), never O(connections).
//!
//! **Readiness model.** Hermetic and std-only means no epoll/kqueue
//! crates; readiness is level-triggered by construction: a sweep simply
//! *tries* every connection (nonblocking read, nonblocking write of any
//! queued bytes) and treats `WouldBlock` as "not ready". A sweep that
//! makes progress anywhere immediately runs again; an idle reactor
//! spins briefly, then parks on a condvar with an adaptive backoff
//! (doubling from [`MIN_PARK`] to [`MAX_PARK`]) so a quiet process
//! costs ~a few wakeups per millisecond, not a busy core. Writers never
//! wait for the reactor: a worker with a reply (or a caller with a
//! request) attempts the socket write directly under the connection's
//! outbound lock and only queues the remainder — the reactor is woken
//! to drain leftovers, not to perform every write.
//!
//! **Backpressure.** A reactor that reads faster than the mailbox
//! workers drain would grow the dispatch backlog without bound. Each
//! server connection therefore consults its scheduler's
//! [`DispatchDepth`] before reading: past [`BACKPRESSURE_HIGH_WATER`]
//! pending jobs the sweep stops *reading* that server's connections
//! (TCP's own flow control then pushes back on clients) while still
//! draining writes, and resumes as the workers catch up.
//!
//! The thread-per-connection transports stay available as explicit
//! baselines behind `PARC_TRANSPORT` (see [`crate::tcp::Transport`]);
//! `PARC_REACTOR_THREADS` overrides the pool size (default
//! `min(cores, 4)`).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parc_serial::BinaryFormatter;
use parc_sync::{Condvar, Mutex};

use crate::bufpool;
use crate::channel::{ClientChannel, LinkFeedback};
use crate::dispatcher::dispatch;
use crate::error::RemotingError;
use crate::frame::{self, FrameAssembler, FrameHeader, TraceExt, FLAG_DEPTH, FLAG_ONEWAY};
use crate::mailbox::DispatchDepth;
use crate::message::{CallMessage, ReturnMessage};
use crate::retry::call_timeout;
use crate::tcp::{dispatch_call, DispatchMode, MuxShared, ServerDispatch, Slot};
use crate::wellknown::ObjectTable;

/// Environment variable overriding the reactor pool size.
pub const REACTOR_THREADS_ENV: &str = "PARC_REACTOR_THREADS";

/// Ceiling on the default pool size: reactor threads multiplex waiting,
/// not CPU work, so a handful covers even wide machines.
pub const DEFAULT_MAX_THREADS: usize = 4;

/// Pending dispatch jobs above which a sweep stops reading server
/// connections (writes still drain); TCP flow control then backpressures
/// the clients until the mailbox workers catch up.
pub const BACKPRESSURE_HIGH_WATER: usize = 4096;

/// Sweeps an idle reactor runs with only a `yield_now` between them
/// before it starts parking.
const SPIN_PASSES: u32 = 3;

/// First (shortest) park duration of the adaptive backoff.
const MIN_PARK: Duration = Duration::from_micros(50);

/// Longest park duration: bounds worst-case latency for a frame that
/// arrives while every producer is silent.
const MAX_PARK: Duration = Duration::from_millis(2);

/// Per-connection scratch read size per `read` call.
const SCRATCH: usize = 64 * 1024;

/// Consecutive reads one connection gets per sweep before the reactor
/// moves on — a bulk sender cannot starve its siblings.
const READ_BUDGET: usize = 8;

/// The configured pool size: `PARC_REACTOR_THREADS` when set and
/// positive, otherwise `min(available_parallelism, 4)`.
pub fn reactor_threads_from_env() -> usize {
    std::env::var(REACTOR_THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(1, |n| n.get())
                .clamp(1, DEFAULT_MAX_THREADS)
        })
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

/// What a sweep learned from one connection.
enum Io {
    Progress,
    Idle,
    Closed(String),
}

/// Server-side frame handling state, shared by every connection of one
/// [`ReactorServerChannel`].
struct ServerHandler {
    objects: ObjectTable,
    dispatch: ServerDispatch,
    /// Live backlog of the mailbox scheduler (`None` under inline).
    depth: Option<DispatchDepth>,
    /// The owning server's stop flag; set on drop, closing every
    /// connection at the next sweep.
    stop: Arc<AtomicBool>,
    formatter: BinaryFormatter,
}

/// Which protocol role a registered connection plays.
enum Handler {
    Server(ServerHandler),
    /// Client side: completed frames are replies, routed to parked
    /// callers by correlation ID through the same [`MuxShared`] the
    /// thread-per-connection mux client uses. Depth reports piggybacked
    /// on replies land in the channel-level [`LinkFeedback`].
    Client {
        shared: Arc<MuxShared>,
        feedback: Arc<LinkFeedback>,
    },
}

/// Outbound bytes not yet accepted by the socket, in frame order.
struct OutBuf {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of `queue.front()` already written.
    head_off: usize,
}

/// One nonblocking connection registered with the reactor.
pub(crate) struct ReactorConn {
    stream: TcpStream,
    /// Index of the reactor thread that sweeps this connection.
    owner: usize,
    assembler: Mutex<FrameAssembler>,
    out: Mutex<OutBuf>,
    closed: AtomicBool,
    handler: Handler,
}

impl ReactorConn {
    fn new(stream: TcpStream, owner: usize, handler: Handler) -> Arc<ReactorConn> {
        Arc::new(ReactorConn {
            stream,
            owner,
            assembler: Mutex::new(FrameAssembler::new()),
            out: Mutex::new(OutBuf { queue: VecDeque::new(), head_off: 0 }),
            closed: AtomicBool::new(false),
            handler,
        })
    }

    fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Marks the connection dead, failing client callers immediately;
    /// the owning sweep removes it (and closes the socket) next pass.
    fn fail(&self, detail: &str) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Handler::Client { shared, .. } = &self.handler {
            shared.poison(detail);
        }
    }

    /// Actively closes the socket as the sweep drops the connection, so
    /// the peer observes EOF now rather than at the last `Arc` drop.
    fn finalize(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// True when the dispatch backlog says "stop reading for now".
    fn saturated(&self) -> bool {
        match &self.handler {
            Handler::Server(h) => {
                h.depth.as_ref().is_some_and(|d| d.saturated(BACKPRESSURE_HIGH_WATER))
            }
            Handler::Client { .. } => false,
        }
    }

    /// Serializes one frame onto the wire, writing directly when the
    /// outbound queue is empty and queueing whatever the socket refused.
    /// Never blocks. Frame integrity and order are guaranteed by the
    /// outbound lock held across the attempt.
    pub(crate) fn send_frame(
        &self,
        corr_id: u64,
        flags: u8,
        trace: Option<TraceExt>,
        payload: &[u8],
    ) -> std::io::Result<()> {
        if self.is_closed() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "reactor connection is closed",
            ));
        }
        let (head, head_len) = frame::traced_head(corr_id, flags, trace, payload.len());
        let mut queued = false;
        {
            let mut out = self.out.lock();
            if out.queue.is_empty() {
                // Fast path: try the socket right now.
                let mut done = 0usize;
                let total = head_len + payload.len();
                loop {
                    let slices = [
                        std::io::IoSlice::new(&head[done.min(head_len)..head_len]),
                        std::io::IoSlice::new(&payload[done.saturating_sub(head_len)..]),
                    ];
                    match (&self.stream).write_vectored(&slices) {
                        Ok(0) => {
                            drop(out);
                            self.fail("socket refused all bytes");
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::WriteZero,
                                "failed to write frame",
                            ));
                        }
                        Ok(n) => {
                            done += n;
                            if done == total {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            // Queue the unwritten tail; the reactor
                            // finishes the job on writability.
                            let mut rest =
                                Vec::with_capacity(total - done);
                            if done < head_len {
                                rest.extend_from_slice(&head[done..head_len]);
                                rest.extend_from_slice(payload);
                            } else {
                                rest.extend_from_slice(&payload[done - head_len..]);
                            }
                            out.queue.push_back(rest);
                            queued = true;
                            break;
                        }
                        Err(e) => {
                            drop(out);
                            self.fail(&format!("tcp write failed: {e}"));
                            return Err(e);
                        }
                    }
                }
            } else {
                // Slow path: frames already queued ahead of us — append
                // in order and let the reactor drain.
                let mut whole = Vec::with_capacity(head_len + payload.len());
                whole.extend_from_slice(&head[..head_len]);
                whole.extend_from_slice(payload);
                out.queue.push_back(whole);
                queued = true;
            }
        }
        if queued {
            global().wake(self.owner);
        }
        Ok(())
    }

    /// Drains queued outbound bytes until the socket pushes back.
    fn flush_out(&self) -> Io {
        let mut out = self.out.lock();
        let mut progress = false;
        while let Some(front) = out.queue.front() {
            let front_len = front.len();
            match (&self.stream).write(&front[out.head_off..]) {
                Ok(0) => return Io::Closed("socket refused all bytes".into()),
                Ok(n) => {
                    progress = true;
                    out.head_off += n;
                    if out.head_off == front_len {
                        out.queue.pop_front();
                        out.head_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Io::Closed(format!("tcp write failed: {e}")),
            }
        }
        if progress {
            Io::Progress
        } else {
            Io::Idle
        }
    }

    /// Reads whatever the socket has ready (bounded by [`READ_BUDGET`])
    /// and dispatches every frame the bytes complete.
    fn read_cycle(self: &Arc<ReactorConn>, scratch: &mut [u8]) -> Io {
        let mut assembler = self.assembler.lock();
        let mut progress = false;
        for _ in 0..READ_BUDGET {
            match (&self.stream).read(scratch) {
                Ok(0) => {
                    let detail = if assembler.mid_frame() {
                        "connection closed mid-frame"
                    } else {
                        "peer closed connection"
                    };
                    return Io::Closed(detail.into());
                }
                Ok(n) => {
                    progress = true;
                    let fed = assembler
                        .feed(&scratch[..n], &mut |header, payload| {
                            self.on_frame(header, payload);
                        });
                    if let Err(e) = fed {
                        return Io::Closed(format!("bad frame: {e}"));
                    }
                    if n < scratch.len() {
                        break; // drained the socket's ready bytes
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => return Io::Closed(format!("tcp read failed: {e}")),
            }
        }
        if progress {
            Io::Progress
        } else {
            Io::Idle
        }
    }

    /// One complete frame arrived: route it per the connection's role.
    fn on_frame(self: &Arc<ReactorConn>, header: FrameHeader, payload: &[u8]) {
        if parc_obs::is_enabled() {
            parc_obs::counter(parc_obs::kinds::REACTOR_FRAMES).incr();
        }
        match &self.handler {
            Handler::Client { shared, feedback } => {
                // Peel the server's backlog report (if any) off the reply
                // before the caller sees the payload.
                let body = match frame::split_depth_ext(&header, payload) {
                    Ok((Some(ext), rest)) => {
                        feedback.record_depth(ext.pending as usize, ext.busiest as usize);
                        rest
                    }
                    Ok((None, rest)) => rest,
                    Err(_) => {
                        self.fail("malformed depth extension");
                        return;
                    }
                };
                // An id missing from the table is a reply that raced a
                // caller's timeout — dropped, and the stream stays healthy.
                if let Some(slot) = shared.pending.lock().remove(&header.corr_id) {
                    // Copy out of the assembler's buffer: the slot's
                    // owner outlives this sweep. Pool-recycled, and
                    // checked back in by the caller after decode.
                    let mut buf =
                        bufpool::global().checkout_with_capacity(body.len());
                    buf.extend_from_slice(body);
                    slot.complete(Ok(buf));
                }
            }
            Handler::Server(h) => self.serve_frame(h, header, payload),
        }
    }

    /// Server role: decode and dispatch exactly like the blocking
    /// reader threads do — mailbox mode enqueues and returns, inline
    /// mode runs one-ways right here (the baseline's own hazard) and
    /// two-ways on the shared pool.
    fn serve_frame(self: &Arc<ReactorConn>, h: &ServerHandler, header: FrameHeader, payload: &[u8]) {
        // Peel the optional trace-context extension off the payload and
        // install the remote caller as the parent of whatever spans the
        // dispatch opens (same contract as the blocking reader threads).
        let (trace_ctx, body) = match frame::split_trace_ext(&header, payload) {
            Ok((ext, rest)) => (ext.map(TraceExt::to_context), rest),
            Err(e) => {
                if !header.oneway() {
                    send_reply(self, header.corr_id, &ReturnMessage::fault(0, e.to_string()));
                }
                return;
            }
        };
        let call = match CallMessage::decode(&h.formatter, body) {
            Ok(call) => call,
            Err(e) => {
                if !header.oneway() {
                    send_reply(self, header.corr_id, &ReturnMessage::fault(0, e.to_string()));
                }
                return;
            }
        };
        match &h.dispatch {
            ServerDispatch::Mailbox(sched) => {
                let object = call.object.clone();
                if header.oneway() {
                    let objects = h.objects.clone();
                    sched.enqueue(&object, move || {
                        let _trace = parc_obs::trace::with_remote_parent(trace_ctx);
                        let _ = dispatch(&objects, &call);
                    });
                } else {
                    let objects = h.objects.clone();
                    let conn = Arc::clone(self);
                    let corr_id = header.corr_id;
                    sched.enqueue(&object, move || {
                        let _trace = parc_obs::trace::with_remote_parent(trace_ctx);
                        let reply = dispatch_call(&objects, &call);
                        send_reply(&conn, corr_id, &reply);
                    });
                }
            }
            ServerDispatch::Inline(pool) => {
                if header.oneway() {
                    let _trace = parc_obs::trace::with_remote_parent(trace_ctx);
                    let _ = dispatch(&h.objects, &call);
                } else {
                    let objects = h.objects.clone();
                    let conn = Arc::clone(self);
                    let corr_id = header.corr_id;
                    pool.submit(move || {
                        let _trace = parc_obs::trace::with_remote_parent(trace_ctx);
                        let reply = dispatch_call(&objects, &call);
                        send_reply(&conn, corr_id, &reply);
                    });
                }
            }
        }
    }
}

/// Encodes `reply` and sends it as one frame on `conn` (nonblocking;
/// leftovers drain via the reactor). A failed send tears the connection
/// down — `send_frame` already poisons on error.
fn send_reply(conn: &Arc<ReactorConn>, corr_id: u64, reply: &ReturnMessage) {
    let formatter = BinaryFormatter::new();
    let _span = parc_obs::Span::enter(parc_obs::kinds::REPLY);
    // Mailbox-mode servers stamp their live backlog onto every reply
    // (sampled at write time, the freshest signal the client can get).
    // The ext bytes ride at the front of the frame body with FLAG_DEPTH
    // set; `send_frame` counts them in the length like any payload.
    let depth_ext = match &conn.handler {
        Handler::Server(h) => h.depth.as_ref().map(frame::DepthExt::capture),
        Handler::Client { .. } => None,
    };
    let mut buf = bufpool::global().checkout();
    let mut flags = 0;
    if let Some(ext) = depth_ext {
        buf.extend_from_slice(&ext.to_bytes());
        flags |= FLAG_DEPTH;
    }
    if reply.encode_into(&formatter, &mut buf).is_ok() {
        // Replies are never traced: the caller's own span covers the
        // round trip.
        let _ = conn.send_frame(corr_id, flags, None, &buf);
    }
    bufpool::global().checkin(buf);
}

// ---------------------------------------------------------------------------
// The reactor pool
// ---------------------------------------------------------------------------

/// A listening socket swept for acceptable connections.
struct ListenerEntry {
    listener: TcpListener,
    handler_proto: Arc<ServerHandlerProto>,
}

/// Everything needed to stamp out a [`ServerHandler`] per accepted
/// connection.
struct ServerHandlerProto {
    objects: ObjectTable,
    dispatch: ServerDispatch,
    depth: Option<DispatchDepth>,
    stop: Arc<AtomicBool>,
}

impl ServerHandlerProto {
    fn handler(&self) -> Handler {
        Handler::Server(ServerHandler {
            objects: self.objects.clone(),
            dispatch: self.dispatch.clone(),
            depth: self.depth.clone(),
            stop: Arc::clone(&self.stop),
            formatter: BinaryFormatter::new(),
        })
    }
}

enum Registered {
    Listener(ListenerEntry),
    Conn(Arc<ReactorConn>),
}

struct ThreadShared {
    inbox: Mutex<Vec<Registered>>,
    wake: Mutex<bool>,
    cv: Condvar,
}

struct ReactorShared {
    threads: Vec<ThreadShared>,
    next: AtomicUsize,
    conns: AtomicUsize,
}

/// The process-wide reactor pool. Threads are spawned once, on first
/// use, and live for the process — which is the point: the thread count
/// is a constant, not a function of connection count.
pub struct Reactor {
    shared: Arc<ReactorShared>,
}

static GLOBAL: OnceLock<Reactor> = OnceLock::new();

/// The process-global reactor ([`reactor_threads_from_env`] threads).
pub fn global() -> &'static Reactor {
    GLOBAL.get_or_init(|| Reactor::start(reactor_threads_from_env()))
}

impl Reactor {
    fn start(threads: usize) -> Reactor {
        let threads = threads.max(1);
        let shared = Arc::new(ReactorShared {
            threads: (0..threads)
                .map(|_| ThreadShared {
                    inbox: Mutex::new(Vec::new()),
                    wake: Mutex::new(false),
                    cv: Condvar::new(),
                })
                .collect(),
            next: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
        });
        for i in 0..threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("parc-reactor-{i}"))
                .spawn(move || sweep_loop(&shared, i))
                .expect("spawning reactor thread");
        }
        Reactor { shared }
    }

    /// Number of reactor threads in the pool.
    pub fn threads(&self) -> usize {
        self.shared.threads.len()
    }

    /// Live registered connections (all threads).
    pub fn connections(&self) -> usize {
        self.shared.conns.load(Ordering::SeqCst)
    }

    /// Picks the owning thread for a new registration (round-robin).
    fn assign(&self) -> usize {
        self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.threads.len()
    }

    fn submit(&self, owner: usize, item: Registered) {
        if matches!(item, Registered::Conn(_)) {
            self.shared.conns.fetch_add(1, Ordering::SeqCst);
            if parc_obs::is_enabled() {
                parc_obs::gauge(parc_obs::kinds::REACTOR_CONNS).adjust(1);
            }
        }
        self.shared.threads[owner].inbox.lock().push(item);
        self.wake(owner);
    }

    fn wake(&self, owner: usize) {
        let t = &self.shared.threads[owner];
        let mut flag = t.wake.lock();
        *flag = true;
        t.cv.notify_one();
    }

    /// Wakes every thread (server teardown: stop flags must be observed).
    pub(crate) fn wake_all(&self) {
        for i in 0..self.shared.threads.len() {
            self.wake(i);
        }
    }

    /// Registers a connected, nonblocking stream and returns its handle.
    fn register_conn(&self, stream: TcpStream, handler: Handler) -> Arc<ReactorConn> {
        let owner = self.assign();
        let conn = ReactorConn::new(stream, owner, handler);
        self.submit(owner, Registered::Conn(Arc::clone(&conn)));
        conn
    }

    fn register_listener(&self, entry: ListenerEntry) {
        let owner = self.assign();
        self.submit(owner, Registered::Listener(entry));
    }

    fn drop_conn(&self, conn: &ReactorConn) {
        conn.finalize();
        self.shared.conns.fetch_sub(1, Ordering::SeqCst);
        if parc_obs::is_enabled() {
            parc_obs::gauge(parc_obs::kinds::REACTOR_CONNS).adjust(-1);
        }
    }
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("threads", &self.threads())
            .field("connections", &self.connections())
            .finish()
    }
}

/// One reactor thread: absorb registrations, sweep, park when idle.
fn sweep_loop(shared: &Arc<ReactorShared>, me: usize) {
    let reactor = global();
    let mut items: Vec<Registered> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH];
    let mut idle_streak: u32 = 0;
    loop {
        {
            let mut inbox = shared.threads[me].inbox.lock();
            if !inbox.is_empty() {
                items.append(&mut inbox);
            }
        }
        let mut progress = false;
        items.retain(|item| match item {
            Registered::Listener(entry) => {
                if entry.handler_proto.stop.load(Ordering::SeqCst) {
                    return false; // dropping the entry closes the listener
                }
                loop {
                    match entry.listener.accept() {
                        Ok((stream, _)) => {
                            progress = true;
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            global().register_conn(stream, entry.handler_proto.handler());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
                true
            }
            Registered::Conn(conn) => {
                if conn.is_closed() {
                    reactor.drop_conn(conn);
                    return false;
                }
                if let Handler::Server(h) = &conn.handler {
                    if h.stop.load(Ordering::SeqCst) {
                        conn.fail("server stopped");
                        reactor.drop_conn(conn);
                        return false;
                    }
                }
                match conn.flush_out() {
                    Io::Progress => progress = true,
                    Io::Idle => {}
                    Io::Closed(detail) => {
                        conn.fail(&detail);
                        reactor.drop_conn(conn);
                        return false;
                    }
                }
                if !conn.saturated() {
                    match conn.read_cycle(&mut scratch) {
                        Io::Progress => progress = true,
                        Io::Idle => {}
                        Io::Closed(detail) => {
                            conn.fail(&detail);
                            reactor.drop_conn(conn);
                            return false;
                        }
                    }
                }
                true
            }
        });
        if progress {
            idle_streak = 0;
            continue;
        }
        idle_streak = idle_streak.saturating_add(1);
        if idle_streak <= SPIN_PASSES {
            std::thread::yield_now();
            continue;
        }
        // Adaptive backoff: park longer the longer nothing happens,
        // capped so a frame arriving into total silence still waits at
        // most MAX_PARK.
        let shift = (idle_streak - SPIN_PASSES).min(16);
        let park = MIN_PARK
            .saturating_mul(1u32 << shift.min(6))
            .min(MAX_PARK);
        let t = &shared.threads[me];
        let mut flag = t.wake.lock();
        if *flag {
            *flag = false;
            idle_streak = 0;
            continue;
        }
        if parc_obs::is_enabled() {
            parc_obs::counter(parc_obs::kinds::REACTOR_PARKS).incr();
        }
        t.cv.wait_for(&mut flag, park);
        *flag = false;
    }
}

// ---------------------------------------------------------------------------
// Server channel
// ---------------------------------------------------------------------------

/// Server half of the reactor transport: accepts and serves any number
/// of connections with **no** per-connection (or even per-server)
/// threads — the listener itself is swept by the reactor pool.
///
/// Dispatch semantics are identical to [`crate::tcp::TcpServerChannel`]:
/// per-object FIFO mailboxes by default, the inline/fixed-pool baseline
/// via [`DispatchMode::Inline`].
pub struct ReactorServerChannel {
    addr: SocketAddr,
    objects: ObjectTable,
    stop: Arc<AtomicBool>,
    scheduler: Option<Arc<crate::mailbox::MailboxScheduler>>,
}

impl ReactorServerChannel {
    /// Binds and registers the listener with the global reactor, using
    /// the environment-configured dispatch mode.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(addr: &str) -> Result<ReactorServerChannel, RemotingError> {
        ReactorServerChannel::bind_with_mode(addr, DispatchMode::from_env())
    }

    /// Binds with an explicit dispatch mode.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind_with_mode(
        addr: &str,
        mode: DispatchMode,
    ) -> Result<ReactorServerChannel, RemotingError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let objects = ObjectTable::new();
        let stop = Arc::new(AtomicBool::new(false));
        let dispatch = ServerDispatch::for_mode(mode);
        let scheduler = dispatch.scheduler();
        let depth = scheduler.as_ref().map(|s| s.depth_handle());
        global().register_listener(ListenerEntry {
            listener,
            handler_proto: Arc::new(ServerHandlerProto {
                objects: objects.clone(),
                dispatch,
                depth,
                stop: Arc::clone(&stop),
            }),
        });
        Ok(ReactorServerChannel { addr: local, objects, stop, scheduler })
    }

    /// The bound address (host:port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The published-object table served on this socket.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// A `tcp://` URI for an object on this server.
    pub fn uri_for(&self, object: &str) -> String {
        format!("tcp://{}/{}", self.addr, object)
    }

    /// Live backlog view of the mailbox scheduler (`None` under
    /// [`DispatchMode::Inline`]).
    pub fn dispatch_depth(&self) -> Option<DispatchDepth> {
        self.scheduler.as_ref().map(|s| s.depth_handle())
    }

    /// Scheduler counter snapshot (`None` under [`DispatchMode::Inline`]).
    pub fn dispatch_stats(&self) -> Option<crate::mailbox::DispatchStats> {
        self.scheduler.as_ref().map(|s| s.stats())
    }
}

impl Drop for ReactorServerChannel {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Every reactor thread must observe the flag: the listener and
        // the accepted connections may be owned by different sweeps.
        global().wake_all();
    }
}

impl std::fmt::Debug for ReactorServerChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorServerChannel").field("addr", &self.addr).finish()
    }
}

// ---------------------------------------------------------------------------
// Client channel
// ---------------------------------------------------------------------------

/// One live client connection: the socket handle plus the correlation
/// state callers park on.
struct ClientCore {
    conn: Arc<ReactorConn>,
    shared: Arc<MuxShared>,
    next_corr: AtomicU64,
    /// Channel-level feedback sink (survives revives): reply RTT plus
    /// the server's piggybacked backlog reports.
    feedback: Arc<LinkFeedback>,
}

impl ClientCore {
    fn connect(addr: &str, feedback: Arc<LinkFeedback>) -> Result<ClientCore, RemotingError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let shared = MuxShared::new();
        let conn = global().register_conn(
            stream,
            Handler::Client { shared: Arc::clone(&shared), feedback: Arc::clone(&feedback) },
        );
        Ok(ClientCore { conn, shared, next_corr: AtomicU64::new(1), feedback })
    }

    fn is_dead(&self) -> bool {
        self.shared.dead.lock().is_some()
    }

    fn check_alive(&self) -> Result<(), RemotingError> {
        if let Some(detail) = self.shared.dead.lock().clone() {
            return Err(RemotingError::Transport { detail });
        }
        Ok(())
    }

    /// Serializes and sends one frame (never blocking on the socket),
    /// returning the encoded payload size.
    fn send(
        &self,
        formatter: &BinaryFormatter,
        msg: &CallMessage,
        corr_id: u64,
        flags: u8,
    ) -> Result<usize, RemotingError> {
        let pool = bufpool::global();
        let mut buf = pool.checkout();
        let encoded = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::SERIALIZE);
            msg.encode_into(formatter, &mut buf)
        };
        if let Err(e) = encoded {
            pool.checkin(buf);
            return Err(e.into());
        }
        let sent = buf.len();
        let written = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_SEND);
            // Captured inside the send span so the remote dispatch hangs
            // off `channel.send` — the same shape the mux client emits.
            let trace = TraceExt::capture();
            self.conn.send_frame(corr_id, flags, trace, &buf)
        };
        pool.checkin(buf);
        written.map_err(RemotingError::from).map(|()| sent)
    }

    fn call(
        &self,
        formatter: &BinaryFormatter,
        msg: &CallMessage,
        timeout: Duration,
    ) -> Result<ReturnMessage, RemotingError> {
        let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_PIPELINE);
        self.check_alive()?;
        let corr_id = self.next_corr.fetch_add(1, Ordering::Relaxed);
        let slot = Slot::new();
        self.shared.pending.lock().insert(corr_id, Arc::clone(&slot));
        if parc_obs::is_enabled() {
            parc_obs::gauge(parc_obs::kinds::INFLIGHT).adjust(1);
        }
        let outcome = self.call_inner(formatter, msg, corr_id, &slot, timeout);
        self.shared.pending.lock().remove(&corr_id);
        if parc_obs::is_enabled() {
            parc_obs::gauge(parc_obs::kinds::INFLIGHT).adjust(-1);
        }
        outcome
    }

    fn call_inner(
        &self,
        formatter: &BinaryFormatter,
        msg: &CallMessage,
        corr_id: u64,
        slot: &Arc<Slot>,
        timeout: Duration,
    ) -> Result<ReturnMessage, RemotingError> {
        let started = Instant::now();
        self.send(formatter, msg, corr_id, 0)?;
        let payload = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_RECV);
            slot.wait(timeout)?
        };
        self.feedback.record_rtt(started.elapsed());
        let _span = parc_obs::Span::enter(parc_obs::kinds::DESERIALIZE);
        let reply = ReturnMessage::decode(formatter, &payload);
        bufpool::global().checkin(payload);
        Ok(reply?)
    }

    fn post(&self, formatter: &BinaryFormatter, msg: &CallMessage) -> Result<usize, RemotingError> {
        self.check_alive()?;
        let corr_id = self.next_corr.fetch_add(1, Ordering::Relaxed);
        self.send(formatter, msg, corr_id, FLAG_ONEWAY)
    }
}

impl Drop for ClientCore {
    fn drop(&mut self) {
        self.conn.fail("channel dropped");
        global().wake(self.conn.owner);
    }
}

/// Client half of the reactor transport: one multiplexed nonblocking
/// connection, **zero** dedicated threads. Any number of caller threads
/// pipeline calls; replies are demuxed by correlation ID exactly like
/// the mux client's, but by a shared reactor thread instead of a
/// per-socket reader.
///
/// A connection whose socket dies is poisoned (pending and future calls
/// fail fast) and revived in place by the next caller, mirroring
/// [`crate::tcp::TcpClientChannel`]'s recovery contract.
pub struct ReactorClientChannel {
    addr: String,
    timeout: Duration,
    formatter: BinaryFormatter,
    core: Mutex<Arc<ClientCore>>,
    feedback: Arc<LinkFeedback>,
}

impl ReactorClientChannel {
    /// Connects with the per-call deadline from
    /// [`crate::retry::call_timeout`].
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str) -> Result<ReactorClientChannel, RemotingError> {
        ReactorClientChannel::connect_with_timeout(addr, call_timeout())
    }

    /// Connects with an explicit per-call deadline (tests pin short
    /// deadlines without touching the process environment).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_with_timeout(
        addr: &str,
        timeout: Duration,
    ) -> Result<ReactorClientChannel, RemotingError> {
        let feedback = Arc::new(LinkFeedback::new());
        let core = Arc::new(ClientCore::connect(addr, Arc::clone(&feedback))?);
        Ok(ReactorClientChannel {
            addr: addr.to_string(),
            timeout,
            formatter: BinaryFormatter::new(),
            core: Mutex::new(core),
            feedback,
        })
    }

    /// The per-call reply deadline this channel applies.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Severs the live socket (test hook): the reactor observes the
    /// shutdown and poisons the connection exactly like a real network
    /// failure, so reconnect paths are deterministically testable.
    pub fn break_connection(&self) {
        let core = self.core.lock();
        let _ = core.conn.stream.shutdown(std::net::Shutdown::Both);
        global().wake(core.conn.owner);
    }

    /// The current core, revived first when a previous caller left it
    /// poisoned (nothing has been sent yet, so the retry is safe).
    fn live_core(&self) -> Result<Arc<ClientCore>, RemotingError> {
        let core = Arc::clone(&*self.core.lock());
        if core.is_dead() {
            return self.revive(&core);
        }
        Ok(core)
    }

    /// Replaces a poisoned core (unless a racing caller already did).
    fn revive(&self, stale: &Arc<ClientCore>) -> Result<Arc<ClientCore>, RemotingError> {
        let started = Instant::now();
        let mut guard = self.core.lock();
        if !Arc::ptr_eq(&*guard, stale) && !guard.is_dead() {
            return Ok(Arc::clone(&*guard));
        }
        let fresh = Arc::new(ClientCore::connect(&self.addr, Arc::clone(&self.feedback))?);
        *guard = Arc::clone(&fresh);
        drop(guard);
        parc_obs::counter(parc_obs::kinds::CONN_RECONNECTED).incr();
        parc_obs::histogram(parc_obs::kinds::RECOVERY_LATENCY)
            .record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        parc_obs::event(parc_obs::kinds::CONN_RECONNECTED, || {
            format!("addr={} transport=reactor elapsed_us={}", self.addr, started.elapsed().as_micros())
        });
        Ok(fresh)
    }
}

impl ClientChannel for ReactorClientChannel {
    fn call(&self, msg: &CallMessage) -> Result<ReturnMessage, RemotingError> {
        let core = self.live_core()?;
        let outcome = core.call(&self.formatter, msg, self.timeout);
        // In-flight failures are NOT resent (at-most-once for plain
        // calls) but the channel recovers for every later caller.
        if outcome.is_err() && core.is_dead() {
            let _ = self.revive(&core);
        }
        outcome
    }

    fn post(&self, msg: &CallMessage) -> Result<usize, RemotingError> {
        let core = self.live_core()?;
        match core.post(&self.formatter, msg) {
            // Fire-and-forget: resending after a reconnect is safe.
            Err(e) if core.is_dead() => match self.revive(&core) {
                Ok(fresh) => fresh.post(&self.formatter, msg),
                Err(_) => Err(e),
            },
            outcome => outcome,
        }
    }

    fn scheme(&self) -> &'static str {
        "tcp"
    }

    fn feedback(&self) -> Option<Arc<LinkFeedback>> {
        Some(Arc::clone(&self.feedback))
    }
}

impl std::fmt::Debug for ReactorClientChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorClientChannel")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RemoteObject;
    use crate::dispatcher::FnInvokable;
    use parc_serial::Value;

    fn start_echo_server() -> ReactorServerChannel {
        let server =
            ReactorServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox { workers: 4 })
                .unwrap();
        server.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
                "echo" => Ok(args.first().cloned().unwrap_or(Value::Null)),
                "len" => Ok(Value::I32(
                    args.first().and_then(Value::as_i32_array).map_or(-1, |a| a.len() as i32),
                )),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Echo".into(),
                    method: method.into(),
                }),
            })),
        );
        server
    }

    fn proxy_to(server: &ReactorServerChannel, object: &str) -> RemoteObject {
        let chan = ReactorClientChannel::connect(&server.local_addr().to_string()).unwrap();
        RemoteObject::new(Arc::new(chan) as Arc<dyn ClientChannel>, object)
    }

    #[test]
    fn roundtrip_over_reactor_sockets() {
        let server = start_echo_server();
        let proxy = proxy_to(&server, "Echo");
        for i in 0..20 {
            assert_eq!(proxy.call("echo", vec![Value::I32(i)]).unwrap(), Value::I32(i));
        }
    }

    #[test]
    fn large_payload_crosses_many_partial_reads() {
        // 800 KB payload: far beyond one scratch read AND beyond the
        // socket buffer, so both incremental reassembly and the
        // queued-write drain path are exercised.
        let server = start_echo_server();
        let proxy = proxy_to(&server, "Echo");
        let big: Vec<i32> = (0..200_000).collect();
        assert_eq!(
            proxy.call("len", vec![Value::I32Array(big)]).unwrap(),
            Value::I32(200_000)
        );
    }

    #[test]
    fn concurrent_callers_pipeline_one_reactor_connection() {
        let server = start_echo_server();
        let chan = Arc::new(
            ReactorClientChannel::connect(&server.local_addr().to_string()).unwrap(),
        );
        std::thread::scope(|scope| {
            for t in 0..4i32 {
                let chan = Arc::clone(&chan);
                scope.spawn(move || {
                    let proxy =
                        RemoteObject::new(chan as Arc<dyn ClientChannel>, "Echo");
                    for i in 0..25 {
                        let v = proxy.call("echo", vec![Value::I32(t * 100 + i)]).unwrap();
                        assert_eq!(v, Value::I32(t * 100 + i));
                    }
                });
            }
        });
    }

    #[test]
    fn posts_are_fire_and_forget_on_reactor() {
        let server = start_echo_server();
        let proxy = proxy_to(&server, "Echo");
        proxy.post("missing", vec![]).unwrap();
        assert_eq!(proxy.call("echo", vec![Value::I32(1)]).unwrap(), Value::I32(1));
    }

    #[test]
    fn dead_server_poisons_pending_and_future_calls() {
        let server = start_echo_server();
        let addr = server.local_addr().to_string();
        let chan =
            ReactorClientChannel::connect_with_timeout(&addr, Duration::from_secs(10)).unwrap();
        let proxy = RemoteObject::new(Arc::new(chan) as Arc<dyn ClientChannel>, "Echo");
        assert!(proxy.call("echo", vec![Value::I32(1)]).is_ok());
        drop(server);
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match proxy.call("echo", vec![Value::I32(2)]) {
                Err(RemotingError::Transport { .. }) | Err(RemotingError::Timeout { .. }) => break,
                Err(other) => panic!("unexpected error class: {other:?}"),
                Ok(_) => {
                    assert!(Instant::now() < deadline, "dead connection kept answering");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    #[test]
    fn severed_connection_revives_against_live_server() {
        let server = start_echo_server();
        let chan = Arc::new(
            ReactorClientChannel::connect(&server.local_addr().to_string()).unwrap(),
        );
        let proxy = RemoteObject::new(
            Arc::clone(&chan) as Arc<dyn ClientChannel>,
            "Echo",
        );
        assert!(proxy.call("echo", vec![Value::I32(1)]).is_ok());
        chan.break_connection();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match proxy.call("echo", vec![Value::I32(2)]) {
                Ok(v) => {
                    assert_eq!(v, Value::I32(2));
                    break;
                }
                Err(_) => {
                    assert!(Instant::now() < deadline, "channel never recovered");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }

    /// Reactor replies from a mailbox server carry the depth report and
    /// the channel surfaces it (plus RTT) through `feedback()`.
    #[test]
    fn reactor_replies_carry_depth_feedback() {
        let server = start_echo_server();
        let chan = Arc::new(
            ReactorClientChannel::connect(&server.local_addr().to_string()).unwrap(),
        );
        let feedback = chan.feedback().expect("reactor channel exposes feedback");
        let proxy = RemoteObject::new(Arc::clone(&chan) as Arc<dyn ClientChannel>, "Echo");
        assert_eq!(proxy.call("echo", vec![Value::I32(5)]).unwrap(), Value::I32(5));
        assert!(feedback.rtt().is_some(), "call recorded no RTT sample");
        assert!(feedback.depth().is_some(), "reactor reply carried no depth report");
    }

    #[test]
    fn reactor_pool_is_fixed_size() {
        let r = global();
        assert!(r.threads() >= 1);
        assert_eq!(r.threads(), global().threads(), "global reactor is a singleton");
    }
}
