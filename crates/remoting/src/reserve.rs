//! Multi-object reservations: the claim/release engine.
//!
//! PR 4's per-object mailboxes give serial-per-grain dispatch, but a
//! compound operation spanning several objects (a transfer between two
//! accounts, a cross-shard rebalance) still interleaves with other
//! clients between its calls. This module turns the mailbox layer's
//! one-in-flight guarantee into a mutual-exclusion primitive:
//!
//! * A client sends `__claim(claim_id)` to an object (through its normal
//!   mailbox). The [`ClaimGate`] wrapping the object registers the claim
//!   and publishes a private **alias object** named
//!   `__claim.{claim_id}.{object}`; the reply carries the alias name and
//!   *is* the grant acknowledgement — no polling, so chaos traces stay
//!   deterministic.
//! * While claimed, every *foreign* invocation of the object parks
//!   inside the gate — occupying the object's one-in-flight mailbox
//!   slot, exactly like `__migrate`'s quiesce — until the holder
//!   releases or its lease lapses. The holder's own calls flow through
//!   the alias, which the [`MailboxScheduler`](crate::mailbox) routes on
//!   a dedicated claim-plane lane so releases can never be starved by
//!   the very workers they would unblock.
//! * Every claim carries a lease ([`LeaseManager`], TTL from
//!   [`crate::lease::claim_ttl`]). Holder calls renew it; a holder that
//!   dies (client crash, node kill, dropped `Reservation`) simply stops
//!   renewing, the lease lapses, the alias is unregistered and the
//!   mailbox slot serves the next caller. No orphaned locks.
//! * `__claim` is **idempotent per claim id**: a retry whose original
//!   grant succeeded (reply lost to chaos) returns the same alias.
//!
//! Deadlock freedom is the *client's* obligation: acquire claims in
//! global canonical URI order (see `parc_core::txn`), which imposes a
//! total order on resources and makes wait cycles impossible.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parc_serial::Value;
use parc_sync::{Condvar, Mutex};

use crate::dispatcher::Invokable;
use crate::error::RemotingError;
use crate::lease::{self, LeaseManager};
use crate::wellknown::ObjectTable;

/// Control method that requests a claim: `__claim(claim_id) -> alias`.
pub const CLAIM_METHOD: &str = "__claim";
/// Control method that releases a claim. On an alias: `__release()`;
/// on the gate itself: `__release(claim_id)` (escape hatch when the
/// alias channel is gone). Returns `Bool(true)` if a claim was released.
pub const RELEASE_METHOD: &str = "__release";
/// Name prefix of claim alias objects. Object names cannot contain `/`
/// (the URI grammar rejects it), so aliases use a dotted namespace. The
/// mailbox scheduler dispatches any object with this prefix on its
/// dedicated claim-plane lane.
pub const CLAIM_PLANE_PREFIX: &str = "__claim.";

/// True when `object` is a claim alias (claim-plane traffic).
pub fn is_claim_plane(object: &str) -> bool {
    object.starts_with(CLAIM_PLANE_PREFIX)
}

/// The alias object name a grant publishes for `claim_id` on `object`.
pub fn claim_alias(claim_id: &str, object: &str) -> String {
    format!("{CLAIM_PLANE_PREFIX}{claim_id}.{object}")
}

/// Shortest park between re-checks while waiting on a claimed object.
const MIN_PARK: Duration = Duration::from_micros(200);
/// Longest park — bounds staleness against clock-edge races even though
/// releases notify the condvar directly.
const MAX_PARK: Duration = Duration::from_millis(25);

struct ClaimEntry {
    claim_id: String,
    alias: String,
}

/// Counter snapshot returned by [`ClaimTable::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClaimStats {
    /// Claims granted.
    pub acquired: u64,
    /// Claims reclaimed by lease expiry (holder died or stalled).
    pub aborted: u64,
    /// Claims released by their holder.
    pub released: u64,
    /// Claims currently held.
    pub active: usize,
}

/// One endpoint's claim bookkeeping: which objects are claimed, by which
/// claim id, under which lease. Shared by every [`ClaimGate`] on the
/// endpoint so expiry sweeps and release notifications cover all of them.
pub struct ClaimTable {
    claims: Mutex<HashMap<String, ClaimEntry>>,
    cv: Condvar,
    /// Leases keyed by *alias* name, so a sweep directly unregisters the
    /// lapsed alias objects from the endpoint's table.
    leases: LeaseManager,
    epoch: Instant,
    acquired: AtomicU64,
    aborted: AtomicU64,
    released: AtomicU64,
}

impl ClaimTable {
    /// A table with the configured claim TTL ([`lease::claim_ttl`]).
    pub fn new() -> ClaimTable {
        ClaimTable::with_ttl(lease::claim_ttl())
    }

    /// A table with an explicit claim TTL (tests use short ones).
    pub fn with_ttl(ttl: Duration) -> ClaimTable {
        ClaimTable {
            claims: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            leases: LeaseManager::new(ttl.as_nanos() as u64),
            epoch: Instant::now(),
            acquired: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            released: AtomicU64::new(0),
        }
    }

    /// The claim lease TTL.
    pub fn ttl(&self) -> Duration {
        Duration::from_nanos(self.leases.ttl_nanos())
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ClaimStats {
        ClaimStats {
            acquired: self.acquired.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            active: self.claims.lock().len(),
        }
    }

    /// Reclaims every claim whose lease lapsed: unregisters the alias,
    /// frees the object, wakes waiters. Called lazily under the claims
    /// lock from every acquire/wait — no background sweeper needed.
    fn reclaim_expired_locked(&self, claims: &mut HashMap<String, ClaimEntry>, table: &ObjectTable) {
        let lapsed = self.leases.sweep(table, self.now());
        if lapsed.is_empty() {
            return;
        }
        claims.retain(|_, e| !lapsed.contains(&e.alias));
        self.aborted.fetch_add(lapsed.len() as u64, Ordering::Relaxed);
        parc_obs::counter(parc_obs::kinds::CLAIM_ABORTED).add(lapsed.len() as u64);
        self.cv.notify_all();
    }

    /// Grants (or idempotently re-grants) a claim on `object`, blocking
    /// while a different claim holds it. On grant, publishes the alias
    /// session object in `table` and returns the alias name.
    pub fn acquire(
        self: &Arc<Self>,
        object: &str,
        claim_id: &str,
        table: &ObjectTable,
        inner: &Arc<dyn Invokable>,
    ) -> Result<String, RemotingError> {
        let started = Instant::now();
        let mut claims = self.claims.lock();
        loop {
            self.reclaim_expired_locked(&mut claims, table);
            match claims.get(object) {
                Some(e) if e.claim_id == claim_id => {
                    // A retried __claim whose grant already succeeded
                    // (the reply was lost): same alias, fresh lease.
                    let alias = e.alias.clone();
                    self.leases.renew(&alias, self.now());
                    return Ok(alias);
                }
                Some(e) => {
                    // Parked in the object's mailbox slot until the
                    // holder releases or its lease lapses.
                    let rem = self.leases.remaining(&e.alias, self.now()).unwrap_or(0);
                    let park = Duration::from_nanos(rem).clamp(MIN_PARK, MAX_PARK);
                    self.cv.wait_for(&mut claims, park);
                }
                None => {
                    let alias = claim_alias(claim_id, object);
                    claims.insert(
                        object.to_string(),
                        ClaimEntry { claim_id: claim_id.to_string(), alias: alias.clone() },
                    );
                    self.leases.grant(&alias, self.now());
                    table.register_singleton(
                        &alias,
                        Arc::new(ClaimSession {
                            object: object.to_string(),
                            claim_id: claim_id.to_string(),
                            alias: alias.clone(),
                            claims: Arc::clone(self),
                            table: table.clone(),
                            inner: Arc::clone(inner),
                            serial: Mutex::new(()),
                        }),
                    );
                    self.acquired.fetch_add(1, Ordering::Relaxed);
                    parc_obs::counter(parc_obs::kinds::CLAIM_ACQUIRED).incr();
                    parc_obs::histogram(parc_obs::kinds::CLAIM_WAIT)
                        .record(started.elapsed().as_nanos() as u64);
                    return Ok(alias);
                }
            }
        }
    }

    /// Releases `claim_id`'s claim on `object`, unregistering its alias.
    /// Returns `false` when no such claim is held (already released, or
    /// reclaimed by lease expiry) — releases are idempotent.
    pub fn release(&self, object: &str, claim_id: &str, table: &ObjectTable) -> bool {
        let mut claims = self.claims.lock();
        match claims.get(object) {
            Some(e) if e.claim_id == claim_id => {
                let alias = e.alias.clone();
                claims.remove(object);
                self.leases.cancel(&alias);
                table.unregister(&alias);
                self.released.fetch_add(1, Ordering::Relaxed);
                parc_obs::counter(parc_obs::kinds::CLAIM_RELEASED).incr();
                self.cv.notify_all();
                true
            }
            _ => false,
        }
    }

    /// Renews `claim_id`'s lease on `object`. Returns `false` when the
    /// claim is gone or its lease already lapsed — a lapsed claim is
    /// never resurrected, so no claim outlives its lease.
    fn renew(&self, object: &str, claim_id: &str) -> bool {
        let claims = self.claims.lock();
        match claims.get(object) {
            Some(e) if e.claim_id == claim_id => {
                let now = self.now();
                match self.leases.remaining(&e.alias, now) {
                    Some(rem) if rem > 0 => self.leases.renew(&e.alias, now),
                    _ => false,
                }
            }
            _ => false,
        }
    }

    /// Blocks until `object` is unclaimed. This runs inside the object's
    /// mailbox job, so the wait *is* the park: the one-in-flight slot
    /// stays occupied and every later invocation queues behind it in
    /// FIFO order.
    pub fn wait_unclaimed(&self, object: &str, table: &ObjectTable) {
        let mut claims = self.claims.lock();
        loop {
            self.reclaim_expired_locked(&mut claims, table);
            let Some(e) = claims.get(object) else { return };
            let rem = self.leases.remaining(&e.alias, self.now()).unwrap_or(0);
            let park = Duration::from_nanos(rem).clamp(MIN_PARK, MAX_PARK);
            self.cv.wait_for(&mut claims, park);
        }
    }
}

impl Default for ClaimTable {
    fn default() -> Self {
        ClaimTable::new()
    }
}

impl std::fmt::Debug for ClaimTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ClaimTable")
            .field("active", &stats.active)
            .field("acquired", &stats.acquired)
            .field("aborted", &stats.aborted)
            .field("released", &stats.released)
            .finish()
    }
}

/// Wraps a published object with the claim protocol. `__claim` grants
/// claims; any other method first parks until the object is unclaimed,
/// then forwards to the wrapped object. Registered in place of the bare
/// object (see [`register_claimable`] and `parc_core::factory`).
pub struct ClaimGate {
    object: String,
    table: ObjectTable,
    claims: Arc<ClaimTable>,
    inner: Arc<dyn Invokable>,
}

impl ClaimGate {
    /// Gates `inner`, registering claim aliases in `table`.
    pub fn new(
        object: impl Into<String>,
        table: ObjectTable,
        claims: Arc<ClaimTable>,
        inner: Arc<dyn Invokable>,
    ) -> ClaimGate {
        ClaimGate { object: object.into(), table, claims, inner }
    }

    /// The wrapped object.
    pub fn inner(&self) -> &Arc<dyn Invokable> {
        &self.inner
    }

    fn claim_id_arg<'a>(method: &str, args: &'a [Value]) -> Result<&'a str, RemotingError> {
        let id = args.first().and_then(Value::as_str).ok_or_else(|| {
            RemotingError::BadArguments {
                method: method.to_string(),
                detail: "expected a string claim id".to_string(),
            }
        })?;
        if id.is_empty() || id.contains('/') {
            return Err(RemotingError::BadArguments {
                method: method.to_string(),
                detail: format!("claim id {id:?} must be non-empty and slash-free"),
            });
        }
        Ok(id)
    }
}

impl Invokable for ClaimGate {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, RemotingError> {
        match method {
            CLAIM_METHOD => {
                let claim_id = ClaimGate::claim_id_arg(method, args)?;
                self.claims
                    .acquire(&self.object, claim_id, &self.table, &self.inner)
                    .map(Value::Str)
            }
            RELEASE_METHOD => {
                let claim_id = ClaimGate::claim_id_arg(method, args)?;
                Ok(Value::Bool(self.claims.release(&self.object, claim_id, &self.table)))
            }
            _ => {
                // Foreign call: park in the mailbox slot until unclaimed.
                self.claims.wait_unclaimed(&self.object, &self.table);
                self.inner.invoke(method, args)
            }
        }
    }
}

impl std::fmt::Debug for ClaimGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClaimGate").field("object", &self.object).finish()
    }
}

/// The per-claim alias object a grant publishes: the holder's private
/// channel to the claimed object. Serializes the holder's calls, renews
/// the lease on each one, and serves `__release`.
struct ClaimSession {
    object: String,
    claim_id: String,
    alias: String,
    claims: Arc<ClaimTable>,
    table: ObjectTable,
    inner: Arc<dyn Invokable>,
    /// The claim-plane lane is multi-threaded; this keeps the claimed
    /// object's one-at-a-time discipline for the holder's own calls.
    serial: Mutex<()>,
}

impl Invokable for ClaimSession {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, RemotingError> {
        if method == RELEASE_METHOD {
            let released = self.claims.release(&self.object, &self.claim_id, &self.table);
            return Ok(Value::Bool(released));
        }
        if method.starts_with("__") {
            // No nested claims, no migration through an alias: control
            // methods go to the gate, never the session.
            return Err(RemotingError::MethodNotFound {
                object: self.alias.clone(),
                method: method.to_string(),
            });
        }
        if !self.claims.renew(&self.object, &self.claim_id) {
            return Err(RemotingError::LeaseExpired { object: self.alias.clone() });
        }
        let _serial = self.serial.lock();
        self.inner.invoke(method, args)
    }
}

/// Registers `inner` behind a [`ClaimGate`] — the raw-remoting way to
/// make an object claimable (the SCOOPP runtime's factory does this for
/// every implementation object it creates).
pub fn register_claimable(
    table: &ObjectTable,
    name: &str,
    inner: Arc<dyn Invokable>,
    claims: &Arc<ClaimTable>,
) {
    let gate = ClaimGate::new(name, table.clone(), Arc::clone(claims), inner);
    table.register_singleton(name, Arc::new(gate));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::FnInvokable;
    use std::sync::atomic::AtomicUsize;

    fn counter_object(hits: Arc<AtomicUsize>) -> Arc<dyn Invokable> {
        Arc::new(FnInvokable(move |method: &str, _args: &[Value]| match method {
            "bump" => {
                hits.fetch_add(1, Ordering::SeqCst);
                Ok(Value::I64(hits.load(Ordering::SeqCst) as i64))
            }
            _ => Err(RemotingError::MethodNotFound {
                object: "counter".into(),
                method: method.into(),
            }),
        }))
    }

    fn gated(table: &ObjectTable, claims: &Arc<ClaimTable>, name: &str) -> Arc<AtomicUsize> {
        let hits = Arc::new(AtomicUsize::new(0));
        register_claimable(table, name, counter_object(Arc::clone(&hits)), claims);
        hits
    }

    #[test]
    fn alias_names_are_claim_plane() {
        let alias = claim_alias("c1", "acct");
        assert_eq!(alias, "__claim.c1.acct");
        assert!(is_claim_plane(&alias));
        assert!(!is_claim_plane("acct"));
        assert!(!is_claim_plane("__claimant"));
    }

    #[test]
    fn claim_grants_alias_and_serves_holder_calls() {
        let table = ObjectTable::new();
        let claims = Arc::new(ClaimTable::with_ttl(Duration::from_secs(5)));
        gated(&table, &claims, "acct");
        let gate = table.resolve("acct").unwrap();
        let alias = match gate.invoke(CLAIM_METHOD, &[Value::Str("c1".into())]).unwrap() {
            Value::Str(a) => a,
            other => panic!("expected alias, got {other:?}"),
        };
        assert!(table.contains(&alias));
        let session = table.resolve(&alias).unwrap();
        assert_eq!(session.invoke("bump", &[]).unwrap(), Value::I64(1));
        assert_eq!(session.invoke(RELEASE_METHOD, &[]).unwrap(), Value::Bool(true));
        assert!(!table.contains(&alias), "release unregisters the alias");
        assert_eq!(session.invoke(RELEASE_METHOD, &[]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn reclaim_is_idempotent_per_claim_id() {
        let table = ObjectTable::new();
        let claims = Arc::new(ClaimTable::with_ttl(Duration::from_secs(5)));
        gated(&table, &claims, "acct");
        let gate = table.resolve("acct").unwrap();
        let a1 = gate.invoke(CLAIM_METHOD, &[Value::Str("c1".into())]).unwrap();
        let a2 = gate.invoke(CLAIM_METHOD, &[Value::Str("c1".into())]).unwrap();
        assert_eq!(a1, a2, "retried __claim returns the original alias");
        assert_eq!(claims.stats().acquired, 1, "re-grant is not a second acquisition");
    }

    #[test]
    fn foreign_calls_park_until_release() {
        let table = ObjectTable::new();
        let claims = Arc::new(ClaimTable::with_ttl(Duration::from_secs(5)));
        gated(&table, &claims, "acct");
        let gate = table.resolve("acct").unwrap();
        let alias = gate.invoke(CLAIM_METHOD, &[Value::Str("c1".into())]).unwrap();
        let alias = match alias {
            Value::Str(a) => a,
            _ => unreachable!(),
        };
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
        let foreign = {
            let table = table.clone();
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let gate = table.resolve("acct").unwrap();
                gate.invoke("bump", &[]).unwrap();
                order.lock().push("foreign");
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        order.lock().push("release");
        let session = table.resolve(&alias).unwrap();
        session.invoke(RELEASE_METHOD, &[]).unwrap();
        foreign.join().unwrap();
        assert_eq!(*order.lock(), vec!["release", "foreign"]);
    }

    #[test]
    fn lapsed_lease_frees_the_object_and_kills_the_session() {
        let table = ObjectTable::new();
        let claims = Arc::new(ClaimTable::with_ttl(Duration::from_millis(40)));
        gated(&table, &claims, "acct");
        let gate = table.resolve("acct").unwrap();
        let alias = match gate.invoke(CLAIM_METHOD, &[Value::Str("dead".into())]).unwrap() {
            Value::Str(a) => a,
            _ => unreachable!(),
        };
        let session = table.resolve(&alias).unwrap();
        // The holder "dies": no renewals. A foreign call parks, then
        // proceeds once the lease lapses.
        let t0 = Instant::now();
        assert_eq!(gate.invoke("bump", &[]).unwrap(), Value::I64(1));
        assert!(t0.elapsed() >= Duration::from_millis(30), "foreign call skipped the lease");
        assert!(!table.contains(&alias), "lapsed alias is unregistered");
        // The stale session handle can no longer reach the object.
        assert!(matches!(
            session.invoke("bump", &[]),
            Err(RemotingError::LeaseExpired { .. })
        ));
        let stats = claims.stats();
        assert_eq!((stats.aborted, stats.active), (1, 0));
    }

    #[test]
    fn competing_claim_waits_for_release() {
        let table = ObjectTable::new();
        let claims = Arc::new(ClaimTable::with_ttl(Duration::from_secs(5)));
        gated(&table, &claims, "acct");
        let gate = table.resolve("acct").unwrap();
        let alias = match gate.invoke(CLAIM_METHOD, &[Value::Str("first".into())]).unwrap() {
            Value::Str(a) => a,
            _ => unreachable!(),
        };
        let waiter = {
            let table = table.clone();
            std::thread::spawn(move || {
                let gate = table.resolve("acct").unwrap();
                gate.invoke(CLAIM_METHOD, &[Value::Str("second".into())]).unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "second claim granted while the first held");
        table.resolve(&alias).unwrap().invoke(RELEASE_METHOD, &[]).unwrap();
        let granted = waiter.join().unwrap();
        assert_eq!(granted, Value::Str("__claim.second.acct".into()));
    }

    #[test]
    fn gate_release_by_claim_id_is_the_escape_hatch() {
        let table = ObjectTable::new();
        let claims = Arc::new(ClaimTable::with_ttl(Duration::from_secs(5)));
        gated(&table, &claims, "acct");
        let gate = table.resolve("acct").unwrap();
        gate.invoke(CLAIM_METHOD, &[Value::Str("c9".into())]).unwrap();
        assert_eq!(
            gate.invoke(RELEASE_METHOD, &[Value::Str("c9".into())]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(claims.stats().active, 0);
    }

    #[test]
    fn bad_claim_ids_are_rejected() {
        let table = ObjectTable::new();
        let claims = Arc::new(ClaimTable::with_ttl(Duration::from_secs(5)));
        gated(&table, &claims, "acct");
        let gate = table.resolve("acct").unwrap();
        for bad in [Value::I64(3), Value::Str("".into()), Value::Str("a/b".into())] {
            assert!(matches!(
                gate.invoke(CLAIM_METHOD, &[bad]),
                Err(RemotingError::BadArguments { .. })
            ));
        }
    }

    #[test]
    fn sessions_reject_control_methods() {
        let table = ObjectTable::new();
        let claims = Arc::new(ClaimTable::with_ttl(Duration::from_secs(5)));
        gated(&table, &claims, "acct");
        let gate = table.resolve("acct").unwrap();
        let alias = match gate.invoke(CLAIM_METHOD, &[Value::Str("c1".into())]).unwrap() {
            Value::Str(a) => a,
            _ => unreachable!(),
        };
        let session = table.resolve(&alias).unwrap();
        for method in [CLAIM_METHOD, "__migrate", "__batch"] {
            assert!(matches!(
                session.invoke(method, &[Value::Str("x".into())]),
                Err(RemotingError::MethodNotFound { .. })
            ));
        }
    }
}
