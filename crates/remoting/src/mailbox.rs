//! Per-object mailbox executors: the active-object dispatch discipline.
//!
//! Every published object gets one FIFO **mailbox**; transport reader
//! threads only decode a frame and enqueue the invocation, returning to
//! the socket (or queue) immediately. A fixed set of workers drains
//! mailboxes with work stealing. The scheduler guarantees:
//!
//! * **Per-object serialization** — at most one invocation of a given
//!   object is in flight at any moment, and invocations run in exactly
//!   the order they were enqueued (one-way posts, `__batch` flushes and
//!   two-way calls alike). This is the serial-per-grain semantics the
//!   ParC++ SO message loop provided (§3.2 of the paper).
//! * **Cross-object parallelism** — mailboxes of distinct objects drain
//!   on distinct workers concurrently; a slow method on one object never
//!   head-of-line-blocks another object, and never blocks the reader
//!   thread that feeds the scheduler.
//!
//! Scheduling is hashed-home + stealing: each mailbox has a home worker
//! (hash of the object name) whose run queue it is pushed onto when it
//! transitions from idle to scheduled; idle workers first drain their own
//! run queue front-to-back, then steal from the *back* of a sibling's
//! queue. A scheduled mailbox lives on exactly one run queue (or in the
//! hands of exactly one worker), which is what makes the one-in-flight
//! guarantee structural rather than lock-enforced. A worker gives a
//! mailbox up after [`BATCH_LIMIT`] consecutive jobs so one hot object
//! cannot starve its home sibling mailboxes.
//!
//! Observability: enqueue→run latency lands in the
//! `dispatch.mailbox_wait` histogram, queue depth and busy-worker gauges
//! plus a steal counter are registered under `dispatch.*` (see
//! [`parc_obs::kinds`]), and a cloneable [`DispatchDepth`] handle exposes
//! the live backlog to the object manager for placement/backpressure.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parc_sync::{Condvar, Mutex, RwLock};

/// Environment variable overriding the dispatch worker count.
pub const DISPATCH_WORKERS_ENV: &str = "PARC_DISPATCH_WORKERS";

/// Floor for the default worker count. `available_parallelism` is the
/// nominal default, but most invocations in this stack *wait* (IO
/// methods, sleeps, nested calls) rather than burn CPU, so on small
/// hosts a literal core count would serialize everything; four matches
/// the fixed pool the mailbox scheduler replaced.
pub const MIN_DEFAULT_WORKERS: usize = 4;

/// Consecutive jobs one worker drains from one mailbox before requeueing
/// it, so a hot object cannot starve the others parked behind it.
const BATCH_LIMIT: usize = 32;

/// Threads on the claim-plane lane. Two is enough: lane jobs (alias
/// calls, releases) are short, and the lane exists for isolation, not
/// throughput.
const CLAIM_LANE_THREADS: usize = 2;

/// The configured dispatch worker count: `PARC_DISPATCH_WORKERS` when set
/// and positive, otherwise `available_parallelism` floored at
/// [`MIN_DEFAULT_WORKERS`].
pub fn workers_from_env() -> usize {
    std::env::var(DISPATCH_WORKERS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(MIN_DEFAULT_WORKERS, |n| n.get().max(MIN_DEFAULT_WORKERS))
        })
}

struct Job {
    run: Box<dyn FnOnce() + Send + 'static>,
    // 0 unless obs recording was enabled at enqueue time.
    enqueued_ns: u64,
}

struct MailboxQueue {
    jobs: VecDeque<Job>,
    /// True while the mailbox is on some run queue or held by a worker.
    /// Flipped under this lock only, which closes the lost-wakeup race at
    /// the idle transition: an enqueuer that sees `scheduled == false`
    /// is the one that puts the mailbox on its home run queue.
    scheduled: bool,
}

struct Mailbox {
    home: usize,
    queue: Mutex<MailboxQueue>,
}

/// Home worker for an object name: a stable hash spread over the workers.
fn home_of(object: &str, workers: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    object.hash(&mut h);
    (h.finish() % workers as u64) as usize
}

struct Shared {
    mailboxes: RwLock<HashMap<String, Arc<Mailbox>>>,
    runqs: Vec<Mutex<VecDeque<Arc<Mailbox>>>>,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Mailboxes currently sitting on run queues (not held by workers).
    ready: AtomicUsize,
    /// Jobs enqueued and not yet finished executing.
    pending: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
    busy: AtomicUsize,
    stop: AtomicBool,
}

impl Shared {
    fn mailbox(&self, object: &str) -> Arc<Mailbox> {
        if let Some(mb) = self.mailboxes.read().get(object) {
            return Arc::clone(mb);
        }
        let mut map = self.mailboxes.write();
        Arc::clone(map.entry(object.to_string()).or_insert_with(|| {
            Arc::new(Mailbox {
                home: home_of(object, self.runqs.len()),
                queue: Mutex::new(MailboxQueue { jobs: VecDeque::new(), scheduled: false }),
            })
        }))
    }

    fn push_runq(&self, at: usize, mb: Arc<Mailbox>) {
        self.runqs[at].lock().push_back(mb);
        self.ready.fetch_add(1, Ordering::SeqCst);
        let _g = self.idle_lock.lock();
        self.idle_cv.notify_one();
    }

    /// Pops the next scheduled mailbox: own queue front first (locality),
    /// then the back of each sibling queue (stealing).
    fn take_work(&self, worker: usize) -> Option<Arc<Mailbox>> {
        if let Some(mb) = self.runqs[worker].lock().pop_front() {
            self.ready.fetch_sub(1, Ordering::SeqCst);
            return Some(mb);
        }
        let n = self.runqs.len();
        for i in 1..n {
            if let Some(mb) = self.runqs[(worker + i) % n].lock().pop_back() {
                self.ready.fetch_sub(1, Ordering::SeqCst);
                self.stolen.fetch_add(1, Ordering::Relaxed);
                if parc_obs::is_enabled() {
                    parc_obs::counter(parc_obs::kinds::MAILBOX_STEAL).incr();
                }
                return Some(mb);
            }
        }
        None
    }

    /// Drains `mb` (up to [`BATCH_LIMIT`] jobs), preserving the
    /// one-in-flight invariant: this worker exclusively owns the mailbox
    /// until it either parks it (`scheduled = false`, queue empty) or
    /// hands it to a run queue with `scheduled` still true.
    fn run_mailbox(&self, worker: usize, mb: Arc<Mailbox>) {
        let mut ran = 0usize;
        loop {
            let job = {
                let mut q = mb.queue.lock();
                match q.jobs.pop_front() {
                    Some(job) => job,
                    None => {
                        q.scheduled = false;
                        return;
                    }
                }
            };
            parc_obs::record_wait(parc_obs::kinds::MAILBOX_WAIT, job.enqueued_ns);
            self.busy.fetch_add(1, Ordering::Relaxed);
            if parc_obs::is_enabled() {
                parc_obs::gauge(parc_obs::kinds::MAILBOX_BUSY).adjust(1);
            }
            // A panicking invocation must not take the worker (and with it
            // the mailbox, wedged at `scheduled == true`) down with it.
            let _ = std::panic::catch_unwind(AssertUnwindSafe(job.run));
            if parc_obs::is_enabled() {
                parc_obs::gauge(parc_obs::kinds::MAILBOX_BUSY).adjust(-1);
                parc_obs::gauge(parc_obs::kinds::MAILBOX_DEPTH).adjust(-1);
            }
            self.busy.fetch_sub(1, Ordering::Relaxed);
            self.executed.fetch_add(1, Ordering::Relaxed);
            self.pending.fetch_sub(1, Ordering::SeqCst);
            ran += 1;
            if ran >= BATCH_LIMIT {
                {
                    let mut q = mb.queue.lock();
                    if q.jobs.is_empty() {
                        q.scheduled = false;
                        return;
                    }
                    // Still scheduled — ownership moves to the run queue.
                }
                self.push_runq(worker, mb);
                return;
            }
        }
    }

    fn worker_loop(&self, worker: usize) {
        loop {
            if let Some(mb) = self.take_work(worker) {
                self.run_mailbox(worker, mb);
                continue;
            }
            let mut g = self.idle_lock.lock();
            // Re-check under the idle lock: an enqueuer that bumped
            // `ready` before we took the lock has already notified.
            if self.ready.load(Ordering::SeqCst) != 0 {
                continue;
            }
            if self.stop.load(Ordering::SeqCst) {
                if self.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                // Remaining jobs are owned by a draining worker; they may
                // yet be requeued, so nap instead of exiting.
                self.idle_cv.wait_for(&mut g, Duration::from_millis(10));
                continue;
            }
            self.idle_cv.wait_for(&mut g, Duration::from_millis(100));
        }
    }
}

/// The claim-plane lane: a tiny dedicated executor for claim alias
/// objects (`__claim.*`). Claim waits *block* mailbox workers by design
/// — that is how a claim occupies an object's one-in-flight slot — so
/// the release that would unblock them must never depend on those same
/// workers. Routing alias traffic here makes the claim protocol
/// deadlock-free even with every pool worker parked in a claim wait.
struct ClaimLane {
    tx: std::sync::mpsc::Sender<Job>,
    threads: Vec<JoinHandle<()>>,
}

impl ClaimLane {
    fn spawn() -> ClaimLane {
        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let threads = (0..CLAIM_LANE_THREADS)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("parc-claim-lane-{i}"))
                    .spawn(move || loop {
                        let job = { rx.lock().recv() };
                        match job {
                            Ok(job) => {
                                parc_obs::record_wait(
                                    parc_obs::kinds::MAILBOX_WAIT,
                                    job.enqueued_ns,
                                );
                                let _ = std::panic::catch_unwind(AssertUnwindSafe(job.run));
                            }
                            Err(_) => return,
                        }
                    })
                    .expect("spawning claim lane thread")
            })
            .collect();
        ClaimLane { tx, threads }
    }
}

/// The work-stealing per-object mailbox scheduler. Dropping it drains
/// every queued job, then joins the workers.
pub struct MailboxScheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    claim_lane: Mutex<Option<ClaimLane>>,
}

impl MailboxScheduler {
    /// Spawns a scheduler with the configured worker count
    /// ([`workers_from_env`]).
    pub fn new() -> MailboxScheduler {
        MailboxScheduler::with_workers(workers_from_env())
    }

    /// Spawns a scheduler with an explicit worker count (clamped to ≥ 1).
    pub fn with_workers(workers: usize) -> MailboxScheduler {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            mailboxes: RwLock::new(HashMap::new()),
            runqs: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            ready: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            busy: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("parc-mailbox-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawning mailbox worker")
            })
            .collect();
        MailboxScheduler { shared, workers: handles, claim_lane: Mutex::new(None) }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Appends an invocation to `object`'s mailbox. Jobs for one object
    /// run strictly in enqueue order, one at a time; jobs for distinct
    /// objects run in parallel. Enqueues after shutdown began are dropped.
    ///
    /// Claim-plane objects ([`crate::reserve::is_claim_plane`]) bypass
    /// the worker pool onto a dedicated lane: claim waits occupy pool
    /// workers on purpose, so the releases that end those waits must not
    /// compete with them for workers.
    pub fn enqueue(&self, object: &str, run: impl FnOnce() + Send + 'static) {
        if self.shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let job = Job { run: Box::new(run), enqueued_ns: parc_obs::timestamp_if_enabled() };
        if crate::reserve::is_claim_plane(object) {
            let mut lane = self.claim_lane.lock();
            let _ = lane.get_or_insert_with(ClaimLane::spawn).tx.send(job);
            return;
        }
        let mb = self.shared.mailbox(object);
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        if parc_obs::is_enabled() {
            parc_obs::gauge(parc_obs::kinds::MAILBOX_DEPTH).adjust(1);
        }
        let schedule = {
            let mut q = mb.queue.lock();
            q.jobs.push_back(job);
            if q.scheduled {
                false
            } else {
                q.scheduled = true;
                true
            }
        };
        if schedule {
            let home = mb.home;
            self.shared.push_runq(home, mb);
        }
    }

    /// Monitoring snapshot of the scheduler's counters.
    pub fn stats(&self) -> DispatchStats {
        DispatchStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
            pending: self.shared.pending.load(Ordering::SeqCst),
            busy: self.shared.busy.load(Ordering::Relaxed),
        }
    }

    /// A cloneable live view of the scheduler's backlog (for `OmState`
    /// and placement policies).
    pub fn depth_handle(&self) -> DispatchDepth {
        DispatchDepth { shared: Arc::clone(&self.shared) }
    }
}

impl Default for MailboxScheduler {
    fn default() -> Self {
        MailboxScheduler::new()
    }
}

impl Drop for MailboxScheduler {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.idle_lock.lock();
            self.shared.idle_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The lane outlives the workers: a worker parked in a claim wait
        // can need a lane-borne release to finish draining. Only once
        // every worker has joined is it safe to retire the lane.
        if let Some(lane) = self.claim_lane.lock().take() {
            drop(lane.tx);
            for t in lane.threads {
                let _ = t.join();
            }
        }
    }
}

impl std::fmt::Debug for MailboxScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("MailboxScheduler")
            .field("workers", &self.workers.len())
            .field("pending", &stats.pending)
            .field("executed", &stats.executed)
            .field("stolen", &stats.stolen)
            .finish()
    }
}

/// Counter snapshot returned by [`MailboxScheduler::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchStats {
    /// Jobs fully executed.
    pub executed: u64,
    /// Mailboxes a worker took from a sibling's run queue.
    pub stolen: u64,
    /// Jobs enqueued but not yet finished.
    pub pending: usize,
    /// Workers currently inside an invocation.
    pub busy: usize,
}

/// Cloneable live view of a scheduler's backlog; outlives nothing — it
/// keeps the scheduler's shared state alive but not its workers.
#[derive(Clone)]
pub struct DispatchDepth {
    shared: Arc<Shared>,
}

impl DispatchDepth {
    /// Total jobs enqueued and not yet finished, across all mailboxes.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }

    /// Queued (not yet started) jobs in one object's mailbox.
    pub fn object_depth(&self, object: &str) -> usize {
        self.shared
            .mailboxes
            .read()
            .get(object)
            .map_or(0, |mb| mb.queue.lock().jobs.len())
    }

    /// True when the total backlog exceeds `limit` — the reactor's
    /// read-throttle predicate: past the high-water mark it stops
    /// *reading* server sockets (one cheap atomic load per sweep) and
    /// lets TCP flow control push back on the clients.
    pub fn saturated(&self, limit: usize) -> bool {
        self.pending() > limit
    }

    /// Counter snapshot through the live handle — what the telemetry
    /// plane reads without holding the scheduler itself.
    pub fn stats(&self) -> DispatchStats {
        DispatchStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            stolen: self.shared.stolen.load(Ordering::Relaxed),
            pending: self.shared.pending.load(Ordering::SeqCst),
            busy: self.shared.busy.load(Ordering::Relaxed),
        }
    }

    /// The deepest single mailbox right now — the head-of-line hotspot.
    pub fn max_object_depth(&self) -> usize {
        self.shared
            .mailboxes
            .read()
            .values()
            .map(|mb| mb.queue.lock().jobs.len())
            .max()
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for DispatchDepth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DispatchDepth")
            .field("pending", &self.pending())
            .field("max_object_depth", &self.max_object_depth())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn drop_drains_all_jobs() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let sched = MailboxScheduler::with_workers(3);
            for i in 0..200 {
                let hits = Arc::clone(&hits);
                sched.enqueue(&format!("obj{}", i % 7), move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(hits.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn per_object_jobs_are_fifo_and_never_overlap() {
        let sched = MailboxScheduler::with_workers(4);
        let order: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let overlapped = Arc::new(AtomicBool::new(false));
        for i in 0..500 {
            let order = Arc::clone(&order);
            let in_flight = Arc::clone(&in_flight);
            let overlapped = Arc::clone(&overlapped);
            sched.enqueue("one", move || {
                if in_flight.fetch_add(1, Ordering::SeqCst) != 0 {
                    overlapped.store(true, Ordering::SeqCst);
                }
                order.lock().push(i);
                in_flight.fetch_sub(1, Ordering::SeqCst);
            });
        }
        drop(sched);
        assert!(!overlapped.load(Ordering::SeqCst), "same-object jobs overlapped");
        let order = order.lock();
        assert_eq!(*order, (0..500).collect::<Vec<_>>(), "per-object FIFO violated");
    }

    #[test]
    fn distinct_objects_run_concurrently() {
        // Two jobs that must be in flight simultaneously to finish: each
        // sends its token and waits for the other's. With per-object
        // serialization but cross-object parallelism this completes; a
        // serial executor would deadlock (so: bounded wait + assert).
        let sched = MailboxScheduler::with_workers(2);
        let (tx_a, rx_a) = mpsc::channel::<()>();
        let (tx_b, rx_b) = mpsc::channel::<()>();
        let (done_tx, done_rx) = mpsc::channel::<&'static str>();
        let done_a = done_tx.clone();
        sched.enqueue("alpha", move || {
            tx_a.send(()).unwrap();
            rx_b.recv_timeout(Duration::from_secs(5)).expect("beta never ran alongside");
            done_a.send("alpha").unwrap();
        });
        sched.enqueue("beta", move || {
            tx_b.send(()).unwrap();
            rx_a.recv_timeout(Duration::from_secs(5)).expect("alpha never ran alongside");
            done_tx.send("beta").unwrap();
        });
        let mut done = vec![
            done_rx.recv_timeout(Duration::from_secs(10)).expect("rendezvous"),
            done_rx.recv_timeout(Duration::from_secs(10)).expect("rendezvous"),
        ];
        done.sort_unstable();
        assert_eq!(done, vec!["alpha", "beta"]);
    }

    #[test]
    fn idle_worker_steals_from_a_loaded_sibling() {
        // Pick two object names that hash to the SAME home worker, block
        // that worker with the first, and verify the second still runs —
        // which is only possible if the sibling worker steals it.
        let workers = 2;
        let mut homed: Vec<String> = Vec::new();
        for i in 0.. {
            let name = format!("obj{i}");
            if home_of(&name, workers) == 0 {
                homed.push(name);
                if homed.len() == 2 {
                    break;
                }
            }
        }
        let sched = MailboxScheduler::with_workers(workers);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (ran_tx, ran_rx) = mpsc::channel::<()>();
        sched.enqueue(&homed[0], move || {
            gate_rx.recv_timeout(Duration::from_secs(10)).expect("gate released");
        });
        // Let worker 0 pick up the blocker before the stealable job lands.
        std::thread::sleep(Duration::from_millis(20));
        sched.enqueue(&homed[1], move || {
            ran_tx.send(()).unwrap();
        });
        ran_rx
            .recv_timeout(Duration::from_secs(5))
            .expect("job homed to a blocked worker was never stolen");
        assert!(sched.stats().stolen > 0, "completion without a recorded steal");
        gate_tx.send(()).unwrap();
    }

    #[test]
    fn hot_mailbox_yields_after_batch_limit() {
        // One object with far more than BATCH_LIMIT jobs plus one other
        // object enqueued later: with a single worker, the second object
        // must still run before the hot mailbox fully drains.
        let sched = MailboxScheduler::with_workers(1);
        let hot_done = Arc::new(AtomicUsize::new(0));
        let interleaved = Arc::new(AtomicUsize::new(usize::MAX));
        for _ in 0..(BATCH_LIMIT * 4) {
            let hot_done = Arc::clone(&hot_done);
            sched.enqueue("hot", move || {
                hot_done.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_micros(200));
            });
        }
        {
            let hot_done = Arc::clone(&hot_done);
            let interleaved = Arc::clone(&interleaved);
            sched.enqueue("cold", move || {
                interleaved.store(hot_done.load(Ordering::SeqCst), Ordering::SeqCst);
            });
        }
        drop(sched);
        let at = interleaved.load(Ordering::SeqCst);
        assert!(
            at < BATCH_LIMIT * 4,
            "cold object only ran after the hot mailbox drained entirely"
        );
    }

    #[test]
    fn depth_handle_sees_backlog() {
        let sched = MailboxScheduler::with_workers(1);
        let depth = sched.depth_handle();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        sched.enqueue("blocked", move || {
            gate_rx.recv_timeout(Duration::from_secs(10)).expect("gate");
        });
        for _ in 0..5 {
            sched.enqueue("blocked", || {});
        }
        // The blocker may have started (leaving 5 queued) or not (6).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while depth.object_depth("blocked") > 5 {
            assert!(std::time::Instant::now() < deadline, "blocker never started");
            std::thread::yield_now();
        }
        assert!(depth.pending() >= 5);
        assert!(depth.max_object_depth() >= 5);
        gate_tx.send(()).unwrap();
        drop(sched);
        assert_eq!(depth.pending(), 0);
    }

    #[test]
    fn claim_plane_jobs_run_even_with_every_worker_blocked() {
        // The deadlock the lane exists to prevent: the only pool worker
        // is parked (a claim wait), and the job that would unpark it is
        // claim-plane traffic. It must run anyway.
        let sched = MailboxScheduler::with_workers(1);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        sched.enqueue("claimed-object", move || {
            gate_rx.recv_timeout(Duration::from_secs(10)).expect("release arrived");
        });
        std::thread::sleep(Duration::from_millis(20));
        sched.enqueue("__claim.c1.claimed-object", move || {
            gate_tx.send(()).unwrap();
        });
        // Drop drains: it only returns if the release ran and the worker
        // unblocked, i.e. the lane made progress with zero free workers.
        drop(sched);
    }

    #[test]
    fn worker_count_env_default_is_floored() {
        assert!(workers_from_env() >= 1);
        let sched = MailboxScheduler::with_workers(0);
        assert_eq!(sched.workers(), 1, "worker count is clamped to >= 1");
    }
}
