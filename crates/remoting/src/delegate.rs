//! Delegates and asynchronous method invocation.
//!
//! §2 of the paper: *"C# Remoting also includes support for asynchronous
//! method invocation through delegates. A delegate can perform a method
//! call in background and provides a mechanism to get the remote method
//! return value, if required. In Java, a similar functionality must be
//! explicitly programmed using threads."*
//!
//! [`Delegate::begin_invoke`] runs a closure on a shared [`ThreadPool`] and
//! hands back an [`AsyncResult`]; [`AsyncResult::end_invoke`] blocks for —
//! and returns — the value, mirroring `IAsyncResult`/`EndInvoke`. This is
//! the mechanism the generated PO code of Fig. 4 uses for asynchronous
//! remote calls.

use std::sync::Arc;
use std::time::Duration;

use parc_sync::{Condvar, Mutex};

use crate::error::RemotingError;
use crate::threadpool::ThreadPool;

struct Slot<T> {
    value: Mutex<Option<T>>,
    ready: Condvar,
}

/// A pending asynchronous invocation (`IAsyncResult` analogue).
pub struct AsyncResult<T> {
    slot: Arc<Slot<T>>,
}

impl<T> AsyncResult<T> {
    fn new() -> (AsyncResult<T>, AsyncResult<T>) {
        let slot = Arc::new(Slot { value: Mutex::new(None), ready: Condvar::new() });
        (AsyncResult { slot: Arc::clone(&slot) }, AsyncResult { slot })
    }

    fn complete(&self, value: T) {
        let mut guard = self.slot.value.lock();
        *guard = Some(value);
        self.slot.ready.notify_all();
    }

    /// True once the invocation finished (`IAsyncResult.IsCompleted`).
    pub fn is_completed(&self) -> bool {
        self.slot.value.lock().is_some()
    }

    /// Blocks until the result is available and returns it
    /// (`Delegate.EndInvoke`).
    pub fn end_invoke(self) -> T {
        let mut guard = self.slot.value.lock();
        loop {
            if let Some(value) = guard.take() {
                return value;
            }
            self.slot.ready.wait(&mut guard);
        }
    }

    /// Blocks up to `timeout` for the result.
    ///
    /// # Errors
    ///
    /// [`RemotingError::Timeout`] if the invocation did not finish in time;
    /// the `AsyncResult` is consumed either way.
    pub fn end_invoke_timeout(self, timeout: Duration) -> Result<T, RemotingError> {
        let started = std::time::Instant::now();
        let mut guard = self.slot.value.lock();
        loop {
            if let Some(value) = guard.take() {
                return Ok(value);
            }
            if self.slot.ready.wait_for(&mut guard, timeout).timed_out() {
                return guard
                    .take()
                    .ok_or_else(|| RemotingError::timed_out(started.elapsed(), timeout));
            }
        }
    }
}

impl<T> std::fmt::Debug for AsyncResult<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncResult").field("completed", &self.is_completed()).finish()
    }
}

/// Factory for asynchronous invocations over a shared pool.
///
/// In C# every delegate type carries `BeginInvoke`; here one `Delegate`
/// value wraps the pool and `begin_invoke` accepts any closure.
#[derive(Clone)]
pub struct Delegate {
    pool: Arc<ThreadPool>,
}

impl Delegate {
    /// Creates a delegate backed by `pool`.
    pub fn new(pool: Arc<ThreadPool>) -> Delegate {
        Delegate { pool }
    }

    /// Creates a delegate with its own pool of `threads` workers.
    pub fn with_threads(threads: usize) -> Delegate {
        Delegate::new(Arc::new(ThreadPool::new(threads)))
    }

    /// The backing pool.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Starts `f` in the background (`BeginInvoke`); the returned
    /// [`AsyncResult`] yields its value.
    pub fn begin_invoke<T, F>(&self, f: F) -> AsyncResult<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (theirs, ours) = AsyncResult::new();
        self.pool.submit(move || {
            ours.complete(f());
        });
        theirs
    }
}

impl std::fmt::Debug for Delegate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Delegate").field("threads", &self.pool.threads()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn begin_end_invoke_returns_value() {
        let delegate = Delegate::with_threads(2);
        let ar = delegate.begin_invoke(|| 6 * 7);
        assert_eq!(ar.end_invoke(), 42);
    }

    #[test]
    fn invocations_overlap_with_caller() {
        let delegate = Delegate::with_threads(1);
        let ar = delegate.begin_invoke(|| {
            std::thread::sleep(Duration::from_millis(10));
            "done"
        });
        // Caller continues immediately...
        let side_work = 1 + 1;
        assert_eq!(side_work, 2);
        // ...and collects the value later.
        assert_eq!(ar.end_invoke(), "done");
    }

    #[test]
    fn is_completed_transitions() {
        let delegate = Delegate::with_threads(1);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        let ar = delegate.begin_invoke(move || {
            g.wait();
            5
        });
        assert!(!ar.is_completed());
        gate.wait();
        assert_eq!(ar.end_invoke(), 5);
    }

    #[test]
    fn timeout_fires_when_slow() {
        let delegate = Delegate::with_threads(1);
        let ar = delegate.begin_invoke(|| {
            std::thread::sleep(Duration::from_millis(200));
            1
        });
        assert!(matches!(
            ar.end_invoke_timeout(Duration::from_millis(5)),
            Err(RemotingError::Timeout { .. })
        ));
    }

    #[test]
    fn timeout_returns_value_when_fast() {
        let delegate = Delegate::with_threads(1);
        let ar = delegate.begin_invoke(|| 9);
        assert_eq!(ar.end_invoke_timeout(Duration::from_secs(5)).unwrap(), 9);
    }

    #[test]
    fn many_concurrent_invocations_all_complete() {
        let delegate = Delegate::with_threads(4);
        let counter = Arc::new(AtomicU32::new(0));
        let results: Vec<_> = (0..64)
            .map(|i| {
                let c = Arc::clone(&counter);
                delegate.begin_invoke(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    i * 2
                })
            })
            .collect();
        let sum: u32 = results.into_iter().map(AsyncResult::end_invoke).sum();
        assert_eq!(sum, (0..64).map(|i| i * 2).sum());
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn shared_pool_between_delegates() {
        let pool = Arc::new(ThreadPool::new(2));
        let d1 = Delegate::new(Arc::clone(&pool));
        let d2 = Delegate::new(pool);
        let a = d1.begin_invoke(|| 1);
        let b = d2.begin_invoke(|| 2);
        assert_eq!(a.end_invoke() + b.end_invoke(), 3);
    }
}
