//! In-process channel: real threads, real queues, real serialized bytes —
//! no sockets.
//!
//! An [`InprocNetwork`] is a registry of named endpoints inside one
//! process. Each endpoint runs a router thread feeding a per-object
//! [`MailboxScheduler`] (the same active-object discipline the TCP
//! server uses: calls to one object serial and in order, distinct
//! objects in parallel on work-stealing workers), so concurrency
//! semantics match the socket channels: calls from many client threads
//! interleave on the server exactly as they would across machines.
//! Payloads still pass through the binary formatter, so marshalling
//! costs and wire sizes are identical to the TCP channel — only the wire
//! itself is a queue. The pre-mailbox shape (a shared fixed pool with no
//! per-object ordering beyond pool size 1) survives behind
//! [`InprocNetwork::create_endpoint_with_pool`] as the benchmark
//! baseline.
//!
//! This is the channel the single-machine SCOOPP runtime and most tests
//! use; URIs look like `inproc://node0/PrimeServer`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parc_sync::channel::{bounded, unbounded, Receiver, Sender};
use parc_serial::BinaryFormatter;
use parc_sync::RwLock;

use crate::channel::{ChannelProvider, ClientChannel, LinkFeedback};
use crate::dispatcher::dispatch;
use crate::error::RemotingError;
use crate::mailbox::{DispatchDepth, MailboxScheduler};
use crate::message::CallMessage;
use crate::threadpool::ThreadPool;
use crate::uri::{ObjectUri, Scheme};
use crate::wellknown::ObjectTable;

/// Default reply timeout for in-process calls when `PARC_CALL_TIMEOUT`
/// is unset. Generous — a stuck server object is a bug, not a slow
/// network. The live value each opened channel uses is
/// [`crate::retry::call_timeout`].
pub const DEFAULT_TIMEOUT: Duration = crate::retry::DEFAULT_CALL_TIMEOUT;

/// One reply travelling back to a parked caller. The in-process
/// analogue of a reply frame with a [`crate::frame::DepthExt`]: mailbox
/// endpoints stamp their live backlog on every reply so the caller's
/// aggregation controller sees backpressure; pool-baseline endpoints
/// send `None`, like an inline TCP server's bare frames.
struct InprocReply {
    bytes: Vec<u8>,
    depth: Option<(usize, usize)>,
}

struct Envelope {
    bytes: Vec<u8>,
    reply: Option<Sender<InprocReply>>,
    // 0 unless obs recording was enabled at send time; lets the pump
    // measure queue wait without paying for a clock read when disabled.
    enqueued_ns: u64,
    /// Caller's trace context at send time (`None` with obs disabled):
    /// the in-process analogue of the TCP frame's trace extension, so
    /// server-side dispatch spans parent onto the remote caller.
    trace: Option<parc_obs::TraceContext>,
}

struct EndpointShared {
    tx: Sender<Envelope>,
    bytes_received: AtomicU64,
    messages_received: AtomicU64,
    // Set by `stop_endpoint`: the pump breaks out of its loop on the next
    // envelope, dropping its receiver so every held client sender starts
    // failing — the in-process analogue of a node crash.
    stopped: std::sync::atomic::AtomicBool,
}

/// Registry of in-process endpoints.
#[derive(Clone, Default)]
pub struct InprocNetwork {
    endpoints: Arc<RwLock<HashMap<String, Arc<EndpointShared>>>>,
}

impl InprocNetwork {
    /// Creates an empty network.
    pub fn new() -> InprocNetwork {
        InprocNetwork::default()
    }

    /// Creates and starts an endpoint with the configured mailbox worker
    /// count ([`crate::mailbox::workers_from_env`]).
    ///
    /// # Errors
    ///
    /// [`RemotingError::Transport`] if the name is already taken.
    pub fn create_endpoint(&self, name: impl Into<String>) -> Result<InprocEndpoint, RemotingError> {
        self.create_endpoint_with_workers(name, crate::mailbox::workers_from_env())
    }

    /// Creates and starts an endpoint whose mailbox scheduler runs
    /// `workers` dispatch threads. Per-object FIFO order is guaranteed at
    /// any worker count; `workers` only bounds cross-object parallelism.
    ///
    /// # Errors
    ///
    /// [`RemotingError::Transport`] if the name is already taken.
    pub fn create_endpoint_with_workers(
        &self,
        name: impl Into<String>,
        workers: usize,
    ) -> Result<InprocEndpoint, RemotingError> {
        self.create_endpoint_inner(name.into(), InprocDispatch::Mailbox(workers))
    }

    /// Creates and starts an endpoint with the pre-mailbox dispatch
    /// shape: a shared fixed pool of `workers` threads with **no**
    /// per-object ordering beyond pool size 1. Kept as the explicit
    /// baseline for the `mailbox_scaling` comparison.
    ///
    /// # Errors
    ///
    /// [`RemotingError::Transport`] if the name is already taken.
    pub fn create_endpoint_with_pool(
        &self,
        name: impl Into<String>,
        workers: usize,
    ) -> Result<InprocEndpoint, RemotingError> {
        self.create_endpoint_inner(name.into(), InprocDispatch::Pool(workers))
    }

    fn create_endpoint_inner(
        &self,
        name: String,
        mode: InprocDispatch,
    ) -> Result<InprocEndpoint, RemotingError> {
        let (tx, rx) = unbounded::<Envelope>();
        let shared = Arc::new(EndpointShared {
            tx,
            bytes_received: AtomicU64::new(0),
            messages_received: AtomicU64::new(0),
            stopped: std::sync::atomic::AtomicBool::new(false),
        });
        {
            let mut endpoints = self.endpoints.write();
            if endpoints.contains_key(&name) {
                return Err(RemotingError::Transport {
                    detail: format!("endpoint {name:?} already exists"),
                });
            }
            endpoints.insert(name.clone(), Arc::clone(&shared));
        }
        let objects = ObjectTable::new();
        let pump_objects = objects.clone();
        let pump_shared = Arc::clone(&shared);
        let (scheduler, pool_workers) = match mode {
            InprocDispatch::Mailbox(w) => {
                (Some(Arc::new(MailboxScheduler::with_workers(w))), 0)
            }
            InprocDispatch::Pool(w) => (None, w.max(1)),
        };
        let pump_scheduler = scheduler.clone();
        // Interned once: every span dispatched on this endpoint is tagged
        // with its name, so multi-node traces in one process stay
        // attributable per node.
        let node = parc_obs::trace::node_id(&name);
        let thread = std::thread::Builder::new()
            .name(format!("inproc-{name}"))
            .spawn(move || match pump_scheduler {
                Some(sched) => pump_mailbox(rx, pump_objects, pump_shared, sched, node),
                None => pump_pool(rx, pump_objects, pump_shared, pool_workers, node),
            })
            .expect("spawning inproc endpoint thread");
        Ok(InprocEndpoint {
            name,
            objects,
            network: self.clone(),
            scheduler,
            thread: Some(thread),
        })
    }

    /// Names of live endpoints (sorted).
    pub fn endpoint_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.endpoints.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Total bytes delivered to `endpoint` so far (diagnostics/benchmarks).
    pub fn bytes_received(&self, endpoint: &str) -> Option<u64> {
        self.endpoints
            .read()
            .get(endpoint)
            .map(|e| e.bytes_received.load(Ordering::Relaxed))
    }

    /// Total messages delivered to `endpoint` so far.
    pub fn messages_received(&self, endpoint: &str) -> Option<u64> {
        self.endpoints
            .read()
            .get(endpoint)
            .map(|e| e.messages_received.load(Ordering::Relaxed))
    }

    /// Hard-stops an endpoint, simulating a node crash: the endpoint is
    /// unregistered (new opens fail with `EndpointNotFound`) **and** its
    /// pump thread is told to exit, so channels already held by clients
    /// start failing with a transport error instead of silently continuing
    /// to serve. Queued-but-undispatched envelopes are dropped, exactly as
    /// a crash would drop them. Returns `false` when no such endpoint
    /// exists.
    pub fn stop_endpoint(&self, name: &str) -> bool {
        let Some(shared) = self.endpoints.write().remove(name) else {
            return false;
        };
        shared.stopped.store(true, Ordering::Relaxed);
        // Wake the pump if it is blocked in recv; the envelope itself is
        // never processed (the stop flag is checked first).
        let _ = shared.tx.send(Envelope { bytes: Vec::new(), reply: None, enqueued_ns: 0, trace: None });
        true
    }

    fn remove(&self, name: &str) {
        self.endpoints.write().remove(name);
    }
}

impl std::fmt::Debug for InprocNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InprocNetwork").field("endpoints", &self.endpoint_names()).finish()
    }
}

/// How an endpoint executes decoded calls.
enum InprocDispatch {
    /// Per-object mailboxes on a work-stealing scheduler (the default).
    Mailbox(usize),
    /// The pre-mailbox baseline: a shared fixed pool.
    Pool(usize),
}

/// Router loop (default): decode on the pump thread — the decoded call is
/// what routes to a mailbox — then enqueue; the scheduler's workers
/// dispatch and reply. A slow method on one object only backs up that
/// object's mailbox, never this router.
fn pump_mailbox(
    rx: Receiver<Envelope>,
    objects: ObjectTable,
    shared: Arc<EndpointShared>,
    sched: Arc<MailboxScheduler>,
    node: u32,
) {
    let formatter = BinaryFormatter::new();
    // Sampled at reply time by every dispatch closure — the same
    // write-time freshness the TCP reply path's DepthExt gets.
    let depth = sched.depth_handle();
    while let Ok(envelope) = rx.recv() {
        if shared.stopped.load(Ordering::Relaxed) {
            break;
        }
        shared.bytes_received.fetch_add(envelope.bytes.len() as u64, Ordering::Relaxed);
        shared.messages_received.fetch_add(1, Ordering::Relaxed);
        let Envelope { bytes, reply, enqueued_ns, trace } = envelope;
        let call = match CallMessage::decode(&formatter, &bytes) {
            Ok(call) => call,
            Err(e) => {
                // Undecodable frame: fault with id 0 if a reply channel
                // exists; otherwise drop.
                if let Some(tx) = reply {
                    let fault = crate::message::ReturnMessage::fault(0, e.to_string());
                    if let Ok(bytes) = fault.encode(&formatter) {
                        let _ = tx.send(InprocReply {
                            bytes,
                            depth: Some((depth.pending(), depth.max_object_depth())),
                        });
                    }
                }
                continue;
            }
        };
        let objects = objects.clone();
        let object = call.object.clone();
        let depth = depth.clone();
        sched.enqueue(&object, move || {
            let _node = parc_obs::trace::enter_node_id(node);
            let _trace = parc_obs::trace::with_remote_parent(trace);
            parc_obs::record_wait(parc_obs::kinds::QUEUE_WAIT, enqueued_ns);
            let out = dispatch(&objects, &call);
            if let (Some(out), Some(tx)) = (out, reply) {
                let _span = parc_obs::Span::enter(parc_obs::kinds::REPLY);
                if let Ok(bytes) = out.encode(&BinaryFormatter::new()) {
                    let _ = tx.send(InprocReply {
                        bytes,
                        depth: Some((depth.pending(), depth.max_object_depth())),
                    });
                }
            }
        });
    }
    // Dropping the pump's scheduler handle lets the last owner drain and
    // join the workers.
    drop(sched);
}

/// Baseline dispatcher loop: decode, route and reply on a shared fixed
/// pool, with no per-object ordering (the pre-mailbox shape).
fn pump_pool(
    rx: Receiver<Envelope>,
    objects: ObjectTable,
    shared: Arc<EndpointShared>,
    workers: usize,
    node: u32,
) {
    let pool = ThreadPool::new(workers.max(1));
    let formatter = BinaryFormatter::new();
    while let Ok(envelope) = rx.recv() {
        if shared.stopped.load(Ordering::Relaxed) {
            break;
        }
        shared.bytes_received.fetch_add(envelope.bytes.len() as u64, Ordering::Relaxed);
        shared.messages_received.fetch_add(1, Ordering::Relaxed);
        let objects = objects.clone();
        pool.submit(move || {
            let _node = parc_obs::trace::enter_node_id(node);
            let _trace = parc_obs::trace::with_remote_parent(envelope.trace);
            parc_obs::record_wait(parc_obs::kinds::QUEUE_WAIT, envelope.enqueued_ns);
            let reply = match CallMessage::decode(&formatter, &envelope.bytes) {
                Ok(call) => dispatch(&objects, &call),
                Err(e) => {
                    // Undecodable frame: fault with id 0 if a reply channel
                    // exists; otherwise drop.
                    Some(crate::message::ReturnMessage::fault(0, e.to_string()))
                }
            };
            if let (Some(reply), Some(tx)) = (reply, envelope.reply) {
                let _span = parc_obs::Span::enter(parc_obs::kinds::REPLY);
                if let Ok(bytes) = reply.encode(&formatter) {
                    // The pool baseline has no scheduler to report.
                    let _ = tx.send(InprocReply { bytes, depth: None });
                }
            }
        });
    }
    pool.shutdown();
}

/// A live in-process endpoint (server side). Dropping it unregisters the
/// endpoint and stops its dispatcher once queued work drains.
pub struct InprocEndpoint {
    name: String,
    objects: ObjectTable,
    network: InprocNetwork,
    scheduler: Option<Arc<MailboxScheduler>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl InprocEndpoint {
    /// The endpoint's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The endpoint's published-object table.
    pub fn objects(&self) -> &ObjectTable {
        &self.objects
    }

    /// Live backlog view of this endpoint's mailbox scheduler (`None` for
    /// pool-baseline endpoints). The handle stays valid after the
    /// endpoint drops.
    pub fn dispatch_depth(&self) -> Option<DispatchDepth> {
        self.scheduler.as_ref().map(|s| s.depth_handle())
    }

    /// Scheduler counter snapshot (`None` for pool-baseline endpoints).
    pub fn dispatch_stats(&self) -> Option<crate::mailbox::DispatchStats> {
        self.scheduler.as_ref().map(|s| s.stats())
    }
}

impl Drop for InprocEndpoint {
    fn drop(&mut self) {
        // Unregister, dropping the network's sender; when the last client
        // channel drops its sender clone too, the pump exits.
        self.network.remove(&self.name);
        // Do not join: clients may still hold senders. The pump exits when
        // every sender is gone; detach the thread.
        let _ = self.thread.take();
    }
}

impl std::fmt::Debug for InprocEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InprocEndpoint").field("name", &self.name).finish()
    }
}

/// Client side of an in-process channel.
pub struct InprocClient {
    shared: Arc<EndpointShared>,
    timeout: Duration,
    feedback: Arc<LinkFeedback>,
}

impl InprocClient {
    /// Encodes and enqueues one envelope, returning the encoded payload
    /// size in bytes.
    fn send(
        &self,
        msg: &CallMessage,
        reply: Option<Sender<InprocReply>>,
    ) -> Result<usize, RemotingError> {
        // A stopped endpoint's pump may not have drained its queue yet;
        // without this check a one-way post would be accepted and then
        // silently discarded. Failing here makes kill → post deterministic
        // for callers (posts racing the stop itself can still be lost —
        // fire-and-forget semantics).
        if self.shared.stopped.load(std::sync::atomic::Ordering::Relaxed) {
            return Err(RemotingError::Transport { detail: "endpoint stopped".into() });
        }
        let bytes = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::SERIALIZE);
            msg.encode(&BinaryFormatter::new())?
        };
        let sent = bytes.len();
        let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_SEND);
        // Captured inside the send span: the server dispatch becomes a
        // child of this `channel.send`, mirroring the TCP transports.
        let trace = parc_obs::trace::current_for_wire();
        self.shared
            .tx
            .send(Envelope { bytes, reply, enqueued_ns: parc_obs::timestamp_if_enabled(), trace })
            .map(|()| sent)
            .map_err(|_| RemotingError::Transport { detail: "endpoint stopped".into() })
    }
}

impl ClientChannel for InprocClient {
    fn call(&self, msg: &CallMessage) -> Result<crate::message::ReturnMessage, RemotingError> {
        let (reply_tx, reply_rx) = bounded(1);
        let started = std::time::Instant::now();
        self.send(msg, Some(reply_tx))?;
        let reply = {
            let _span = parc_obs::Span::enter(parc_obs::kinds::CHANNEL_RECV);
            reply_rx
                .recv_timeout(self.timeout)
                .map_err(|_| RemotingError::timed_out(started.elapsed(), self.timeout))?
        };
        self.feedback.record_rtt(started.elapsed());
        if let Some((pending, busiest)) = reply.depth {
            self.feedback.record_depth(pending, busiest);
        }
        let _span = parc_obs::Span::enter(parc_obs::kinds::DESERIALIZE);
        Ok(crate::message::ReturnMessage::decode(&BinaryFormatter::new(), &reply.bytes)?)
    }

    fn post(&self, msg: &CallMessage) -> Result<usize, RemotingError> {
        self.send(msg, None)
    }

    fn scheme(&self) -> &'static str {
        "inproc"
    }

    fn feedback(&self) -> Option<Arc<LinkFeedback>> {
        Some(Arc::clone(&self.feedback))
    }
}

impl ChannelProvider for InprocNetwork {
    fn open(&self, uri: &ObjectUri) -> Result<Arc<dyn ClientChannel>, RemotingError> {
        if uri.scheme() != Scheme::Inproc {
            return Err(RemotingError::BadUri {
                uri: uri.to_string(),
                detail: "inproc network only serves inproc:// uris".into(),
            });
        }
        let endpoints = self.endpoints.read();
        let shared = endpoints.get(uri.authority()).ok_or_else(|| {
            RemotingError::EndpointNotFound { endpoint: uri.authority().to_string() }
        })?;
        Ok(crate::fault::wrap_if_chaotic(Arc::new(InprocClient {
            shared: Arc::clone(shared),
            timeout: crate::retry::call_timeout(),
            feedback: Arc::new(LinkFeedback::new()),
        })))
    }
}

impl InprocNetwork {
    /// Opens a channel with an explicit per-call deadline, bypassing the
    /// `PARC_CALL_TIMEOUT` default (tests pin short deadlines without
    /// touching the process environment). Never chaos-wrapped.
    ///
    /// # Errors
    ///
    /// Same as [`ChannelProvider::open`].
    pub fn open_with_timeout(
        &self,
        uri: &ObjectUri,
        timeout: Duration,
    ) -> Result<Arc<dyn ClientChannel>, RemotingError> {
        if uri.scheme() != Scheme::Inproc {
            return Err(RemotingError::BadUri {
                uri: uri.to_string(),
                detail: "inproc network only serves inproc:// uris".into(),
            });
        }
        let endpoints = self.endpoints.read();
        let shared = endpoints.get(uri.authority()).ok_or_else(|| {
            RemotingError::EndpointNotFound { endpoint: uri.authority().to_string() }
        })?;
        Ok(Arc::new(InprocClient {
            shared: Arc::clone(shared),
            timeout,
            feedback: Arc::new(LinkFeedback::new()),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::RemoteObject;
    use crate::dispatcher::FnInvokable;
    use parc_serial::Value;

    fn adder_network() -> (InprocNetwork, InprocEndpoint) {
        let net = InprocNetwork::new();
        let ep = net.create_endpoint("node0").unwrap();
        ep.objects().register_singleton(
            "Adder",
            Arc::new(FnInvokable(|method: &str, args: &[Value]| match method {
                "add" => {
                    let a = args[0].as_i32().unwrap_or(0);
                    let b = args[1].as_i32().unwrap_or(0);
                    Ok(Value::I32(a + b))
                }
                "sleepy" => {
                    std::thread::sleep(Duration::from_millis(20));
                    Ok(Value::Null)
                }
                _ => Err(RemotingError::MethodNotFound {
                    object: "Adder".into(),
                    method: method.into(),
                }),
            })),
        );
        (net, ep)
    }

    fn proxy(net: &InprocNetwork, uri: &str) -> RemoteObject {
        let uri: ObjectUri = uri.parse().unwrap();
        let chan = net.open(&uri).unwrap();
        RemoteObject::new(chan, uri.object())
    }

    #[test]
    fn sync_call_roundtrips() {
        let (net, _ep) = adder_network();
        let adder = proxy(&net, "inproc://node0/Adder");
        assert_eq!(
            adder.call("add", vec![Value::I32(2), Value::I32(3)]).unwrap(),
            Value::I32(5)
        );
    }

    #[test]
    fn unknown_endpoint_fails_at_open() {
        let (net, _ep) = adder_network();
        let uri: ObjectUri = "inproc://ghost/Adder".parse().unwrap();
        assert!(matches!(
            net.open(&uri),
            Err(RemotingError::EndpointNotFound { .. })
        ));
    }

    #[test]
    fn unknown_object_is_server_fault() {
        let (net, _ep) = adder_network();
        let ghost = proxy(&net, "inproc://node0/Ghost");
        assert!(matches!(
            ghost.call("add", vec![]),
            Err(RemotingError::ServerFault { .. })
        ));
    }

    #[test]
    fn wrong_scheme_rejected() {
        let (net, _ep) = adder_network();
        let uri: ObjectUri = "tcp://node0:1/Adder".parse().unwrap();
        assert!(matches!(net.open(&uri), Err(RemotingError::BadUri { .. })));
    }

    #[test]
    fn duplicate_endpoint_rejected() {
        let net = InprocNetwork::new();
        let _a = net.create_endpoint("dup").unwrap();
        assert!(net.create_endpoint("dup").is_err());
    }

    #[test]
    fn endpoint_drop_unregisters() {
        let net = InprocNetwork::new();
        {
            let _ep = net.create_endpoint("transient").unwrap();
            assert_eq!(net.endpoint_names(), vec!["transient"]);
        }
        assert!(net.endpoint_names().is_empty());
    }

    #[test]
    fn stop_endpoint_severs_held_channels() {
        let (net, _ep) = adder_network();
        let adder = proxy(&net, "inproc://node0/Adder");
        assert!(adder.call("add", vec![Value::I32(1), Value::I32(1)]).is_ok());
        assert!(net.stop_endpoint("node0"));
        assert!(!net.stop_endpoint("node0"), "second stop is a no-op");
        // New opens fail fast...
        let uri: ObjectUri = "inproc://node0/Adder".parse().unwrap();
        assert!(matches!(net.open(&uri), Err(RemotingError::EndpointNotFound { .. })));
        // ...and channels opened before the crash start failing once the
        // pump exits (a reply in flight may be dropped, surfacing as a
        // timeout; later sends fail at the transport).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match adder.call("add", vec![Value::I32(1), Value::I32(1)]) {
                Err(RemotingError::Transport { .. }) | Err(RemotingError::Timeout { .. }) => break,
                Err(other) => panic!("unexpected error class: {other:?}"),
                Ok(_) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "stopped endpoint kept serving"
                    );
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
    }

    #[test]
    fn concurrent_calls_from_many_threads() {
        let (net, _ep) = adder_network();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let net = net.clone();
                scope.spawn(move || {
                    let adder = proxy(&net, "inproc://node0/Adder");
                    for i in 0..50 {
                        let v = adder
                            .call("add", vec![Value::I32(t), Value::I32(i)])
                            .unwrap();
                        assert_eq!(v, Value::I32(t + i));
                    }
                });
            }
        });
    }

    #[test]
    fn oneway_posts_are_counted_but_unreplied() {
        let (net, _ep) = adder_network();
        let adder = proxy(&net, "inproc://node0/Adder");
        for _ in 0..10 {
            adder.post("sleepy", vec![]).unwrap();
        }
        // Give the pool a moment to drain, then check delivery counters.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while net.messages_received("node0").unwrap() < 10 {
            assert!(std::time::Instant::now() < deadline, "posts never delivered");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(net.bytes_received("node0").unwrap() > 0);
    }

    #[test]
    fn method_panic_under_mailbox_dispatch_faults_fast() {
        // Regression: a panicking method used to be contained by the
        // mailbox worker's catch_unwind without ever sending a reply, so
        // the caller burned its whole deadline on a dead slot. Now the
        // dispatcher converts the panic to a ServerFault reply.
        let net = InprocNetwork::new();
        let ep = net.create_endpoint_with_workers("panicky", 2).unwrap();
        ep.objects().register_singleton(
            "Bomb",
            Arc::new(FnInvokable(|_m: &str, _a: &[Value]| -> Result<Value, RemotingError> {
                panic!("mailbox boom")
            })),
        );
        let bomb = proxy(&net, "inproc://panicky/Bomb");
        let started = std::time::Instant::now();
        match bomb.call("tick", vec![]) {
            Err(RemotingError::ServerFault { detail }) => {
                assert!(detail.contains("panicked"), "{detail}");
                assert!(detail.contains("mailbox boom"), "{detail}");
            }
            other => panic!("expected a server fault, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "panic reply should be immediate, not a timeout"
        );
        // The worker survives: the endpoint keeps serving.
        ep.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|_m: &str, args: &[Value]| {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            })),
        );
        let echo = proxy(&net, "inproc://panicky/Echo");
        assert_eq!(echo.call("e", vec![Value::I32(9)]).unwrap(), Value::I32(9));
    }

    #[test]
    fn per_call_deadline_is_configurable_and_reported() {
        let net = InprocNetwork::new();
        let ep = net.create_endpoint("slowpoke").unwrap();
        ep.objects().register_singleton(
            "Slow",
            Arc::new(FnInvokable(|_m: &str, _a: &[Value]| {
                std::thread::sleep(Duration::from_millis(300));
                Ok(Value::Null)
            })),
        );
        let uri: ObjectUri = "inproc://slowpoke/Slow".parse().unwrap();
        let chan = net.open_with_timeout(&uri, Duration::from_millis(30)).unwrap();
        let slow = RemoteObject::new(chan, "Slow");
        match slow.call("nap", vec![]) {
            Err(RemotingError::Timeout { elapsed, deadline }) => {
                assert_eq!(deadline, Duration::from_millis(30));
                assert!(elapsed >= deadline);
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    /// Mailbox endpoints report their backlog on every reply; the inproc
    /// channel surfaces it (plus RTT) through `feedback()`, while
    /// pool-baseline endpoints report none (like an inline TCP server).
    #[test]
    fn mailbox_replies_carry_depth_feedback() {
        let (net, _ep) = adder_network();
        let uri: ObjectUri = "inproc://node0/Adder".parse().unwrap();
        let chan = net.open(&uri).unwrap();
        let feedback = chan.feedback().expect("inproc channel exposes feedback");
        let adder = RemoteObject::new(chan, "Adder");
        adder.call("add", vec![Value::I32(1), Value::I32(2)]).unwrap();
        assert!(feedback.rtt().is_some(), "call recorded no RTT sample");
        assert!(feedback.depth().is_some(), "mailbox reply carried no depth report");

        let pool_net = InprocNetwork::new();
        let pool_ep = pool_net.create_endpoint_with_pool("pooled", 2).unwrap();
        pool_ep.objects().register_singleton(
            "Echo",
            Arc::new(FnInvokable(|_m: &str, args: &[Value]| {
                Ok(args.first().cloned().unwrap_or(Value::Null))
            })),
        );
        let uri: ObjectUri = "inproc://pooled/Echo".parse().unwrap();
        let chan = pool_net.open(&uri).unwrap();
        let feedback = chan.feedback().unwrap();
        let echo = RemoteObject::new(chan, "Echo");
        echo.call("e", vec![Value::I32(4)]).unwrap();
        assert!(feedback.rtt().is_some());
        assert!(feedback.depth().is_none(), "pool baseline should report no depth");
    }

    #[test]
    fn calls_race_with_posts_safely() {
        let (net, _ep) = adder_network();
        let adder = proxy(&net, "inproc://node0/Adder");
        for i in 0..20 {
            adder.post("sleepy", vec![]).unwrap();
            assert_eq!(
                adder.call("add", vec![Value::I32(i), Value::I32(1)]).unwrap(),
                Value::I32(i + 1)
            );
        }
    }
}
