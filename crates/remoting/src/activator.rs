//! `Activator.GetObject` — URI-based proxy acquisition.
//!
//! The C# client in Fig. 2 obtains its proxy with
//! `Activator.GetObject(typeof(DivideServer), "tcp://localhost:1050/DivideServer")`;
//! the Rust analogue resolves an [`ObjectUri`] through a
//! [`ChannelProvider`] and returns an untyped [`RemoteObject`], which typed
//! proxies (from [`crate::remote_interface!`]) wrap.

use crate::channel::{ChannelProvider, RemoteObject};
use crate::error::RemotingError;
use crate::uri::ObjectUri;

/// Static facade mirroring .NET's `Activator`.
#[derive(Debug, Clone, Copy)]
pub struct Activator;

impl Activator {
    /// Returns a transparent proxy for the object a URI names.
    ///
    /// No network round trip happens here: like in .NET, the proxy is
    /// created locally and failures (missing endpoint excepted) surface on
    /// first use.
    ///
    /// # Errors
    ///
    /// URI parse failures and channel-open failures.
    pub fn get_object(
        provider: &impl ChannelProvider,
        uri: &str,
    ) -> Result<RemoteObject, RemotingError> {
        let parsed: ObjectUri = uri.parse()?;
        let channel = provider.open(&parsed)?;
        Ok(RemoteObject::new(channel, parsed.object()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatcher::FnInvokable;
    use crate::inproc::InprocNetwork;
    use parc_serial::Value;
    use std::sync::Arc;

    #[test]
    fn get_object_returns_usable_proxy() {
        let net = InprocNetwork::new();
        let ep = net.create_endpoint("host").unwrap();
        ep.objects().register_singleton(
            "Div",
            Arc::new(FnInvokable(|_: &str, args: &[Value]| {
                Ok(Value::F64(args[0].as_f64().unwrap() / args[1].as_f64().unwrap()))
            })),
        );
        let proxy = Activator::get_object(&net, "inproc://host/Div").unwrap();
        assert_eq!(proxy.object(), "Div");
        assert_eq!(
            proxy.call("divide", vec![Value::F64(9.0), Value::F64(3.0)]).unwrap(),
            Value::F64(3.0)
        );
    }

    #[test]
    fn bad_uri_is_rejected() {
        let net = InprocNetwork::new();
        assert!(matches!(
            Activator::get_object(&net, "not a uri"),
            Err(RemotingError::BadUri { .. })
        ));
    }

    #[test]
    fn missing_endpoint_fails_fast() {
        let net = InprocNetwork::new();
        assert!(matches!(
            Activator::get_object(&net, "inproc://nowhere/Obj"),
            Err(RemotingError::EndpointNotFound { .. })
        ));
    }

    #[test]
    fn missing_object_fails_lazily_like_dotnet() {
        let net = InprocNetwork::new();
        let _ep = net.create_endpoint("host").unwrap();
        // Proxy creation succeeds even though nothing is published...
        let proxy = Activator::get_object(&net, "inproc://host/Ghost").unwrap();
        // ...and the failure surfaces on first call.
        assert!(proxy.call("m", vec![]).is_err());
    }
}
