//! # parc-remoting — a hand-built .NET-remoting-style RPC stack
//!
//! ParC#'s central simplification over ParC++ (§3.2 of the paper) is that
//! the remoting layer does the heavy lifting: proxies are generated
//! automatically, server message loops disappear, object factories are
//! registered as *well-known* objects, and asynchronous invocation is one
//! delegate away. Rust has no such runtime, so this crate rebuilds the
//! semantics from scratch:
//!
//! * [`CallMessage`]/[`ReturnMessage`] — the wire protocol, serialized
//!   through any [`parc_serial::Formatter`];
//! * [`ObjectTable`] with [`WellKnownObjectMode::Singleton`] and
//!   [`WellKnownObjectMode::SingleCall`] publication modes plus explicit
//!   object registration (`RemotingConfiguration.RegisterWellKnownServiceType`
//!   analogue);
//! * channels: [`inproc`] (queue-backed, real threads), [`tcp`]
//!   (framed loopback sockets + binary formatter — Mono's `TcpChannel`) and
//!   [`http`] (HTTP/1.1-style framing + SOAP formatter — Mono's
//!   `HttpChannel`);
//! * [`Activator::get_object`] — URI-based proxy acquisition;
//! * [`Delegate`]s with `begin_invoke`/`end_invoke` over a real bounded
//!   [`ThreadPool`] — the C# asynchronous-invocation mechanism of Fig. 4;
//! * [`LeaseManager`] — `.Net`-style lifetime leases ("object lifetime is
//!   managed by the .Net implementation");
//! * the [`remote_interface!`] macro — the stand-in for the ParC#
//!   preprocessor, generating proxy and dispatcher boilerplate from an
//!   interface definition.
//!
//! ```
//! use std::sync::Arc;
//! use parc_remoting::{remote_interface, Activator, RemotingError};
//! use parc_remoting::inproc::InprocNetwork;
//!
//! remote_interface! {
//!     trait Divider, proxy DividerProxy, dispatcher DividerDispatcher {
//!         fn divide(d1: f64, d2: f64) -> f64;
//!     }
//! }
//!
//! struct DServer;
//! impl Divider for DServer {
//!     fn divide(&self, d1: f64, d2: f64) -> Result<f64, RemotingError> {
//!         Ok(d1 / d2)
//!     }
//! }
//!
//! # fn main() -> Result<(), RemotingError> {
//! let net = InprocNetwork::new();
//! let server = net.create_endpoint("node0")?;
//! server.objects().register_singleton(
//!     "DivideServer",
//!     Arc::new(DividerDispatcher(DServer)),
//! );
//!
//! let proxy = DividerProxy::new(Activator::get_object(&net, "inproc://node0/DivideServer")?);
//! assert_eq!(proxy.divide(10.0, 4.0)?, 2.5);
//! # Ok(())
//! # }
//! ```

pub mod activator;
pub mod bufpool;
pub mod channel;
pub mod delegate;
pub mod dispatcher;
pub mod error;
pub mod fault;
pub mod forward;
pub mod frame;
pub mod http;
pub mod inproc;
pub mod lease;
pub mod macros;
pub mod mailbox;
pub mod message;
pub mod reactor;
pub mod reserve;
pub mod retry;
pub mod tcp;
pub mod threadpool;
pub mod uri;
pub mod wellknown;

pub use activator::Activator;
pub use channel::{ChannelProvider, ClientChannel, RemoteObject};
pub use delegate::{AsyncResult, Delegate};
pub use dispatcher::Invokable;
pub use error::RemotingError;
pub use fault::{ChaosChannel, FaultKind, FaultPlan, FaultSpec};
pub use forward::Forwarder;
pub use lease::LeaseManager;
pub use mailbox::{DispatchDepth, DispatchStats, MailboxScheduler};
pub use message::{CallMessage, ReturnMessage};
pub use reactor::{ReactorClientChannel, ReactorServerChannel};
pub use reserve::{
    claim_alias, is_claim_plane, register_claimable, ClaimGate, ClaimStats, ClaimTable,
    CLAIM_METHOD, RELEASE_METHOD,
};
pub use retry::RetryPolicy;
pub use threadpool::ThreadPool;
pub use uri::ObjectUri;
pub use wellknown::{ObjectTable, WellKnownObjectMode, TELEMETRY_OBJECT};
