//! Error type for the remoting stack.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use parc_serial::SerialError;

/// Error raised by channels, dispatch, proxies, or the activator.
///
/// This is the Rust analogue of .NET's `RemotingException` — with the
/// difference the paper highlights for C# over Java: callers are not forced
/// to wrap every invocation in try/catch, they get a `Result` they can
/// propagate with `?`.
#[derive(Debug, Clone, PartialEq)]
pub enum RemotingError {
    /// The target object name is not registered at the endpoint.
    ObjectNotFound {
        /// Requested object name.
        object: String,
    },
    /// The object exists but has no such method.
    MethodNotFound {
        /// Target object name.
        object: String,
        /// Requested method.
        method: String,
    },
    /// Argument marshalling failed (wrong count or shape).
    BadArguments {
        /// Target method.
        method: String,
        /// What was wrong.
        detail: String,
    },
    /// The server method itself reported a failure.
    ServerFault {
        /// Server-provided failure description.
        detail: String,
    },
    /// (De)serialization failure on either side.
    Serial(SerialError),
    /// The transport failed (socket error, endpoint gone, channel closed).
    Transport {
        /// What the transport reported.
        detail: String,
    },
    /// No endpoint is registered under the URI's authority.
    EndpointNotFound {
        /// The authority (host/node name) that failed to resolve.
        endpoint: String,
    },
    /// The URI could not be parsed or used with this channel.
    BadUri {
        /// The offending URI text.
        uri: String,
        /// Why it was rejected.
        detail: String,
    },
    /// A reply did not arrive in time.
    Timeout {
        /// How long the caller actually waited before giving up.
        elapsed: Duration,
        /// The configured per-call deadline that was exceeded.
        deadline: Duration,
    },
    /// The object's lifetime lease expired and it was collected.
    LeaseExpired {
        /// The collected object's name.
        object: String,
    },
}

impl RemotingError {
    /// Builds a [`RemotingError::Timeout`] from the observed wait and the
    /// deadline that was in force.
    pub fn timed_out(elapsed: Duration, deadline: Duration) -> RemotingError {
        RemotingError::Timeout { elapsed, deadline }
    }

    /// Whether retrying the same call against the same (or a re-placed)
    /// target could plausibly succeed.
    ///
    /// Transport failures, timeouts, and missing endpoints are transient
    /// from the caller's point of view: the peer may come back, the
    /// connection may be re-established, or the object may be re-created
    /// elsewhere. Logic errors (bad arguments, unknown methods, server
    /// faults) are deterministic and must not be retried.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RemotingError::Transport { .. }
                | RemotingError::Timeout { .. }
                | RemotingError::EndpointNotFound { .. }
        )
    }
}

impl fmt::Display for RemotingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemotingError::ObjectNotFound { object } => {
                write!(f, "no remote object registered as {object:?}")
            }
            RemotingError::MethodNotFound { object, method } => {
                write!(f, "object {object:?} has no method {method:?}")
            }
            RemotingError::BadArguments { method, detail } => {
                write!(f, "bad arguments for {method:?}: {detail}")
            }
            RemotingError::ServerFault { detail } => write!(f, "server fault: {detail}"),
            RemotingError::Serial(e) => write!(f, "serialization failed: {e}"),
            RemotingError::Transport { detail } => write!(f, "transport failure: {detail}"),
            RemotingError::EndpointNotFound { endpoint } => {
                write!(f, "no endpoint named {endpoint:?}")
            }
            RemotingError::BadUri { uri, detail } => write!(f, "bad uri {uri:?}: {detail}"),
            RemotingError::Timeout { elapsed, deadline } => write!(
                f,
                "remote call timed out after {:.1?} (deadline {:.1?})",
                elapsed, deadline
            ),
            RemotingError::LeaseExpired { object } => {
                write!(f, "lease expired for object {object:?}")
            }
        }
    }
}

impl Error for RemotingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RemotingError::Serial(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SerialError> for RemotingError {
    fn from(e: SerialError) -> Self {
        RemotingError::Serial(e)
    }
}

impl From<std::io::Error> for RemotingError {
    fn from(e: std::io::Error) -> Self {
        RemotingError::Transport { detail: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<RemotingError>();
    }

    #[test]
    fn serial_error_is_source() {
        let inner = SerialError::BadMagic { expected: "binary" };
        let e = RemotingError::from(inner.clone());
        assert_eq!(
            e.source().expect("serial errors carry a source").to_string(),
            inner.to_string()
        );
        let timeout = RemotingError::timed_out(Duration::from_millis(31), Duration::from_millis(30));
        assert!(timeout.source().is_none());
    }

    #[test]
    fn displays_are_nonempty() {
        let errs = [
            RemotingError::ObjectNotFound { object: "x".into() },
            RemotingError::MethodNotFound { object: "x".into(), method: "m".into() },
            RemotingError::BadArguments { method: "m".into(), detail: "d".into() },
            RemotingError::ServerFault { detail: "d".into() },
            RemotingError::Serial(SerialError::BadMagic { expected: "binary" }),
            RemotingError::Transport { detail: "d".into() },
            RemotingError::EndpointNotFound { endpoint: "n".into() },
            RemotingError::BadUri { uri: "u".into(), detail: "d".into() },
            RemotingError::timed_out(Duration::from_secs(31), Duration::from_secs(30)),
            RemotingError::LeaseExpired { object: "o".into() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn timeout_display_carries_durations() {
        let e = RemotingError::timed_out(Duration::from_millis(1234), Duration::from_secs(1));
        let text = e.to_string();
        assert!(text.contains("1.2"), "{text}");
        assert!(text.contains("deadline 1.0s"), "{text}");
    }

    #[test]
    fn retryability_partition() {
        assert!(RemotingError::Transport { detail: "x".into() }.is_retryable());
        assert!(RemotingError::timed_out(Duration::ZERO, Duration::ZERO).is_retryable());
        assert!(RemotingError::EndpointNotFound { endpoint: "n".into() }.is_retryable());
        assert!(!RemotingError::ServerFault { detail: "d".into() }.is_retryable());
        assert!(!RemotingError::MethodNotFound { object: "o".into(), method: "m".into() }
            .is_retryable());
        assert!(!RemotingError::BadArguments { method: "m".into(), detail: "d".into() }
            .is_retryable());
    }
}
