//! Counters, gauges and fixed-bucket log-scale histograms.
//!
//! Everything here is atomics: recording never blocks, and the types can
//! either live stand-alone (e.g. `parc-core`'s per-runtime
//! `RuntimeStats`) or be registered in the process-wide registry
//! ([`crate::counter`] & friends) that the exporters render.
//!
//! The histogram is log-linear: one octave per power of two with four
//! linear sub-buckets, giving ~25 % relative resolution from 1 ns up to
//! ~2⁶³ ns — plenty for the ~273 µs-scale remoting latencies the paper
//! measures, in 252 fixed buckets with no allocation on the record path.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A named monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A named signed gauge (set/add semantics).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn adjust(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Buckets: values 0–3 map to their own bucket; from the octave starting
/// at 4 upward each power of two is split into 4 linear sub-buckets.
pub const BUCKETS: usize = 252;

/// A log-linear histogram of `u64` samples (typically nanoseconds).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Maps a sample to its bucket index (monotone in `v`).
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // ≥ 2
    let sub = ((v >> (msb - 2)) & 0b11) as usize; // two bits after the leading 1
    4 * (msb - 1) + sub
}

/// The largest value a bucket covers (inclusive).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < 4 {
        return index as u64;
    }
    let msb = index / 4 + 1;
    let sub = (index % 4) as u64;
    // Next sub-bucket's first value, minus one. msb ≤ 63 ⇒ no overflow
    // except at the very top, which saturates.
    let base = 1u64 << msb;
    let step = 1u64 << (msb - 2);
    base.saturating_add(step * (sub + 1)).saturating_sub(1)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        // `AtomicU64` is not Copy; build the array through a Vec.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            v.into_boxed_slice().try_into().expect("BUCKETS-sized vec");
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        let v = self.min.load(Ordering::Relaxed);
        (v != u64::MAX).then_some(v)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate percentile (`0.0 ..= 100.0`): the upper bound of the
    /// bucket holding the nearest-rank sample, clamped to the exact
    /// recorded min/max. Zero when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((p / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(i)
                    .clamp(self.min().unwrap_or(0), self.max());
            }
        }
        self.max()
    }

    /// Resets everything to empty.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("p50", &self.percentile(50.0))
            .field("p95", &self.percentile(95.0))
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_do_arithmetic() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(10);
        g.adjust(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_index_is_monotone_and_exact_at_boundaries() {
        // Small values get exact buckets.
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
        // Octave boundaries: 4 starts bucket 4; each power of two starts a
        // fresh group of four.
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(1 << 20), 4 * 19);
        // Monotone over a wide sweep, and upper bounds bracket the value.
        let mut sweep: Vec<u64> = (0..63u32)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        sweep.sort_unstable();
        let mut last = 0usize;
        for v in sweep {
            let idx = bucket_index(v);
            assert!(idx >= last, "index must not decrease at {v}");
            assert!(bucket_upper_bound(idx) >= v, "upper bound covers {v}");
            last = idx;
        }
    }

    #[test]
    fn upper_bound_is_the_last_value_in_its_bucket() {
        for idx in 4..200usize {
            let ub = bucket_upper_bound(idx);
            assert_eq!(bucket_index(ub), idx, "ub {ub} of bucket {idx}");
            assert_eq!(bucket_index(ub + 1), idx + 1, "{} after bucket {idx}", ub + 1);
        }
    }

    #[test]
    fn percentiles_of_a_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), 1000);
        // ~25% bucket resolution: p50 of 1..=1000 is ~500, within one
        // sub-bucket (here [448, 511]).
        let p50 = h.percentile(50.0);
        assert!((448..=640).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(99.0);
        assert!((960..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let h = Histogram::new();
        h.record(273_000); // the paper's 273 µs, in ns
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p);
            assert!((273_000..=273_000 + 273_000 / 4).contains(&v), "p{p} = {v}");
        }
        // min/max clamp keeps the estimate inside the observed range.
        assert!(h.percentile(50.0) <= h.max());
    }

    #[test]
    fn reset_empties() {
        let h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }
}
