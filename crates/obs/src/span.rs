//! RAII timing spans with a thread-local nesting stack.
//!
//! `Span::enter(kind)` starts a span; dropping the guard records it into
//! the global ring and the per-kind latency histogram. Nesting depth is
//! tracked per thread, so exporters can rebuild each thread's span tree
//! (Chrome's `trace_event` viewer does it by timestamp containment).
//!
//! The disabled path is the contract the whole stack relies on: when
//! recording is off, `enter` is one relaxed atomic load and the guard
//! drop is a `None` check — cheap enough to leave in every hot path
//! (`crates/bench/benches/obs_overhead.rs` pins the cost).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::ring::{Record, SpanRecord};

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The dense id assigned to the calling thread on first use.
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

struct ActiveSpan {
    kind: &'static str,
    start_ns: u64,
    depth: u32,
    trace_id: u64,
    span_id: u64,
    parent_span_id: u64,
}

/// A live span; records itself when dropped.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// Enters a span of `kind`. When recording is disabled this is a
    /// single relaxed atomic load and the returned guard is inert.
    #[inline]
    pub fn enter(kind: &'static str) -> Span {
        if !crate::is_enabled() {
            return Span { active: None };
        }
        Span::enter_cold(kind)
    }

    #[cold]
    fn enter_cold(kind: &'static str) -> Span {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        let (trace_id, span_id, parent_span_id) = crate::trace::begin_span();
        Span {
            active: Some(ActiveSpan {
                kind,
                start_ns: crate::now_ns(),
                depth,
                trace_id,
                span_id,
                parent_span_id,
            }),
        }
    }

    /// True when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        crate::trace::end_span(active.span_id);
        // Same clock as `start_ns`, so a parent's end can never precede
        // a nested child's end no matter how the threads are scheduled.
        let dur_ns = crate::now_ns().saturating_sub(active.start_ns);
        crate::histogram(active.kind).record(dur_ns);
        crate::recorder().push(Record::Span(SpanRecord {
            kind: active.kind,
            start_ns: active.start_ns,
            dur_ns,
            tid: thread_id(),
            depth: active.depth,
            trace_id: active.trace_id,
            span_id: active.span_id,
            parent_span_id: active.parent_span_id,
            node: crate::trace::current_node(),
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global recorder state is shared across the whole test binary; the
    // lib-level lock keeps these tests and the exporter tests apart.
    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        crate::reset();
        {
            let s = Span::enter("call");
            assert!(!s.is_recording());
        }
        assert_eq!(crate::recorder().pushed(), 0);
    }

    #[test]
    fn nested_spans_carry_depth_and_close_inner_first() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _outer = Span::enter("call");
            let _inner = Span::enter("serialize");
        }
        crate::set_enabled(false);
        let records = crate::recorder().snapshot();
        let spans: Vec<_> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner drops (and records) first.
        assert_eq!(spans[0].kind, "serialize");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].kind, "call");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[0].tid, spans[1].tid);
        assert!(spans[0].start_ns >= spans[1].start_ns);
        assert!(crate::histogram("call").count() >= 1);
        // The inner span is causally linked under the outer one.
        assert_ne!(spans[1].span_id, 0);
        assert_eq!(spans[0].trace_id, spans[1].trace_id);
        assert_eq!(spans[0].parent_span_id, spans[1].span_id);
        assert_eq!(spans[1].parent_span_id, 0);
    }

    #[test]
    fn depth_recovers_after_unbalanced_drop_order() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        let a = Span::enter("call");
        let b = Span::enter("serialize");
        drop(a); // wrong order on purpose
        drop(b);
        crate::set_enabled(false);
        // Depth underflow must not panic and the counter must be back at 0.
        let _fresh = {
            crate::set_enabled(true);
            let s = Span::enter("dispatch");
            crate::set_enabled(false);
            s
        };
        assert!(DEPTH.with(|d| d.get()) <= 1);
    }
}
