//! A minimal JSON reader — just enough to validate exporter output.
//!
//! The hermetic-build policy forbids pulling a JSON crate for the trace
//! checker, and the exporters only ever *write* JSON; this module closes
//! the loop so tests and `parc-trace-check` can verify that what we wrote
//! actually parses. It is a strict recursive-descent parser for the JSON
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) that rejects trailing garbage.

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable description with the byte offset of the failure.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Number)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty string tail")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -1.5e3 ").unwrap(), Json::Number(-1500.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::String("a\nb".into()));
        assert_eq!(parse(r#""A""#).unwrap(), Json::String("A".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let Some(Json::Array(items)) = v.get("a") else { panic!() };
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].get("b").and_then(Json::as_str), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("truthy").is_err());
    }

    #[test]
    fn roundtrips_exporter_escapes() {
        let raw = "quote\" slash\\ newline\n tab\t";
        let doc = format!(r#"["{}"]"#, crate::export::escape_json(raw));
        let Json::Array(items) = parse(&doc).unwrap() else { panic!() };
        assert_eq!(items[0].as_str(), Some(raw));
    }
}
