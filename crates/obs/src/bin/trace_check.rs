//! `parc-trace-check` — validates a Chrome `trace_event` JSON file.
//!
//! Used by `scripts/verify.sh` as the offline smoke gate: the file must
//! parse as JSON, the top level must be an array, and every element must
//! be an object carrying the `name`/`ph`/`ts` fields Perfetto requires.
//!
//! Usage: `parc-trace-check <trace.json> [--min-events N]`

use parc_obs::json::{parse, Json};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: parc-trace-check <trace.json> [--min-events N]");
        std::process::exit(2);
    };
    let mut min_events = 1usize;
    if args.next().as_deref() == Some("--min-events") {
        min_events = args
            .next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--min-events needs a number");
                std::process::exit(2);
            });
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("FAIL: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("FAIL: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };
    let Json::Array(events) = doc else {
        eprintln!("FAIL: {path}: top level must be a trace_event array");
        std::process::exit(1);
    };
    let mut spans = 0usize;
    let mut instants = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let Json::Object(_) = ev else {
            eprintln!("FAIL: {path}: element {i} is not an object");
            std::process::exit(1);
        };
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(key).is_none() {
                eprintln!("FAIL: {path}: element {i} is missing {key:?}");
                std::process::exit(1);
            }
        }
        match ev.get("ph").and_then(Json::as_str) {
            Some("X") => {
                if ev.get("dur").and_then(Json::as_f64).is_none() {
                    eprintln!("FAIL: {path}: complete event {i} has no dur");
                    std::process::exit(1);
                }
                spans += 1;
            }
            Some("i") => instants += 1,
            Some(other) => {
                eprintln!("FAIL: {path}: element {i} has unknown phase {other:?}");
                std::process::exit(1);
            }
            None => {
                eprintln!("FAIL: {path}: element {i} ph is not a string");
                std::process::exit(1);
            }
        }
    }
    if events.len() < min_events {
        eprintln!(
            "FAIL: {path}: {} events, expected at least {min_events}",
            events.len()
        );
        std::process::exit(1);
    }
    println!(
        "ok: {path}: {} trace events ({spans} spans, {instants} instants)",
        events.len()
    );
}
