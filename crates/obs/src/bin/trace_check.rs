//! `parc-trace-check` — validates a Chrome `trace_event` JSON file.
//!
//! Used by `scripts/verify.sh` as the offline smoke gate: the file must
//! parse as JSON, the top level must be an array, and every element must
//! be an object carrying the `name`/`ph`/`ts` fields Perfetto requires.
//! With `--cross-node` the checker additionally walks the trace/span/
//! parent ids that spans carry in `args` and proves the merged trace is
//! causally well-formed across nodes: span ids unique, no orphaned
//! parents, parent links acyclic, children not starting before their
//! parent (modulo `--skew-ns` of clock skew), and at least one `dispatch`
//! span whose parent lives in another Chrome process (i.e. a remote call
//! actually crossed a node boundary).
//!
//! Usage: `parc-trace-check <trace.json> [--min-events N] [--cross-node]
//!         [--skew-ns N]`

use std::collections::HashMap;
use std::process::exit;

use parc_obs::json::{parse, Json};

const USAGE: &str =
    "usage: parc-trace-check <trace.json> [--min-events N] [--cross-node] [--skew-ns N]";

/// One traced span, as reconstructed from the `args` of an "X" element.
struct SpanInfo {
    name: String,
    ts_us: f64,
    pid: f64,
    span: u64,
    parent: u64,
}

fn main() {
    let mut path: Option<String> = None;
    let mut min_events = 1usize;
    let mut cross_node = false;
    let mut skew_ns: u64 = 1_000_000;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-events" => min_events = numeric_flag(&mut args, "--min-events"),
            "--skew-ns" => skew_ns = numeric_flag(&mut args, "--skew-ns"),
            "--cross-node" => cross_node = true,
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                exit(2);
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        exit(2);
    };

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&path, &format!("cannot read: {e}")),
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&path, &format!("not valid JSON: {e}")),
    };
    let Json::Array(events) = doc else {
        fail(&path, "top level must be a trace_event array");
    };

    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut metadata = 0usize;
    let mut traced: Vec<SpanInfo> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let Json::Object(_) = ev else {
            fail(&path, &format!("element {i} is not an object"));
        };
        for key in ["name", "ph", "ts", "pid", "tid"] {
            if ev.get(key).is_none() {
                fail(&path, &format!("element {i} is missing {key:?}"));
            }
        }
        match ev.get("ph").and_then(Json::as_str) {
            Some("X") => {
                if ev.get("dur").and_then(Json::as_f64).is_none() {
                    fail(&path, &format!("complete event {i} has no dur"));
                }
                spans += 1;
                if let Some(info) = span_info(ev) {
                    traced.push(info);
                }
            }
            Some("i") => instants += 1,
            Some("M") => metadata += 1,
            Some(other) => fail(&path, &format!("element {i} has unknown phase {other:?}")),
            None => fail(&path, &format!("element {i} ph is not a string")),
        }
    }
    if spans + instants < min_events {
        fail(
            &path,
            &format!("{} events, expected at least {min_events}", spans + instants),
        );
    }

    let mut cross_edges = 0usize;
    if cross_node {
        cross_edges = check_cross_node(&path, &traced, skew_ns);
    }

    print!(
        "ok: {path}: {} trace events ({spans} spans, {instants} instants, {metadata} metadata)",
        spans + instants
    );
    if cross_node {
        print!(
            ", {} traced spans causally linked across processes ({cross_edges} cross-node dispatch edges)",
            traced.len()
        );
    }
    println!();
}

fn numeric_flag<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a number\n{USAGE}");
        exit(2);
    })
}

fn fail(path: &str, msg: &str) -> ! {
    eprintln!("FAIL: {path}: {msg}");
    exit(1);
}

/// Pulls the causal identity out of a span's `args`. Spans recorded with
/// tracing disabled carry all-zero ids and are skipped — only traced
/// spans participate in the cross-node graph.
fn span_info(ev: &Json) -> Option<SpanInfo> {
    let args = ev.get("args")?;
    let span = u64::from_str_radix(args.get("span")?.as_str()?, 16).ok()?;
    if span == 0 {
        return None;
    }
    let parent = u64::from_str_radix(args.get("parent")?.as_str()?, 16).ok()?;
    Some(SpanInfo {
        name: ev.get("name")?.as_str()?.to_string(),
        ts_us: ev.get("ts")?.as_f64()?,
        pid: ev.get("pid")?.as_f64()?,
        span,
        parent,
    })
}

/// Validates the causal graph of traced spans; returns the number of
/// cross-process dispatch edges found.
fn check_cross_node(path: &str, traced: &[SpanInfo], skew_ns: u64) -> usize {
    if traced.is_empty() {
        fail(path, "--cross-node: no traced spans (all span ids are zero)");
    }
    let mut by_id: HashMap<u64, &SpanInfo> = HashMap::with_capacity(traced.len());
    for info in traced {
        if by_id.insert(info.span, info).is_some() {
            fail(path, &format!("--cross-node: duplicate span id {:016x}", info.span));
        }
    }

    let skew_us = skew_ns as f64 / 1e3;
    let mut cross_edges = 0usize;
    for info in traced {
        if info.parent == 0 {
            continue;
        }
        let Some(parent) = by_id.get(&info.parent) else {
            fail(
                path,
                &format!(
                    "--cross-node: span {:016x} ({}) has orphan parent {:016x}",
                    info.span, info.name, info.parent
                ),
            );
        };
        if info.ts_us + skew_us < parent.ts_us {
            fail(
                path,
                &format!(
                    "--cross-node: span {:016x} ({}) starts {:.1}us before its parent \
                     {:016x} ({}) even allowing {skew_ns}ns skew",
                    info.span,
                    info.name,
                    parent.ts_us - info.ts_us,
                    parent.span,
                    parent.name
                ),
            );
        }
        if info.name == "dispatch" && info.pid != parent.pid {
            cross_edges += 1;
        }
    }

    // Acyclic: walk each parent chain; chains longer than the span count
    // can only mean a loop.
    for info in traced {
        let mut hops = 0usize;
        let mut cursor = info.parent;
        while cursor != 0 {
            hops += 1;
            if hops > traced.len() {
                fail(
                    path,
                    &format!("--cross-node: parent chain from {:016x} is cyclic", info.span),
                );
            }
            cursor = by_id[&cursor].parent;
        }
    }

    if cross_edges == 0 {
        fail(
            path,
            "--cross-node: no dispatch span has a parent in another process \
             (no remote call crossed a node boundary)",
        );
    }
    cross_edges
}
