//! `parc-trace-merge` — joins per-node JSONL trace files into one
//! causally-linked Chrome trace.
//!
//! Each node of a traced run writes its own `trace-<node>.jsonl` (see
//! `parc_obs::export::write_node_jsonl_files`): one span or event object
//! per line, stamped with the node's name and hex trace/span/parent ids.
//! This tool reads any number of those files (or a directory of them),
//! re-interns the node names, and emits a single `trace_event` JSON array
//! in which every node is its own Chrome "process" and spans keep their
//! cross-node parent links in `args` — ready for Perfetto and for
//! `parc-trace-check --cross-node`.
//!
//! Usage: `parc-trace-merge <dir | file.jsonl ...> [-o merged.json]`

use std::path::PathBuf;
use std::process::exit;

use parc_obs::export::chrome_trace_json_of;
use parc_obs::json::{parse, Json};
use parc_obs::ring::{EventRecord, Record, SpanRecord};

fn usage() -> ! {
    eprintln!("usage: parc-trace-merge <dir | file.jsonl ...> [-o merged.json]");
    exit(2);
}

fn main() {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "-o" || arg == "--out" {
            out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
        } else if arg == "-h" || arg == "--help" {
            usage();
        } else {
            let path = PathBuf::from(arg);
            if path.is_dir() {
                let mut found = dir_jsonl_files(&path);
                if found.is_empty() {
                    eprintln!("FAIL: {} contains no .jsonl files", path.display());
                    exit(1);
                }
                inputs.append(&mut found);
            } else {
                inputs.push(path);
            }
        }
    }
    if inputs.is_empty() {
        usage();
    }
    inputs.sort();

    let mut records: Vec<Record> = Vec::new();
    let mut nodes = 0usize;
    for path in &inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("FAIL: cannot read {}: {e}", path.display());
                exit(1);
            }
        };
        nodes += 1;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_record(line) {
                Ok(record) => records.push(record),
                Err(e) => {
                    eprintln!("FAIL: {}:{}: {e}", path.display(), lineno + 1);
                    exit(1);
                }
            }
        }
    }
    // One global timeline: order by start so the merged trace reads in
    // causal-ish order regardless of per-file grouping.
    records.sort_by_key(|r| match r {
        Record::Span(s) => s.start_ns,
        Record::Event(e) => e.at_ns,
    });

    let json = chrome_trace_json_of(&records);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("FAIL: cannot write {}: {e}", path.display());
                exit(1);
            }
            eprintln!(
                "ok: merged {} records from {nodes} file(s) into {}",
                records.len(),
                path.display()
            );
        }
        None => print!("{json}"),
    }
}

fn dir_jsonl_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut found: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    found.sort();
    found
}

/// Ring record `kind`s are `&'static str` (they come from the in-process
/// vocabulary); a merge tool reads them back from files, so it leaks the
/// handful of distinct kind strings it meets. Bounded by the vocabulary
/// size, freed at process exit.
fn intern_kind(kind: &str) -> &'static str {
    use std::sync::Mutex;
    static SEEN: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut seen = SEEN.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(k) = seen.iter().find(|k| **k == kind) {
        return k;
    }
    let leaked: &'static str = Box::leak(kind.to_string().into_boxed_str());
    seen.push(leaked);
    leaked
}

fn node_tag(label: &str) -> u32 {
    if label == "client" {
        parc_obs::trace::NODE_UNSET
    } else {
        parc_obs::trace::node_id(label)
    }
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing string {key:?}"))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    let n = obj.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number {key:?}"))?;
    if !(0.0..=u64::MAX as f64).contains(&n) {
        return Err(format!("{key:?} out of range: {n}"));
    }
    Ok(n as u64)
}

fn hex_field(obj: &Json, key: &str) -> Result<u64, String> {
    let s = str_field(obj, key)?;
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hex {key:?} ({s:?}): {e}"))
}

fn parse_record(line: &str) -> Result<Record, String> {
    let obj = parse(line)?;
    let node = node_tag(str_field(&obj, "node")?);
    let kind = intern_kind(str_field(&obj, "kind")?);
    match str_field(&obj, "type")? {
        "span" => Ok(Record::Span(SpanRecord {
            kind,
            start_ns: u64_field(&obj, "start_ns")?,
            dur_ns: u64_field(&obj, "dur_ns")?,
            tid: u64_field(&obj, "tid")?,
            depth: u64_field(&obj, "depth")? as u32,
            trace_id: hex_field(&obj, "trace")?,
            span_id: hex_field(&obj, "span")?,
            parent_span_id: hex_field(&obj, "parent")?,
            node,
        })),
        "event" => Ok(Record::Event(EventRecord {
            kind,
            at_ns: u64_field(&obj, "at_ns")?,
            tid: u64_field(&obj, "tid")?,
            node,
            detail: str_field(&obj, "detail")?.to_string(),
        })),
        other => Err(format!("unknown record type {other:?}")),
    }
}
