//! Causal trace identity: trace/span ids, the per-thread context stack,
//! and node tagging for cross-node trace assembly.
//!
//! Every recorded span carries a `trace_id` (shared by every span of one
//! causal chain, however many nodes it crosses), its own `span_id`, and
//! its parent's `span_id`. Parents come from a thread-local context
//! stack: entering a span pushes a frame, dropping it pops that frame by
//! id (robust to unbalanced drop order). A transport that ships a call to
//! another thread or node captures [`current`] at send time and installs
//! it on the serving thread with [`with_remote_parent`], which is what
//! stitches the server's `dispatch` span under the client's send span.
//!
//! Node identity is a small interned id ([`node_id`]) with a process-wide
//! default ([`set_process_node`]) and a thread-scoped override
//! ([`enter_node_id`]) for in-process "clusters" where one OS process
//! hosts many logical nodes (the inproc transport's endpoints). Records
//! made outside any node scope carry [`NODE_UNSET`] and render as the
//! `client` process in merged traces.
//!
//! Cost contract: with recording disabled, [`current`] is exactly one
//! relaxed atomic load; the span path adds nothing beyond what
//! [`crate::Span::enter`] already paid.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Node tag of records made outside any node scope (rendered `client`).
pub const NODE_UNSET: u32 = u32::MAX;

/// The caller context a transport carries across the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Id shared by every span of one causal chain.
    pub trace_id: u64,
    /// The span the receiver's work is a child of.
    pub span_id: u64,
    /// Sampling word (bit 0: sampled). Reserved for future policies;
    /// senders currently always set 1.
    pub sampling: u64,
}

// ---- id generation -----------------------------------------------------

static SEED: OnceLock<u64> = OnceLock::new();
static COUNTER: AtomicU64 = AtomicU64::new(1);

/// SplitMix64 finalizer — enough mixing that ids from two processes
/// started in the same nanosecond still diverge after a few draws.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fresh process-unique, non-zero 64-bit id (0 means "no id" on the
/// wire and in records).
pub fn next_id() -> u64 {
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        mix(nanos ^ (u64::from(std::process::id()) << 32) ^ 0x9e37_79b9_7f4a_7c15)
    });
    let id = mix(seed.wrapping_add(COUNTER.fetch_add(1, Ordering::Relaxed)));
    if id == 0 {
        1
    } else {
        id
    }
}

// ---- the per-thread context stack --------------------------------------

#[derive(Clone, Copy)]
struct Frame {
    trace_id: u64,
    span_id: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// Thread-scoped node override; [`NODE_UNSET`] falls through to the
    /// process default.
    static NODE: Cell<u32> = const { Cell::new(NODE_UNSET) };
}

/// Begins a span: picks the parent from the stack top (or mints a fresh
/// trace at the root), pushes the new frame, and returns
/// `(trace_id, span_id, parent_span_id)`. Only called while recording.
pub(crate) fn begin_span() -> (u64, u64, u64) {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        let (trace_id, parent) = match s.last() {
            Some(f) => (f.trace_id, f.span_id),
            None => (next_id(), 0),
        };
        let span_id = next_id();
        s.push(Frame { trace_id, span_id });
        (trace_id, span_id, parent)
    })
}

/// Ends a span by id — searched from the top so unbalanced drop order
/// (guards moved across scopes) cannot corrupt the stack.
pub(crate) fn end_span(span_id: u64) {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        if let Some(pos) = s.iter().rposition(|f| f.span_id == span_id) {
            s.remove(pos);
        }
    });
}

/// The calling thread's innermost live context, or `None` when recording
/// is disabled or no span is open. Disabled cost: one relaxed load.
#[inline]
pub fn current() -> Option<TraceContext> {
    if !crate::is_enabled() {
        return None;
    }
    current_cold()
}

#[cold]
fn current_cold() -> Option<TraceContext> {
    STACK.with(|s| {
        s.borrow().last().map(|f| TraceContext {
            trace_id: f.trace_id,
            span_id: f.span_id,
            sampling: 1,
        })
    })
}

/// Whether transports ship trace context on the wire (default on).
/// Turning it off keeps local span recording but stops cross-node
/// stitching — an ops escape hatch, and what lets the propagation bench
/// price context injection separately from recording.
static PROPAGATION: AtomicU32 = AtomicU32::new(1);

/// Reads the wire-propagation toggle. One relaxed load.
#[inline]
pub fn propagation_enabled() -> bool {
    PROPAGATION.load(Ordering::Relaxed) != 0
}

/// Sets the wire-propagation toggle.
pub fn set_propagation(enabled: bool) {
    PROPAGATION.store(u32::from(enabled), Ordering::Relaxed);
}

/// The context a transport puts on the wire: [`current`], further gated
/// on [`propagation_enabled`]. Disabled cost: one relaxed load.
#[inline]
pub fn current_for_wire() -> Option<TraceContext> {
    if !crate::is_enabled() {
        return None;
    }
    if !propagation_enabled() {
        return None;
    }
    current_cold()
}

/// Scope guard installing a remote caller's context as the parent of
/// every span the thread opens while it lives. See [`with_remote_parent`].
#[must_use = "the remote parent is only installed while the guard lives"]
pub struct RemoteParentGuard {
    span_id: Option<u64>,
}

/// Installs `ctx` (captured on the sending side with [`current`]) as the
/// thread's parent context for the duration of the returned guard. A
/// `None` context, or disabled recording, yields an inert guard — server
/// paths call this unconditionally.
pub fn with_remote_parent(ctx: Option<TraceContext>) -> RemoteParentGuard {
    let Some(ctx) = ctx else {
        return RemoteParentGuard { span_id: None };
    };
    if !crate::is_enabled() || ctx.span_id == 0 {
        return RemoteParentGuard { span_id: None };
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame { trace_id: ctx.trace_id, span_id: ctx.span_id });
    });
    RemoteParentGuard { span_id: Some(ctx.span_id) }
}

impl Drop for RemoteParentGuard {
    fn drop(&mut self) {
        if let Some(id) = self.span_id {
            end_span(id);
        }
    }
}

// ---- node identity -----------------------------------------------------

static PROCESS_NODE: AtomicU32 = AtomicU32::new(NODE_UNSET);
static NODE_NAMES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();

fn node_names_table() -> &'static Mutex<Vec<String>> {
    NODE_NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns `name` and returns its small stable id (first come, first
/// numbered). Takes a lock — intern once and keep the id on hot paths.
pub fn node_id(name: &str) -> u32 {
    let mut table = node_names_table().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(i) = table.iter().position(|n| n == name) {
        return i as u32;
    }
    table.push(name.to_string());
    (table.len() - 1) as u32
}

/// The interned name behind `id`, if any ([`NODE_UNSET`] has none).
pub fn node_name(id: u32) -> Option<String> {
    node_names_table()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(id as usize)
        .cloned()
}

/// Every interned node name, in id order.
pub fn node_names() -> Vec<String> {
    node_names_table().lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Sets the process-wide default node identity (single-node-per-process
/// deployments; threads without an override record under it).
pub fn set_process_node(name: &str) {
    let id = node_id(name);
    PROCESS_NODE.store(id, Ordering::Relaxed);
}

/// The node id the calling thread records under right now.
#[inline]
pub fn current_node() -> u32 {
    let over = NODE.with(Cell::get);
    if over != NODE_UNSET {
        over
    } else {
        PROCESS_NODE.load(Ordering::Relaxed)
    }
}

/// Scope guard for a thread-level node override. See [`enter_node_id`].
#[must_use = "the node identity is only installed while the guard lives"]
pub struct NodeGuard {
    prev: u32,
}

/// Installs `id` (from [`node_id`]) as the calling thread's node identity
/// until the guard drops. Dispatch workers serving a logical node wrap
/// each invocation in one of these so the spans it records are stamped
/// with the serving node, not the worker's process default.
pub fn enter_node_id(id: u32) -> NodeGuard {
    NodeGuard { prev: NODE.with(|n| n.replace(id)) }
}

impl Drop for NodeGuard {
    fn drop(&mut self) {
        NODE.with(|n| n.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            let id = next_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "id collision");
        }
    }

    #[test]
    fn current_is_none_when_disabled_or_idle() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        assert_eq!(current(), None);
        crate::set_enabled(true);
        assert_eq!(current(), None, "no open span, no context");
        crate::set_enabled(false);
    }

    #[test]
    fn nested_spans_share_a_trace_and_chain_parents() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let (t1, s1, p1) = begin_span();
        let (t2, s2, p2) = begin_span();
        assert_eq!(p1, 0, "root span has no parent");
        assert_eq!(t1, t2, "children inherit the trace id");
        assert_eq!(p2, s1, "parent is the enclosing span");
        let ctx = current().expect("open span yields a context");
        assert_eq!((ctx.trace_id, ctx.span_id), (t2, s2));
        end_span(s1); // out of order on purpose
        end_span(s2);
        assert_eq!(current(), None);
        crate::set_enabled(false);
    }

    #[test]
    fn remote_parent_guard_installs_and_removes_the_frame() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        let ctx = TraceContext { trace_id: 77, span_id: 88, sampling: 1 };
        {
            let _g = with_remote_parent(Some(ctx));
            let (t, _s, p) = begin_span();
            assert_eq!(t, 77);
            assert_eq!(p, 88);
            end_span(_s);
        }
        assert_eq!(current(), None);
        let _inert = with_remote_parent(None);
        assert_eq!(current(), None);
        crate::set_enabled(false);
    }

    #[test]
    fn node_interning_is_stable_and_scoped() {
        let a = node_id("trace-test-node-a");
        let b = node_id("trace-test-node-b");
        assert_ne!(a, b);
        assert_eq!(node_id("trace-test-node-a"), a);
        assert_eq!(node_name(a).as_deref(), Some("trace-test-node-a"));
        let before = current_node();
        {
            let _g = enter_node_id(a);
            assert_eq!(current_node(), a);
            {
                let _h = enter_node_id(b);
                assert_eq!(current_node(), b);
            }
            assert_eq!(current_node(), a);
        }
        assert_eq!(current_node(), before);
    }
}
