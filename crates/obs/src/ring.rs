//! The bounded record ring the global recorder writes into.
//!
//! Writers claim a slot with one `fetch_add` and only then lock that slot,
//! so concurrent recording never contends on a shared lock (lock-free-ish:
//! per-slot mutexes, a lock is held only for the move into the slot). Old
//! records are overwritten once the ring wraps — tracing a long run keeps
//! the *most recent* `capacity` records, while counters and histograms
//! (which never wrap) keep lifetime totals.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One timed span, completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span vocabulary entry (see [`crate::kinds`]).
    pub kind: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small per-thread id (dense, assigned on first use).
    pub tid: u64,
    /// Nesting depth on its thread (0 = top level).
    pub depth: u32,
    /// Causal chain id shared across every hop of one distributed call.
    pub trace_id: u64,
    /// This span's own id (process-unique, non-zero while recording).
    pub span_id: u64,
    /// Parent span id; 0 for a trace root.
    pub parent_span_id: u64,
    /// Interned node id (see [`crate::trace::node_id`]);
    /// [`crate::trace::NODE_UNSET`] outside any node scope.
    pub node: u32,
}

/// One point event (adaptation decisions and the like).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event vocabulary entry (see [`crate::kinds`]).
    pub kind: &'static str,
    /// Timestamp, nanoseconds since the process trace epoch.
    pub at_ns: u64,
    /// Small per-thread id.
    pub tid: u64,
    /// Interned node id; [`crate::trace::NODE_UNSET`] outside node scope.
    pub node: u32,
    /// `key=value` detail pairs, space separated.
    pub detail: String,
}

/// A recorded item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A completed span.
    Span(SpanRecord),
    /// A point event.
    Event(EventRecord),
}

/// Fixed-capacity overwrite-oldest record buffer.
pub struct Ring {
    slots: Box<[Mutex<Option<Record>>]>,
    /// Total records ever pushed; `cursor % capacity` is the next slot.
    cursor: AtomicU64,
}

impl Ring {
    /// Creates a ring with `capacity` slots (minimum 1).
    pub fn new(capacity: usize) -> Ring {
        let capacity = capacity.max(1);
        let slots = (0..capacity).map(|_| Mutex::new(None)).collect::<Vec<_>>();
        Ring { slots: slots.into_boxed_slice(), cursor: AtomicU64::new(0) }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records pushed over the ring's lifetime (≥ retained count).
    pub fn pushed(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Records lost to overwrite since the last [`Ring::clear`] — the
    /// count a truncated trace is missing. Zero until the ring wraps.
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// Appends a record, overwriting the oldest once full.
    pub fn push(&self, record: Record) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("ring slot poisoned") = Some(record);
    }

    /// Copies the retained records out, oldest first.
    pub fn snapshot(&self) -> Vec<Record> {
        let pushed = self.pushed();
        let cap = self.slots.len() as u64;
        let (start, len) =
            if pushed <= cap { (0, pushed) } else { (pushed % cap, cap) };
        let mut out = Vec::with_capacity(len as usize);
        for i in 0..len {
            let slot = ((start + i) % cap) as usize;
            if let Some(r) = self.slots[slot].lock().expect("ring slot poisoned").clone() {
                out.push(r);
            }
        }
        out
    }

    /// Drops every retained record and resets the push count.
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            *slot.lock().expect("ring slot poisoned") = None;
        }
        self.cursor.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Record {
        Record::Event(EventRecord {
            kind: "tick",
            at_ns: n,
            tid: 0,
            node: crate::trace::NODE_UNSET,
            detail: String::new(),
        })
    }

    fn at(r: &Record) -> u64 {
        match r {
            Record::Event(e) => e.at_ns,
            Record::Span(s) => s.start_ns,
        }
    }

    #[test]
    fn keeps_everything_below_capacity() {
        let ring = Ring::new(8);
        for i in 0..5 {
            ring.push(ev(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.iter().map(at).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.pushed(), 5);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let ring = Ring::new(4);
        for i in 0..10 {
            ring.push(ev(i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.iter().map(at).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.dropped(), 6);
    }

    #[test]
    fn dropped_is_zero_until_the_ring_wraps() {
        let ring = Ring::new(8);
        for i in 0..8 {
            ring.push(ev(i));
        }
        assert_eq!(ring.dropped(), 0);
        ring.push(ev(8));
        assert_eq!(ring.dropped(), 1);
        ring.clear();
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn clear_empties_the_ring() {
        let ring = Ring::new(4);
        ring.push(ev(1));
        ring.clear();
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.pushed(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = Ring::new(0);
        ring.push(ev(7));
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.snapshot().len(), 1);
    }

    #[test]
    fn concurrent_pushes_never_lose_the_ring() {
        let ring = std::sync::Arc::new(Ring::new(64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..1000 {
                        ring.push(ev(t * 1000 + i));
                    }
                });
            }
        });
        assert_eq!(ring.pushed(), 4000);
        assert_eq!(ring.snapshot().len(), 64);
    }
}
