//! Exporters: human-readable text summary, Chrome `trace_event` JSON and
//! a JSONL event dump.
//!
//! The Chrome format is the simple "JSON array of event objects" variant
//! (`[{"name":…,"ph":"X",…}, …]`): spans become complete (`"X"`) events
//! with microsecond `ts`/`dur`, point events become thread-scoped
//! instants (`"i"`). Both `chrome://tracing` and Perfetto open it
//! directly.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use crate::ring::Record;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the registered metrics and the event counters as a stable,
/// greppable text report: `name` left-aligned, value right-aligned, one
/// line per metric; histograms get a `count p50 p95 p99 max` table in
/// nanoseconds.
pub fn text_summary() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== parc-obs summary ==");

    let counters = crate::counters_snapshot();
    if !counters.is_empty() {
        let _ = writeln!(out, "-- counters --");
        for (name, value) in &counters {
            let _ = writeln!(out, "{name:<40} {value:>14}");
        }
    }

    let gauges = crate::gauges_snapshot();
    if !gauges.is_empty() {
        let _ = writeln!(out, "-- gauges --");
        for (name, value) in &gauges {
            let _ = writeln!(out, "{name:<40} {value:>14}");
        }
    }

    let histograms = crate::histograms_snapshot();
    let live: Vec<_> = histograms.iter().filter(|(_, h)| h.count() > 0).collect();
    if !live.is_empty() {
        let _ = writeln!(out, "-- latencies (ns) --");
        let _ = writeln!(
            out,
            "{:<40} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "span", "count", "p50", "p95", "p99", "max"
        );
        for (name, h) in &live {
            let _ = writeln!(
                out,
                "{:<40} {:>10} {:>12} {:>12} {:>12} {:>12}",
                name,
                h.count(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max()
            );
        }
    }

    let ring = crate::recorder();
    let _ = writeln!(
        out,
        "-- ring -- {} records retained of {} recorded (capacity {})",
        ring.snapshot().len(),
        ring.pushed(),
        ring.capacity()
    );
    out
}

/// Renders the ring as a Chrome `trace_event` JSON array.
pub fn chrome_trace_json() -> String {
    let records = crate::recorder().snapshot();
    let mut out = String::with_capacity(records.len() * 96 + 2);
    out.push('[');
    let mut first = true;
    for record in &records {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        match record {
            Record::Span(s) => {
                let _ = write!(
                    out,
                    r#"{{"name":"{}","cat":"span","ph":"X","ts":{},"dur":{},"pid":1,"tid":{},"args":{{"depth":{}}}}}"#,
                    escape_json(s.kind),
                    s.start_ns as f64 / 1e3,
                    (s.dur_ns as f64 / 1e3).max(0.001),
                    s.tid,
                    s.depth
                );
            }
            Record::Event(e) => {
                let _ = write!(
                    out,
                    r#"{{"name":"{}","cat":"event","ph":"i","s":"t","ts":{},"pid":1,"tid":{},"args":{{"detail":"{}"}}}}"#,
                    escape_json(e.kind),
                    e.at_ns as f64 / 1e3,
                    e.tid,
                    escape_json(&e.detail)
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json().as_bytes())
}

/// Renders the ring's point events as JSONL (one object per line).
pub fn events_jsonl() -> String {
    let mut out = String::new();
    for record in crate::recorder().snapshot() {
        if let Record::Event(e) = record {
            let _ = writeln!(
                out,
                r#"{{"kind":"{}","at_ns":{},"tid":{},"detail":"{}"}}"#,
                escape_json(e.kind),
                e.at_ns,
                e.tid,
                escape_json(&e.detail)
            );
        }
    }
    out
}

/// Writes [`events_jsonl`] to `path`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_events_jsonl(path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(events_jsonl().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::kinds;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_span_and_event() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _s = crate::Span::enter(kinds::DISPATCH);
        }
        crate::event(kinds::BATCH_FLUSHED, || "calls=3 bytes=120".into());
        crate::set_enabled(false);

        let text = chrome_trace_json();
        let parsed = parse(&text).expect("trace must parse");
        let Json::Array(events) = parsed else { panic!("top level must be an array") };
        assert_eq!(events.len(), 2);
        for ev in &events {
            let Json::Object(fields) = ev else { panic!("event must be an object") };
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(fields.iter().any(|(k, _)| k == key), "missing {key}");
            }
        }
        assert!(text.contains(r#""ph":"X""#));
        assert!(text.contains(r#""ph":"i""#));
        assert!(text.contains("calls=3"));
    }

    #[test]
    fn empty_ring_is_an_empty_array() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        crate::reset();
        let parsed = parse(&chrome_trace_json()).expect("parses");
        assert_eq!(parsed, Json::Array(vec![]));
    }

    #[test]
    fn text_summary_lists_counters_and_latencies() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        crate::counter("demo.widgets").add(7);
        crate::histogram("demo.lat").record(500);
        crate::set_enabled(false);
        let s = text_summary();
        assert!(s.contains("demo.widgets"));
        assert!(s.contains("7"));
        assert!(s.contains("demo.lat"));
        assert!(s.contains("p95"));
    }

    #[test]
    fn events_jsonl_is_one_valid_object_per_line() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        crate::event(kinds::AGG_SIZE_CHANGED, || "old=1 new=4".into());
        crate::event(kinds::AGGLOMERATE, || "object=X reason=y".into());
        crate::set_enabled(false);
        let dump = events_jsonl();
        let lines: Vec<_> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(matches!(parse(line), Ok(Json::Object(_))), "bad line {line}");
        }
    }
}
