//! Exporters: human-readable text summary, Chrome `trace_event` JSON and
//! a JSONL event dump.
//!
//! The Chrome format is the simple "JSON array of event objects" variant
//! (`[{"name":…,"ph":"X",…}, …]`): spans become complete (`"X"`) events
//! with microsecond `ts`/`dur`, point events become thread-scoped
//! instants (`"i"`). Both `chrome://tracing` and Perfetto open it
//! directly.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use crate::ring::Record;
use crate::trace::NODE_UNSET;

/// Chrome-trace process id for a node tag: the untagged "client" process
/// is pid 1, node ids map densely above it.
fn pid_of(node: u32) -> u64 {
    if node == NODE_UNSET {
        1
    } else {
        u64::from(node) + 2
    }
}

/// Human label for a node tag (`client` when untagged).
pub fn node_label(node: u32) -> String {
    if node == NODE_UNSET {
        "client".to_string()
    } else {
        crate::trace::node_name(node).unwrap_or_else(|| format!("node?{node}"))
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the registered metrics and the event counters as a stable,
/// greppable text report: `name` left-aligned, value right-aligned, one
/// line per metric; histograms get a `count p50 p95 p99 max` table in
/// nanoseconds.
pub fn text_summary() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== parc-obs summary ==");

    // Fold the ring's overwrite count into the `ring.dropped` counter so
    // a truncated trace shows up in the counters section, not just the
    // ring footer.
    let dropped = crate::recorder().dropped();
    if dropped > 0 {
        let c = crate::counter(crate::kinds::RING_DROPPED);
        let seen = c.get();
        if dropped > seen {
            c.add(dropped - seen);
        }
    }

    let counters = crate::counters_snapshot();
    if !counters.is_empty() {
        let _ = writeln!(out, "-- counters --");
        for (name, value) in &counters {
            let _ = writeln!(out, "{name:<40} {value:>14}");
        }
    }

    let gauges = crate::gauges_snapshot();
    if !gauges.is_empty() {
        let _ = writeln!(out, "-- gauges --");
        for (name, value) in &gauges {
            let _ = writeln!(out, "{name:<40} {value:>14}");
        }
    }

    let histograms = crate::histograms_snapshot();
    let live: Vec<_> = histograms.iter().filter(|(_, h)| h.count() > 0).collect();
    if !live.is_empty() {
        let _ = writeln!(out, "-- latencies (ns) --");
        let _ = writeln!(
            out,
            "{:<40} {:>10} {:>12} {:>12} {:>12} {:>12}",
            "span", "count", "p50", "p95", "p99", "max"
        );
        for (name, h) in &live {
            let _ = writeln!(
                out,
                "{:<40} {:>10} {:>12} {:>12} {:>12} {:>12}",
                name,
                h.count(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.percentile(99.0),
                h.max()
            );
        }
    }

    let ring = crate::recorder();
    let _ = writeln!(
        out,
        "-- ring -- {} records retained of {} recorded (capacity {}, {} dropped)",
        ring.snapshot().len(),
        ring.pushed(),
        ring.capacity(),
        ring.dropped()
    );
    out
}

/// Renders the ring as a Chrome `trace_event` JSON array. Each node tag
/// becomes its own Chrome "process" (named by a `process_name` metadata
/// event); spans carry their trace/span/parent ids as hex strings in
/// `args` so viewers and `parc-trace-check --cross-node` can follow
/// causal edges across nodes.
pub fn chrome_trace_json() -> String {
    chrome_trace_json_of(&crate::recorder().snapshot())
}

/// [`chrome_trace_json`] over an explicit record list (the merge tool
/// and the per-node exporters reuse it).
pub fn chrome_trace_json_of(records: &[Record]) -> String {
    let mut nodes: Vec<u32> = Vec::new();
    for record in records {
        let node = match record {
            Record::Span(s) => s.node,
            Record::Event(e) => e.node,
        };
        if !nodes.contains(&node) {
            nodes.push(node);
        }
    }
    nodes.sort_unstable_by_key(|n| pid_of(*n));

    let mut out = String::with_capacity(records.len() * 128 + 2);
    out.push('[');
    let mut first = true;
    for node in &nodes {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        let _ = write!(
            out,
            r#"{{"name":"process_name","ph":"M","ts":0,"pid":{},"tid":0,"args":{{"name":"{}"}}}}"#,
            pid_of(*node),
            escape_json(&node_label(*node))
        );
    }
    for record in records {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        match record {
            Record::Span(s) => {
                let _ = write!(
                    out,
                    r#"{{"name":"{}","cat":"span","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{"depth":{},"trace":"{:016x}","span":"{:016x}","parent":"{:016x}","node":"{}"}}}}"#,
                    escape_json(s.kind),
                    s.start_ns as f64 / 1e3,
                    (s.dur_ns as f64 / 1e3).max(0.001),
                    pid_of(s.node),
                    s.tid,
                    s.depth,
                    s.trace_id,
                    s.span_id,
                    s.parent_span_id,
                    escape_json(&node_label(s.node))
                );
            }
            Record::Event(e) => {
                let _ = write!(
                    out,
                    r#"{{"name":"{}","cat":"event","ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{"detail":"{}"}}}}"#,
                    escape_json(e.kind),
                    e.at_ns as f64 / 1e3,
                    pid_of(e.node),
                    e.tid,
                    escape_json(&e.detail)
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Writes [`chrome_trace_json`] to `path`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json().as_bytes())
}

/// Renders the ring's point events as JSONL (one object per line).
pub fn events_jsonl() -> String {
    let mut out = String::new();
    for record in crate::recorder().snapshot() {
        if let Record::Event(e) = record {
            let _ = writeln!(
                out,
                r#"{{"kind":"{}","at_ns":{},"tid":{},"detail":"{}"}}"#,
                escape_json(e.kind),
                e.at_ns,
                e.tid,
                escape_json(&e.detail)
            );
        }
    }
    out
}

/// Writes [`events_jsonl`] to `path`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_events_jsonl(path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(events_jsonl().as_bytes())
}

/// Renders one ring record as a node-stamped JSONL line — the per-node
/// interchange format `parc-trace-merge` consumes. Ids are hex *strings*
/// (the in-tree JSON parser stores numbers as `f64`, which cannot hold a
/// full u64 id).
fn record_jsonl_line(record: &Record) -> String {
    match record {
        Record::Span(s) => format!(
            r#"{{"type":"span","kind":"{}","node":"{}","start_ns":{},"dur_ns":{},"tid":{},"depth":{},"trace":"{:016x}","span":"{:016x}","parent":"{:016x}"}}"#,
            escape_json(s.kind),
            escape_json(&node_label(s.node)),
            s.start_ns,
            s.dur_ns,
            s.tid,
            s.depth,
            s.trace_id,
            s.span_id,
            s.parent_span_id,
        ),
        Record::Event(e) => format!(
            r#"{{"type":"event","kind":"{}","node":"{}","at_ns":{},"tid":{},"detail":"{}"}}"#,
            escape_json(e.kind),
            escape_json(&node_label(e.node)),
            e.at_ns,
            e.tid,
            escape_json(&e.detail),
        ),
    }
}

/// Splits the ring by node tag and writes one `trace-<node>.jsonl` file
/// per node into `dir` (created if missing). Returns the written paths.
/// Records made outside any node scope land in `trace-client.jsonl`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_node_jsonl_files(dir: impl AsRef<Path>) -> std::io::Result<Vec<std::path::PathBuf>> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut by_node: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    for record in crate::recorder().snapshot() {
        let node = match &record {
            Record::Span(s) => s.node,
            Record::Event(e) => e.node,
        };
        let mut label = node_label(node);
        label.retain(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
        let buf = by_node.entry(label).or_default();
        buf.push_str(&record_jsonl_line(&record));
        buf.push('\n');
    }
    let mut paths = Vec::with_capacity(by_node.len());
    for (label, contents) in by_node {
        let path = dir.join(format!("trace-{label}.jsonl"));
        std::fs::write(&path, contents)?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::kinds;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_span_and_event() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        {
            let _s = crate::Span::enter(kinds::DISPATCH);
        }
        crate::event(kinds::BATCH_FLUSHED, || "calls=3 bytes=120".into());
        crate::set_enabled(false);

        let text = chrome_trace_json();
        let parsed = parse(&text).expect("trace must parse");
        let Json::Array(events) = parsed else { panic!("top level must be an array") };
        // One span, one point event, plus process_name metadata.
        assert_eq!(events.len(), 3);
        for ev in &events {
            let Json::Object(fields) = ev else { panic!("event must be an object") };
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(fields.iter().any(|(k, _)| k == key), "missing {key}");
            }
        }
        assert!(text.contains(r#""ph":"X""#));
        assert!(text.contains(r#""ph":"i""#));
        assert!(text.contains(r#""ph":"M""#));
        assert!(text.contains(r#""span":"#));
        assert!(text.contains("calls=3"));
    }

    #[test]
    fn node_jsonl_files_split_by_node_tag() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        let id = crate::trace::node_id("export-test-node");
        {
            let _g = crate::trace::enter_node_id(id);
            let _s = crate::Span::enter(kinds::DISPATCH);
        }
        {
            let _s = crate::Span::enter(kinds::PO_CALL);
        }
        crate::set_enabled(false);
        let dir = std::env::temp_dir().join(format!("parc-obs-export-{}", std::process::id()));
        let paths = write_node_jsonl_files(&dir).expect("write node files");
        assert_eq!(paths.len(), 2, "one file per node tag: {paths:?}");
        let names: Vec<String> =
            paths.iter().map(|p| p.file_name().unwrap().to_string_lossy().into_owned()).collect();
        assert!(names.contains(&"trace-client.jsonl".to_string()), "{names:?}");
        assert!(names.contains(&"trace-export-test-node.jsonl".to_string()), "{names:?}");
        for path in &paths {
            let contents = std::fs::read_to_string(path).unwrap();
            for line in contents.lines() {
                assert!(matches!(parse(line), Ok(Json::Object(_))), "bad line {line}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_ring_is_an_empty_array() {
        let _guard = crate::test_lock();
        crate::set_enabled(false);
        crate::reset();
        let parsed = parse(&chrome_trace_json()).expect("parses");
        assert_eq!(parsed, Json::Array(vec![]));
    }

    #[test]
    fn text_summary_lists_counters_and_latencies() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        crate::counter("demo.widgets").add(7);
        crate::histogram("demo.lat").record(500);
        crate::set_enabled(false);
        let s = text_summary();
        assert!(s.contains("demo.widgets"));
        assert!(s.contains("7"));
        assert!(s.contains("demo.lat"));
        assert!(s.contains("p95"));
    }

    #[test]
    fn events_jsonl_is_one_valid_object_per_line() {
        let _guard = crate::test_lock();
        crate::set_enabled(true);
        crate::reset();
        crate::event(kinds::AGG_SIZE_CHANGED, || "old=1 new=4".into());
        crate::event(kinds::AGGLOMERATE, || "object=X reason=y".into());
        crate::set_enabled(false);
        let dump = events_jsonl();
        let lines: Vec<_> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(matches!(parse(line), Ok(Json::Object(_))), "bad line {line}");
        }
    }
}
