//! # parc-obs — runtime tracing, metrics and adaptation telemetry
//!
//! The paper's contribution — grain-size adaptation by call aggregation
//! and object agglomeration — is a *runtime* behaviour; this crate makes
//! it observable. It is hermetic (std-only, like everything else in the
//! workspace) and provides:
//!
//! * **spans** — [`Span::enter`] RAII timers with a thread-local nesting
//!   stack, recorded into a bounded overwrite-oldest [`ring::Ring`];
//! * **metrics** — named [`Counter`]s, [`Gauge`]s and log-scale
//!   [`Histogram`]s (p50/p95/p99/max) in a process-wide registry;
//! * **events** — timestamped adaptation decisions
//!   (`agg_size_changed`, `agglomerate`, `batch_flushed`, …) with
//!   `key=value` detail;
//! * **exporters** — a human-readable [`text_summary`] and a
//!   Chrome-`trace_event` JSON writer ([`chrome_trace_json`]) that opens
//!   in `about:tracing`/Perfetto, plus a JSONL event dump;
//! * a shared [`kinds`] vocabulary that `parc-sim`'s deterministic traces
//!   reuse, so simulated and real traces are grep-compatible.
//!
//! Recording is **off by default**. The disabled fast path is one relaxed
//! atomic load per span/event/sample — cheap enough that every layer of
//! the stack (remoting channels, the SCOOPP runtime, the RMI and MPI
//! baselines) leaves its instrumentation in unconditionally.
//!
//! ```
//! use parc_obs as obs;
//!
//! obs::init(obs::ObsConfig { enabled: true, ring_capacity: 1024 });
//! {
//!     let _call = obs::Span::enter(obs::kinds::CALL);
//!     let _ser = obs::Span::enter(obs::kinds::SERIALIZE);
//! }
//! obs::counter("demo.calls").incr();
//! obs::event(obs::kinds::BATCH_FLUSHED, || "calls=8 bytes=411".into());
//! let summary = obs::text_summary();
//! assert!(summary.contains("demo.calls"));
//! obs::set_enabled(false);
//! ```

pub mod export;
pub mod json;
pub mod kinds;
pub mod metrics;
pub mod ring;
mod span;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub use export::{
    chrome_trace_json, events_jsonl, text_summary, write_chrome_trace, write_events_jsonl,
    write_node_jsonl_files,
};
pub use metrics::{Counter, Gauge, Histogram};
pub use ring::{EventRecord, Record, Ring, SpanRecord};
pub use span::{thread_id, Span};
pub use trace::TraceContext;

/// Recorder configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Whether spans/events/metrics record at all.
    pub enabled: bool,
    /// Ring capacity in records; fixed at the first initialisation.
    pub ring_capacity: usize,
}

/// Default ring capacity (records, not bytes).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig { enabled: false, ring_capacity: DEFAULT_RING_CAPACITY }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static RECORDER: OnceLock<Ring> = OnceLock::new();

struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

/// Initialises the recorder. The ring is created on first call (later
/// calls can still flip `enabled` but cannot resize the ring). Returns
/// the effective configuration.
pub fn init(config: ObsConfig) -> ObsConfig {
    let ring = RECORDER.get_or_init(|| Ring::new(config.ring_capacity));
    let _ = EPOCH.get_or_init(Instant::now);
    ENABLED.store(config.enabled, Ordering::Relaxed);
    ObsConfig { enabled: config.enabled, ring_capacity: ring.capacity() }
}

/// Initialises from the environment: `PARC_OBS=1` (or `true`) enables
/// recording, `PARC_OBS_RING=<n>` sizes the ring. Setting
/// `PARC_OBS_DUMP_DIR` also enables recording so the flight recorder
/// (see [`flight_dump`]) has something to dump when a failure fires.
/// Returns the effective configuration.
pub fn init_from_env() -> ObsConfig {
    let enabled = std::env::var("PARC_OBS")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
        || dump_dir().is_some();
    let ring_capacity = std::env::var("PARC_OBS_RING")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_RING_CAPACITY);
    init(ObsConfig { enabled, ring_capacity })
}

/// Whether recording is on. This is the single relaxed load every
/// disabled-path check reduces to.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off at runtime.
pub fn set_enabled(enabled: bool) {
    if enabled {
        // Make sure the clock and ring exist before the first record.
        let _ = EPOCH.get_or_init(Instant::now);
        let _ = RECORDER.get_or_init(|| Ring::new(DEFAULT_RING_CAPACITY));
    }
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// The global record ring (created on demand with the default capacity).
pub fn recorder() -> &'static Ring {
    RECORDER.get_or_init(|| Ring::new(DEFAULT_RING_CAPACITY))
}

/// Nanoseconds since the process trace epoch.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// [`now_ns`] when recording is enabled, 0 otherwise — for call sites
/// that stash a timestamp in a message and measure queue wait later.
#[inline]
pub fn timestamp_if_enabled() -> u64 {
    if is_enabled() {
        now_ns().max(1)
    } else {
        0
    }
}

/// Records `now - start_ns` into the named histogram; no-op when
/// `start_ns` is 0 (i.e. it was taken while recording was disabled).
#[inline]
pub fn record_wait(name: &str, start_ns: u64) {
    if start_ns != 0 && is_enabled() {
        histogram(name).record(now_ns().saturating_sub(start_ns));
    }
}

/// Looks up (or creates) the named counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut map = registry().counters.lock().expect("counter registry");
    if let Some(c) = map.get(name) {
        return Arc::clone(c);
    }
    let c = Arc::new(Counter::new());
    map.insert(name.to_string(), Arc::clone(&c));
    c
}

/// Looks up (or creates) the named gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut map = registry().gauges.lock().expect("gauge registry");
    if let Some(g) = map.get(name) {
        return Arc::clone(g);
    }
    let g = Arc::new(Gauge::new());
    map.insert(name.to_string(), Arc::clone(&g));
    g
}

/// Looks up (or creates) the named histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut map = registry().histograms.lock().expect("histogram registry");
    if let Some(h) = map.get(name) {
        return Arc::clone(h);
    }
    let h = Arc::new(Histogram::new());
    map.insert(name.to_string(), Arc::clone(&h));
    h
}

/// Snapshot of the registered counters (name → value), sorted by name.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    registry()
        .counters
        .lock()
        .expect("counter registry")
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect()
}

/// Snapshot of the registered gauges (name → value), sorted by name.
pub fn gauges_snapshot() -> Vec<(String, i64)> {
    registry()
        .gauges
        .lock()
        .expect("gauge registry")
        .iter()
        .map(|(k, v)| (k.clone(), v.get()))
        .collect()
}

/// Snapshot of the registered histograms, sorted by name.
pub fn histograms_snapshot() -> Vec<(String, Arc<Histogram>)> {
    registry()
        .histograms
        .lock()
        .expect("histogram registry")
        .iter()
        .map(|(k, v)| (k.clone(), Arc::clone(v)))
        .collect()
}

/// Records a point event. The detail closure only runs when recording is
/// enabled, so building the `key=value` string costs nothing otherwise.
/// Every event also bumps the counter registered under its kind, which is
/// what the text summary (and the verify-script smoke gate) reads.
#[inline]
pub fn event(kind: &'static str, detail: impl FnOnce() -> String) {
    if !is_enabled() {
        return;
    }
    counter(kind).incr();
    recorder().push(Record::Event(EventRecord {
        kind,
        at_ns: now_ns(),
        tid: thread_id(),
        node: trace::current_node(),
        detail: detail(),
    }));
}

/// Flight recorder: where failure-triggered dumps land, read once from
/// `PARC_OBS_DUMP_DIR`. `None` disables the recorder entirely.
fn dump_dir() -> Option<&'static std::path::Path> {
    static DIR: OnceLock<Option<std::path::PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| std::env::var_os("PARC_OBS_DUMP_DIR").map(std::path::PathBuf::from))
        .as_deref()
}

/// Dumps the span ring (Chrome trace) and the event log (JSONL) into
/// `PARC_OBS_DUMP_DIR`, for post-mortem analysis when a failure event
/// (`node.failed`, `object.failed_over`) fires. Returns the trace path
/// when a dump was written. No-op unless the env var is set; capped at a
/// handful of dumps per process so a flapping node cannot fill the disk.
pub fn flight_dump(reason: &str) -> Option<std::path::PathBuf> {
    const MAX_DUMPS: u32 = 8;
    static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    let dir = dump_dir()?;
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    if seq >= MAX_DUMPS {
        return None;
    }
    std::fs::create_dir_all(dir).ok()?;
    let slug: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let trace_path = dir.join(format!("flight-{seq:03}-{slug}.trace.json"));
    let events_path = dir.join(format!("flight-{seq:03}-{slug}.events.jsonl"));
    export::write_chrome_trace(&trace_path).ok()?;
    export::write_events_jsonl(&events_path).ok()?;
    event(kinds::FLIGHT_DUMP, || format!("reason={reason} seq={seq}"));
    Some(trace_path)
}

/// Clears the ring and zeroes every registered metric (tests and
/// between-phase measurement). Does not change the enabled flag.
pub fn reset() {
    recorder().clear();
    let reg = registry();
    for c in reg.counters.lock().expect("counter registry").values() {
        c.reset();
    }
    for g in reg.gauges.lock().expect("gauge registry").values() {
        g.reset();
    }
    for h in reg.histograms.lock().expect("histogram registry").values() {
        h.reset();
    }
}

/// Serialises tests that mutate the global recorder. Public so the
/// workspace's integration tests can share it with the unit tests here.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_the_default_and_records_nothing() {
        let _guard = test_lock();
        set_enabled(false);
        reset();
        event(kinds::BATCH_FLUSHED, || unreachable!("detail must be lazy"));
        assert_eq!(recorder().pushed(), 0);
        assert_eq!(counter(kinds::BATCH_FLUSHED).get(), 0);
    }

    #[test]
    fn events_count_and_carry_detail() {
        let _guard = test_lock();
        set_enabled(true);
        reset();
        event(kinds::AGGLOMERATE, || "object=Counter reason=adaptive".into());
        set_enabled(false);
        assert_eq!(counter(kinds::AGGLOMERATE).get(), 1);
        let snap = recorder().snapshot();
        let Record::Event(e) = &snap[0] else { panic!("expected event") };
        assert_eq!(e.kind, kinds::AGGLOMERATE);
        assert!(e.detail.contains("reason=adaptive"));
    }

    #[test]
    fn registry_returns_the_same_instance() {
        let _guard = test_lock();
        let c1 = counter("x.same");
        let c2 = counter("x.same");
        c1.incr();
        assert_eq!(c2.get(), 1);
        assert!(Arc::ptr_eq(&c1, &c2));
        let h1 = histogram("x.hist");
        let h2 = histogram("x.hist");
        assert!(Arc::ptr_eq(&h1, &h2));
    }

    #[test]
    fn timestamps_are_monotone_and_gated() {
        let _guard = test_lock();
        set_enabled(false);
        assert_eq!(timestamp_if_enabled(), 0);
        set_enabled(true);
        let a = timestamp_if_enabled();
        let b = now_ns();
        assert!(a > 0);
        assert!(b >= a.min(b));
        record_wait("x.wait", a);
        set_enabled(false);
        assert_eq!(histogram("x.wait").count(), 1);
    }

    #[test]
    fn init_reports_effective_ring_capacity() {
        let cfg = init(ObsConfig { enabled: false, ring_capacity: 123 });
        // Whatever the first initialiser in this test binary chose wins;
        // the call still reports the real capacity.
        assert_eq!(cfg.ring_capacity, recorder().capacity());
        assert!(!is_enabled());
    }
}
