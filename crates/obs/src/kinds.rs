//! The shared span/event vocabulary.
//!
//! One constant per stage of a remote call and per adaptation decision, so
//! real traces (`parc-obs` ring), simulated traces (`parc_sim::Trace`) and
//! tests all grep for the same strings. `parc-sim` re-exports this module
//! as `parc_sim::kinds`; use the constants instead of string literals when
//! recording either kind of trace.

// ---- client-side call path (remoting) ----

/// A synchronous two-way remote call, client side, end to end.
pub const CALL: &str = "call";
/// A one-way post, client side.
pub const POST: &str = "post";
/// Request/reply encoding through a formatter.
pub const SERIALIZE: &str = "serialize";
/// Request/reply decoding through a formatter.
pub const DESERIALIZE: &str = "deserialize";
/// Handing the encoded frame to the transport (queue push, socket write).
pub const CHANNEL_SEND: &str = "channel.send";
/// Waiting for and reading the reply frame.
pub const CHANNEL_RECV: &str = "channel.recv";
/// One pipelined call on a multiplexed channel, send through demuxed
/// reply (covers the whole in-flight window, not just socket I/O).
pub const CHANNEL_PIPELINE: &str = "channel.pipeline";

// ---- channel metrics (gauge/counter names, not span kinds) ----

/// Gauge: calls currently in flight on multiplexed channels.
pub const INFLIGHT: &str = "channel.inflight";
/// Counter: buffer-pool checkouts served from the pool.
pub const BUFPOOL_HIT: &str = "bufpool.hit";
/// Counter: buffer-pool checkouts that had to allocate.
pub const BUFPOOL_MISS: &str = "bufpool.miss";

// ---- server-side dispatch path ----

/// Server-side handling of one frame: decode, route, invoke.
pub const DISPATCH: &str = "dispatch";
/// Encoding and sending the reply frame.
pub const REPLY: &str = "reply";
/// Histogram-only: time a frame spent queued before a dispatch worker
/// picked it up.
pub const QUEUE_WAIT: &str = "queue.wait";
/// Histogram-only: time a task spent queued in a [`ThreadPool`] before a
/// worker ran it.
pub const POOL_WAIT: &str = "pool.wait";

// ---- mailbox dispatch (per-object executors) ----

/// Histogram-only: time an invocation sat in its object's mailbox before
/// a dispatch worker began running it.
pub const MAILBOX_WAIT: &str = "dispatch.mailbox_wait";
/// Gauge: invocations enqueued in mailboxes and not yet completed.
pub const MAILBOX_DEPTH: &str = "dispatch.depth";
/// Counter: mailboxes a dispatch worker stole from a sibling's run queue.
pub const MAILBOX_STEAL: &str = "dispatch.steal";
/// Gauge: dispatch workers currently inside an invocation.
pub const MAILBOX_BUSY: &str = "dispatch.busy";

// ---- SCOOPP runtime (parc-core) ----

/// A proxy-object synchronous call (wraps the remoting `call`).
pub const PO_CALL: &str = "po.call";
/// A proxy-object asynchronous call on the local fast path.
pub const PO_LOCAL: &str = "po.local";
/// Shipping an aggregation buffer as one message.
pub const BATCH_FLUSH: &str = "batch.flush";
/// Creating an implementation object (local or via a remote factory).
pub const FACTORY_CREATE: &str = "factory.create";
/// One call served by a node's object manager.
pub const OM_DISPATCH: &str = "om.dispatch";
/// Histogram of measured per-call service time feeding the grain adapter.
pub const ADAPT_SERVICE: &str = "adapt.service";

// ---- adaptation-decision events ----

/// Event: the recommended aggregation factor changed
/// (`old=.. new=.. ewma_us=.. overhead_us=..`).
pub const AGG_SIZE_CHANGED: &str = "agg_size_changed";
/// Event: a new object was agglomerated locally (`object=.. reason=..`).
pub const AGGLOMERATE: &str = "agglomerate";
/// Event: an aggregation buffer was shipped (`calls=.. bytes=..`).
pub const BATCH_FLUSHED: &str = "batch_flushed";
/// Counter/event: the closed-loop batch controller halved its target
/// under server backpressure (`old=.. new=.. depth=..`).
pub const BATCH_SHRINK: &str = "batch.shrink";
/// Counter/event: the closed-loop batch controller doubled its target
/// with the remote queues drained (`old=.. new=.. depth=..`).
pub const BATCH_GROW: &str = "batch.grow";
/// Counter/event: an aggregation buffer was shipped because its oldest
/// call hit the max-linger deadline, not because it filled
/// (`calls=.. waited_us=..`).
pub const BATCH_LINGER: &str = "batch.linger_flush";

// ---- fault injection & recovery ----

/// Counter/event: a chaos fault was injected into a channel
/// (`kind=.. index=..`).
pub const FAULT_INJECTED: &str = "fault.injected";
/// Counter/event: a call or post was transparently retried after a
/// retryable failure (`attempt=..`).
pub const CALL_RETRIED: &str = "call.retried";
/// Counter/event: a broken TCP client connection was re-established and
/// its correlation slot table re-registered.
pub const CONN_RECONNECTED: &str = "conn.reconnected";
/// Counter/event: the runtime failure detector declared a node dead
/// (`node=..`).
pub const NODE_FAILED: &str = "node.failed";
/// Counter/event: a parallel object was re-created on a surviving node
/// (or degraded to local execution) after its home node died.
pub const OBJECT_FAILED_OVER: &str = "object.failed_over";
/// Histogram: nanoseconds from failure detection to a usable replacement
/// target (reconnect or failover completion).
pub const RECOVERY_LATENCY: &str = "recovery.latency";

// ---- multi-object reservations (claim/release) ----

/// Counter/event: a claim was granted on an object (`object=..`).
pub const CLAIM_ACQUIRED: &str = "claim.acquired";
/// Counter/event: a claim or reservation aborted — lease lapsed or a
/// partial acquisition was rolled back (`object=..`).
pub const CLAIM_ABORTED: &str = "claim.aborted";
/// Counter/event: a claim was released by its holder.
pub const CLAIM_RELEASED: &str = "claim.released";
/// Histogram: nanoseconds a claim request waited for the object to
/// become unclaimed before its grant.
pub const CLAIM_WAIT: &str = "claim.wait";

// ---- object directory, migration & rebalancing ----

/// Span: one load-probe sweep refreshing the `LeastLoaded` placement
/// cache (the only placement path that still performs RPCs).
pub const PLACEMENT_PROBE: &str = "placement.probe";
/// Gauge: current epoch of the published ring routing table.
pub const RING_EPOCH: &str = "ring.epoch";
/// Counter/event: a live migration began (`uri=.. from=.. to=..`).
pub const MIGRATION_STARTED: &str = "migration.started";
/// Counter/event: a live migration installed the object at its new home
/// (`uri=.. from=.. to=..`).
pub const MIGRATION_COMPLETED: &str = "migration.completed";
/// Counter/event: a live migration aborted with the object intact at the
/// source (`uri=.. reason=..`).
pub const MIGRATION_ABORTED: &str = "migration.aborted";
/// Histogram: nanoseconds from migration start to directory flip.
pub const MIGRATION_LATENCY: &str = "migration.latency";
/// Span: one end-to-end `migrate(uri, dst)` — quiesce, snapshot,
/// re-create, install forwarder, flip epoch.
pub const MIGRATION_MOVE: &str = "migration.move";
/// Counter: calls relayed through a migrated object's forwarding entry.
pub const DIRECTORY_FORWARD: &str = "directory.forward";
/// Gauge: forwarding entries currently installed (migrated objects whose
/// old name is still routable).
pub const DIRECTORY_FORWARDS: &str = "directory.forwards";
/// Counter/event: one rebalancer round examined the cluster
/// (`migrated=.. hot=..`).
pub const REBALANCE_ROUND: &str = "rebalance.round";

// ---- observability plane ----

/// Counter: ring records lost to overwrite (truncated-trace detector).
pub const RING_DROPPED: &str = "ring.dropped";
/// Event: the flight recorder wrote a post-mortem dump
/// (`reason=.. seq=..`).
pub const FLIGHT_DUMP: &str = "flight.dump";
/// One call served by a node's `/telemetry` well-known object.
pub const TELEMETRY_DISPATCH: &str = "telemetry.dispatch";
/// One cluster-wide poll by a `ClusterTelemetry` aggregator.
pub const TELEMETRY_POLL: &str = "telemetry.poll";

// ---- reactor transport ----

/// Counter: complete frames reassembled and dispatched by the reactor.
pub const REACTOR_FRAMES: &str = "reactor.frames";
/// Gauge: connections currently registered with the reactor pool.
pub const REACTOR_CONNS: &str = "reactor.conns";
/// Counter: idle parks taken by reactor threads (adaptive backoff).
pub const REACTOR_PARKS: &str = "reactor.parks";

// ---- baseline stacks ----

/// One RMI stub call (marshal → dispatch → unmarshal).
pub const RMI_CALL: &str = "rmi.call";
/// MPI buffered send.
pub const MPI_SEND: &str = "mpi.send";
/// MPI matched receive.
pub const MPI_RECV: &str = "mpi.recv";
/// `MPI_Pack` of a typed slice into the contiguous buffer.
pub const MPI_PACK: &str = "mpi.pack";
/// `MPI_Unpack` of a typed slice out of the contiguous buffer.
pub const MPI_UNPACK: &str = "mpi.unpack";

// ---- simulation vocabulary (parc-sim Trace) ----
//
// The simulator's deterministic traces use the same strings so a grep for
// e.g. `dispatch` matches both real and simulated runs. `SEND`/`RECV` are
// the virtual-wire hops (distinct from the real channel.* spans).

/// Simulated message enters a link.
pub const SEND: &str = "send";
/// Simulated message leaves a link.
pub const RECV: &str = "recv";
/// Simulated periodic event.
pub const TICK: &str = "tick";
/// Simulated external arrival.
pub const INJECT: &str = "inject";
/// Simulated same-node shortcut (no link crossed).
pub const LOOPBACK: &str = "loopback";

#[cfg(test)]
mod tests {
    #[test]
    fn vocabulary_is_distinct() {
        let all = [
            super::CALL,
            super::POST,
            super::SERIALIZE,
            super::DESERIALIZE,
            super::CHANNEL_SEND,
            super::CHANNEL_RECV,
            super::CHANNEL_PIPELINE,
            super::INFLIGHT,
            super::BUFPOOL_HIT,
            super::BUFPOOL_MISS,
            super::DISPATCH,
            super::REPLY,
            super::QUEUE_WAIT,
            super::POOL_WAIT,
            super::MAILBOX_WAIT,
            super::MAILBOX_DEPTH,
            super::MAILBOX_STEAL,
            super::MAILBOX_BUSY,
            super::PO_CALL,
            super::PO_LOCAL,
            super::BATCH_FLUSH,
            super::FACTORY_CREATE,
            super::OM_DISPATCH,
            super::ADAPT_SERVICE,
            super::AGG_SIZE_CHANGED,
            super::AGGLOMERATE,
            super::BATCH_FLUSHED,
            super::BATCH_SHRINK,
            super::BATCH_GROW,
            super::BATCH_LINGER,
            super::FAULT_INJECTED,
            super::CALL_RETRIED,
            super::CONN_RECONNECTED,
            super::NODE_FAILED,
            super::OBJECT_FAILED_OVER,
            super::RECOVERY_LATENCY,
            super::CLAIM_ACQUIRED,
            super::CLAIM_ABORTED,
            super::CLAIM_RELEASED,
            super::CLAIM_WAIT,
            super::PLACEMENT_PROBE,
            super::RING_EPOCH,
            super::MIGRATION_STARTED,
            super::MIGRATION_COMPLETED,
            super::MIGRATION_ABORTED,
            super::MIGRATION_LATENCY,
            super::MIGRATION_MOVE,
            super::DIRECTORY_FORWARD,
            super::DIRECTORY_FORWARDS,
            super::REBALANCE_ROUND,
            super::RING_DROPPED,
            super::FLIGHT_DUMP,
            super::TELEMETRY_DISPATCH,
            super::TELEMETRY_POLL,
            super::REACTOR_FRAMES,
            super::REACTOR_CONNS,
            super::REACTOR_PARKS,
            super::RMI_CALL,
            super::MPI_SEND,
            super::MPI_RECV,
            super::MPI_PACK,
            super::MPI_UNPACK,
            super::SEND,
            super::RECV,
            super::TICK,
            super::INJECT,
            super::LOOPBACK,
        ];
        let mut set = std::collections::BTreeSet::new();
        for k in all {
            assert!(set.insert(k), "duplicate kind {k}");
        }
    }
}
