//! Bounded deterministic tape shrinking.
//!
//! Works on the choice sequence alone: candidates are produced by
//! deleting blocks, zeroing blocks, and shrinking single entries (to 0,
//! half, and minus one). A candidate is accepted when the property still
//! fails on it and the tape got strictly smaller in the well-founded
//! `(length, lexicographic)` order — so the loop always terminates, and
//! the whole procedure is a pure function of the starting tape.

/// Outcome of a shrink run.
pub struct Shrunk {
    /// The smallest failing tape found.
    pub tape: Vec<u64>,
    /// The failure message observed on that tape, if any candidate ran.
    pub message: Option<String>,
    /// Number of candidate executions spent.
    pub attempts: u32,
}

/// Shrinks `tape` as far as `budget` candidate executions allow.
///
/// `fails` re-runs generator + property over a candidate tape and returns
/// the failure message when the property still fails on it.
pub fn shrink_tape(
    tape: Vec<u64>,
    budget: u32,
    mut fails: impl FnMut(&[u64]) -> Option<String>,
) -> Shrunk {
    let mut best = tape;
    let mut message = None;
    let mut attempts = 0u32;
    let mut try_candidate =
        |candidate: &[u64], best: &[u64], message: &mut Option<String>, attempts: &mut u32| -> bool {
            if *attempts >= budget || !smaller(candidate, best) {
                return false;
            }
            *attempts += 1;
            match fails(candidate) {
                Some(m) => {
                    *message = Some(m);
                    true
                }
                None => false,
            }
        };

    loop {
        let mut improved = false;

        // Pass 1: delete blocks, large to small (ddmin-style).
        let mut block = best.len().max(1);
        while block >= 1 {
            let mut start = 0;
            while start < best.len() {
                let mut candidate = best.clone();
                candidate.drain(start..(start + block).min(candidate.len()));
                if try_candidate(&candidate, &best, &mut message, &mut attempts) {
                    best = candidate;
                    improved = true;
                    // Indices shifted; rescan this block size from the top.
                    start = 0;
                } else {
                    start += block;
                }
            }
            if block == 1 {
                break;
            }
            block /= 2;
        }

        // Pass 2: zero whole blocks.
        let mut block = best.len().max(1);
        while block >= 1 {
            for start in (0..best.len()).step_by(block) {
                let end = (start + block).min(best.len());
                if best[start..end].iter().all(|&v| v == 0) {
                    continue;
                }
                let mut candidate = best.clone();
                candidate[start..end].fill(0);
                if try_candidate(&candidate, &best, &mut message, &mut attempts) {
                    best = candidate;
                    improved = true;
                }
            }
            if block == 1 {
                break;
            }
            block /= 2;
        }

        // Pass 3: shrink single entries toward zero.
        for idx in 0..best.len() {
            while best[idx] > 0 {
                let smaller_values = [0, best[idx] / 2, best[idx] - 1];
                let mut any = false;
                for v in smaller_values {
                    if v >= best[idx] {
                        continue;
                    }
                    let mut candidate = best.clone();
                    candidate[idx] = v;
                    if try_candidate(&candidate, &best, &mut message, &mut attempts) {
                        best = candidate;
                        improved = true;
                        any = true;
                        break;
                    }
                }
                if !any {
                    break;
                }
            }
        }

        if !improved || attempts >= budget {
            return Shrunk { tape: best, message, attempts };
        }
    }
}

/// Strictly-smaller in `(length, lexicographic)` order.
fn smaller(candidate: &[u64], best: &[u64]) -> bool {
    candidate.len() < best.len() || (candidate.len() == best.len() && candidate < best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_threshold_constraint_to_minimum() {
        // Fails whenever any entry is >= 10; the global minimum [10] is
        // reachable by deleting the other entries and decrementing.
        let start = vec![7, 15, 9, 23];
        let result = shrink_tape(start, 4096, |t| {
            t.iter().any(|&v| v >= 10).then(|| "entry too big".into())
        });
        assert_eq!(result.tape, vec![10]);
        assert_eq!(result.message.as_deref(), Some("entry too big"));
    }

    #[test]
    fn sum_constraint_reaches_a_local_minimum() {
        // Fails whenever the tape sums to >= 10. Tape shrinking cannot
        // merge entries, so the result is a local minimum: it still
        // fails, and no deletion or decrement keeps it failing — which
        // means the sum lands exactly on the threshold.
        let start = vec![7, 5, 9, 3];
        let result = shrink_tape(start, 4096, |t| {
            (t.iter().sum::<u64>() >= 10).then(|| "sum too big".into())
        });
        assert_eq!(result.tape.iter().sum::<u64>(), 10);
        assert!(result.tape.iter().all(|&v| v > 0), "zeroable entries must be gone");
        assert_eq!(result.message.as_deref(), Some("sum too big"));
    }

    #[test]
    fn budget_bounds_attempts() {
        let start: Vec<u64> = (0..256).collect();
        let result = shrink_tape(start, 16, |t| {
            (t.iter().sum::<u64>() >= 10).then(|| "sum too big".into())
        });
        assert!(result.attempts <= 16);
        assert!(result.tape.iter().sum::<u64>() >= 10, "result must still fail");
    }

    #[test]
    fn shrinking_is_deterministic() {
        let start = vec![901, 17, 0, 44, 3, 3, 99];
        let run = || {
            shrink_tape(start.clone(), 4096, |t| {
                t.iter().any(|&v| v % 7 == 3).then(|| "hit".into())
            })
            .tape
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn already_minimal_tape_survives() {
        let result = shrink_tape(vec![1], 100, |t| (t == [1]).then(|| "only this".into()));
        assert_eq!(result.tape, vec![1]);
    }
}
