//! # parc-testkit — deterministic in-tree property testing
//!
//! A hermetic replacement for the `proptest` suites the workspace used to
//! carry: no registry dependencies, no persisted regression files, and a
//! fully deterministic case stream driven by the same
//! [`SplitMix64`](parc_sim::SplitMix64) generator the simulator uses.
//!
//! ## Model
//!
//! A property is split into a **generator** (`FnMut(&mut Source) -> T`)
//! and a **predicate** (`Fn(&T)` that panics on violation, so plain
//! `assert!`/`assert_eq!` work). The [`Source`] records every bounded
//! draw as a *choice sequence* (a tape of `u64`s). When a case fails, the
//! tape — not the value — is shrunk: entries are deleted, zeroed, and
//! decremented, and the generator is replayed over each candidate tape.
//! Draws past the end of a shrunk tape read as zero, which by
//! construction maps every generator to its smallest output, so tape
//! shrinking is value shrinking without per-type shrinkers.
//!
//! ## Determinism and reproduction
//!
//! The root seed defaults to a fixed constant, so CI runs are
//! reproducible by construction. Each case derives its own seed from the
//! root stream; a failure report prints that case seed and the shrunk
//! counterexample, and `PARC_TESTKIT_SEED=<seed>` re-runs the whole
//! suite starting from any seed (decimal or `0x`-hex).
//!
//! ```
//! use parc_testkit::Config;
//!
//! Config::cases(64).check(
//!     |src| src.vec_of(0..20, |s| s.i32_in(-100..100)),
//!     |xs| {
//!         let mut sorted = xs.clone();
//!         sorted.sort_unstable();
//!         assert_eq!(sorted.len(), xs.len());
//!     },
//! );
//! ```

mod shrink;
mod source;

pub use source::Source;

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use parc_sim::SplitMix64;

/// Default root seed: an arbitrary fixed constant so every run draws the
/// same case stream.
pub const DEFAULT_SEED: u64 = 0x5eed_c0de_2005_9e37;

/// Default number of generated cases per property (proptest's default).
pub const DEFAULT_CASES: u32 = 256;

/// Default cap on shrink candidate executions per failure.
pub const DEFAULT_SHRINK_BUDGET: u32 = 2048;

/// Configuration for one property check.
#[derive(Debug, Clone)]
pub struct Config {
    cases: u32,
    seed: u64,
    shrink_budget: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: DEFAULT_CASES, seed: seed_from_env(), shrink_budget: DEFAULT_SHRINK_BUDGET }
    }
}

fn seed_from_env() -> u64 {
    let Ok(raw) = std::env::var("PARC_TESTKIT_SEED") else {
        return DEFAULT_SEED;
    };
    let parsed = match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("PARC_TESTKIT_SEED must be a u64, got {raw:?}"))
}

impl Config {
    /// The default configuration (256 cases, fixed seed).
    pub fn new() -> Config {
        Config::default()
    }

    /// Shorthand: default configuration with `n` cases.
    pub fn cases(n: u32) -> Config {
        Config { cases: n, ..Config::default() }
    }

    /// Overrides the root seed (the `PARC_TESTKIT_SEED` environment
    /// variable still wins over the built-in default, not over this).
    pub fn with_seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }

    /// Overrides the shrink budget (candidate executions per failure).
    pub fn with_shrink_budget(mut self, budget: u32) -> Config {
        self.shrink_budget = budget;
        self
    }

    /// Runs the property: `generate` builds an input from the [`Source`],
    /// `prop` panics if the input violates the property.
    ///
    /// # Panics
    ///
    /// Panics with the case seed and the shrunk counterexample when any
    /// generated case fails.
    pub fn check<T, G, P>(&self, mut generate: G, prop: P)
    where
        T: Debug,
        G: FnMut(&mut Source) -> T,
        P: Fn(&T),
    {
        let mut root = SplitMix64::new(self.seed);
        for case in 0..self.cases {
            // Case 0 uses the root seed itself, so re-running with
            // `PARC_TESTKIT_SEED=<reported case seed>` replays the failing
            // case first.
            let case_seed = if case == 0 { self.seed } else { root.next_u64() };
            let mut src = Source::record(case_seed);
            let input = generate(&mut src);
            if let Err(message) = run_prop(&prop, &input) {
                let tape = src.into_tape();
                self.report_failure(case, case_seed, tape, &mut generate, &prop, &message);
            }
        }
    }

    fn report_failure<T, G, P>(
        &self,
        case: u32,
        case_seed: u64,
        tape: Vec<u64>,
        generate: &mut G,
        prop: &P,
        original_message: &str,
    ) -> !
    where
        T: Debug,
        G: FnMut(&mut Source) -> T,
        P: Fn(&T),
    {
        // Suppress the default panic hook's per-candidate backtrace spam
        // while the shrinker probes; restore it for the final report.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let minimal = shrink::shrink_tape(tape, self.shrink_budget, |candidate| {
            let mut src = Source::replay(candidate);
            // A generator panic on a mutated tape means the candidate is
            // invalid, not that the property failed.
            let input = catch_unwind(AssertUnwindSafe(|| generate(&mut src))).ok()?;
            run_prop(prop, &input).err()
        });
        std::panic::set_hook(hook);
        let shrunk = generate(&mut Source::replay(&minimal.tape));
        panic!(
            "property failed (case {case} of {cases})\n\
             \x20 case seed:     {case_seed:#018x}\n\
             \x20 counterexample (shrunk, {attempts} attempts): {shrunk:?}\n\
             \x20 failure:       {message}\n\
             \x20 reproduce with PARC_TESTKIT_SEED={case_seed:#x} (replays this case first)",
            cases = self.cases,
            attempts = minimal.attempts,
            message = minimal.message.as_deref().unwrap_or(original_message),
        );
    }
}

/// Runs one property check with the default [`Config`].
pub fn check<T, G, P>(generate: G, prop: P)
where
    T: Debug,
    G: FnMut(&mut Source) -> T,
    P: Fn(&T),
{
    Config::default().check(generate, prop);
}

fn run_prop<T, P: Fn(&T)>(prop: &P, input: &T) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| prop(input))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        Config::cases(50).check(
            |src| {
                ran += 1;
                src.u64_any()
            },
            |v| {
                let _ = v;
            },
        );
        assert_eq!(ran, 50);
    }

    #[test]
    fn same_seed_generates_same_cases() {
        let collect = |seed: u64| {
            let mut cases = Vec::new();
            Config::cases(20).with_seed(seed).check(
                |src| {
                    let v = src.vec_of(0..8, |s| s.u64_in(0..1000));
                    cases.push(v.clone());
                    v
                },
                |_| {},
            );
            cases
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn failing_property_reports_seed_and_counterexample() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Config::cases(200).with_seed(3).check(
                |src| src.vec_of(0..64, |s| s.u64_in(0..256)),
                |xs| assert!(xs.iter().all(|&x| x < 16), "element >= 16"),
            );
        }));
        let message = match result {
            Ok(()) => panic!("property should have failed"),
            Err(payload) => *payload.downcast::<String>().expect("string payload"),
        };
        assert!(message.contains("case seed:"), "missing seed in: {message}");
        assert!(message.contains("counterexample"), "missing counterexample in: {message}");
        assert!(message.contains("element >= 16"), "missing failure text in: {message}");
    }

    /// Satellite: shrinking quality. A known-failing predicate over
    /// `Vec<u8>` must shrink to the minimal counterexample `[16]`,
    /// deterministically, from a fixed seed.
    #[test]
    fn shrinks_to_minimal_counterexample_deterministically() {
        let run = || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                Config::cases(200).with_seed(11).check(
                    |src| src.vec_of(0..64, |s| s.u64_in(0..256) as u8),
                    |xs| assert!(xs.iter().all(|&x| x < 16)),
                );
            }));
            match result {
                Ok(()) => panic!("property should have failed"),
                Err(payload) => *payload.downcast::<String>().expect("string payload"),
            }
        };
        let first = run();
        // The minimal vector violating "all elements < 16" is one element
        // of exactly 16.
        assert!(first.contains("[16]"), "not shrunk to minimal [16]: {first}");
        // Deterministic: the whole report reproduces byte-for-byte.
        assert_eq!(first, run());
    }

    #[test]
    fn top_level_check_uses_defaults() {
        check(|src| src.bool_any(), |b| assert!(*b || !*b));
    }
}
