//! The entropy source: a SplitMix64-backed *choice sequence*.
//!
//! Every draw records the **chosen value** (already mapped into its
//! bound), not the raw PRNG output. That makes the tape directly
//! shrinkable: decrementing an entry shrinks the drawn value by one,
//! zeroing it yields the generator's minimal choice, and deleting
//! entries shortens collections — replay fills exhausted tapes with
//! zeros, so every truncated tape is still a valid (smaller) input.

use std::ops::Range;

use parc_sim::SplitMix64;

enum Mode {
    /// Drawing fresh entropy from the PRNG and recording the tape.
    Record(SplitMix64),
    /// Replaying a (possibly mutated) tape; exhausted reads yield zero.
    Replay { tape: Vec<u64>, pos: usize },
}

/// A recording/replaying entropy source handed to generators.
pub struct Source {
    mode: Mode,
    tape: Vec<u64>,
}

impl Source {
    /// A fresh recording source seeded with `seed`.
    pub fn record(seed: u64) -> Source {
        Source { mode: Mode::Record(SplitMix64::new(seed)), tape: Vec::new() }
    }

    /// A replaying source over a fixed tape (used by the shrinker).
    pub fn replay(tape: &[u64]) -> Source {
        Source { mode: Mode::Replay { tape: tape.to_vec(), pos: 0 }, tape: Vec::new() }
    }

    /// The recorded choice sequence.
    pub(crate) fn into_tape(self) -> Vec<u64> {
        self.tape
    }

    /// One choice in `[0, bound)`. This is the primitive every other draw
    /// funnels through; the chosen value lands on the tape.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let choice = match &mut self.mode {
            Mode::Record(rng) => {
                let c = rng.next_below(bound);
                self.tape.push(c);
                c
            }
            Mode::Replay { tape, pos } => {
                let c = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                // A mutated tape may hold an entry from a different draw;
                // clamp instead of rejecting so every tape is valid.
                c.min(bound - 1)
            }
        };
        choice
    }

    /// A full-range `u64` (recorded verbatim on the tape).
    pub fn u64_any(&mut self) -> u64 {
        match &mut self.mode {
            Mode::Record(rng) => {
                let v = rng.next_u64();
                self.tape.push(v);
                v
            }
            Mode::Replay { tape, pos } => {
                let v = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        }
    }

    /// A full-range `i64` (zero-centred under shrinking: tape value 0 maps
    /// to 0).
    pub fn i64_any(&mut self) -> i64 {
        zigzag_decode(self.u64_any())
    }

    /// A full-range `i32`.
    pub fn i32_any(&mut self) -> i32 {
        self.i64_any() as i32
    }

    /// A uniform draw from a non-empty `u64` range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.next_below(range.end - range.start)
    }

    /// A uniform draw from a non-empty `usize` range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A uniform draw from a non-empty `i32` range; shrinks toward
    /// `range.start`.
    pub fn i32_in(&mut self, range: Range<i32>) -> i32 {
        assert!(range.start < range.end, "empty range");
        let span = (range.end as i64 - range.start as i64) as u64;
        (range.start as i64 + self.next_below(span) as i64) as i32
    }

    /// An arbitrary bit pattern as `f64` — includes NaN and infinities.
    pub fn f64_any(&mut self) -> f64 {
        f64::from_bits(self.u64_any())
    }

    /// An arbitrary non-NaN `f64` (bounded rejection; falls back to 0.0,
    /// which is also what a zeroed tape yields).
    pub fn f64_non_nan(&mut self) -> f64 {
        for _ in 0..8 {
            let v = self.f64_any();
            if !v.is_nan() {
                return v;
            }
        }
        0.0
    }

    /// An arbitrary finite `f64`.
    pub fn f64_finite(&mut self) -> f64 {
        for _ in 0..8 {
            let v = self.f64_any();
            if v.is_finite() {
                return v;
            }
        }
        0.0
    }

    /// A uniform float in `[0, 1)`; shrinks toward 0.
    pub fn f64_unit(&mut self) -> f64 {
        self.next_below(1 << 53) as f64 / (1u64 << 53) as f64
    }

    /// A boolean; shrinks toward `false`.
    pub fn bool_any(&mut self) -> bool {
        self.next_below(2) == 1
    }

    /// One index into `n` alternatives; shrinks toward alternative 0, so
    /// order `one_of` arms simplest-first.
    pub fn choice(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// A vector with length drawn from `len` and elements from `element`.
    pub fn vec_of<T>(
        &mut self,
        len: Range<usize>,
        mut element: impl FnMut(&mut Source) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len.start..len.end.max(len.start + 1));
        (0..n).map(|_| element(self)).collect()
    }

    /// A byte vector with length drawn from `len`.
    pub fn bytes(&mut self, len: Range<usize>) -> Vec<u8> {
        self.vec_of(len, |s| s.next_below(256) as u8)
    }

    /// A string of `len` characters drawn from `alphabet` (the in-tree
    /// stand-in for proptest's regex string strategies).
    ///
    /// # Panics
    ///
    /// Panics if `alphabet` is empty.
    pub fn string_of(&mut self, alphabet: &str, len: Range<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "alphabet must be non-empty");
        self.vec_of(len, |s| chars[s.choice(chars.len())]).into_iter().collect()
    }
}

impl std::fmt::Debug for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.mode {
            Mode::Record(_) => write!(f, "Source::Record({} draws)", self.tape.len()),
            Mode::Replay { tape, pos } => write!(f, "Source::Replay({pos}/{})", tape.len()),
        }
    }
}

/// Maps `0, 1, 2, 3, ...` to `0, -1, 1, -2, ...` so tape zero is value
/// zero and small tape entries stay small in magnitude.
fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_reproduces_draws() {
        let mut rec = Source::record(42);
        let a: Vec<u64> = (0..20).map(|i| rec.u64_in(0..(i + 1) * 10)).collect();
        let tape = rec.into_tape();
        let mut rep = Source::replay(&tape);
        let b: Vec<u64> = (0..20).map(|i| rep.u64_in(0..(i + 1) * 10)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_replay_reads_zero() {
        let mut src = Source::replay(&[5]);
        assert_eq!(src.next_below(10), 5);
        assert_eq!(src.next_below(10), 0);
        assert_eq!(src.u64_any(), 0);
        assert!(!src.bool_any());
        assert_eq!(src.i64_any(), 0);
        assert_eq!(src.f64_finite(), 0.0);
    }

    #[test]
    fn replay_clamps_out_of_bound_entries() {
        let mut src = Source::replay(&[u64::MAX]);
        assert_eq!(src.next_below(7), 6);
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut src = Source::record(9);
        for _ in 0..500 {
            let v = src.i32_in(-3..4);
            assert!((-3..4).contains(&v));
        }
        let mut src = Source::record(10);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[src.usize_in(0..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zigzag_is_zero_centred() {
        assert_eq!(zigzag_decode(0), 0);
        assert_eq!(zigzag_decode(1), -1);
        assert_eq!(zigzag_decode(2), 1);
        assert_eq!(zigzag_decode(u64::MAX), i64::MIN);
    }

    #[test]
    fn string_of_uses_alphabet() {
        let mut src = Source::record(3);
        let s = src.string_of("ab", 10..11);
        assert_eq!(s.len(), 10);
        assert!(s.chars().all(|c| c == 'a' || c == 'b'));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        Source::record(0).next_below(0);
    }
}
