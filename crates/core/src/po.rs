//! Proxy objects (PO) — the client half of a parallel object.
//!
//! A PO "represents a local or a remote parallel object and has the same
//! interface as the object it represents. It transparently replaces remote
//! parallel objects and forwards all method invocations" (§3.2, Fig. 3).
//! On top of plain forwarding the PO performs the grain-size adaptation:
//!
//! * asynchronous calls ([`Po::post`]) are buffered and shipped as one
//!   aggregate message once `maxCalls` accumulate (Fig. 7);
//! * on an *agglomerated* (local) object, asynchronous calls execute
//!   synchronously and serially in place — the intra-grain fast path of
//!   Fig. 3 call *b*;
//! * synchronous calls ([`Po::call`]) first flush the aggregation buffer so
//!   program order is preserved, then block for the result.

use std::sync::Arc;
use std::time::Instant;

use parc_remoting::channel::RemoteObject;
use parc_remoting::Invokable;
use parc_serial::Value;
use parc_sync::Mutex;

use crate::adapt::GrainAdapter;
use crate::batch::{encode_batch, BATCH_METHOD};
use crate::error::ParcError;
use crate::stats::RuntimeStats;

/// Where the implementation object lives.
pub(crate) enum Target {
    /// Agglomerated: the IO lives in this grain; calls are direct.
    Local(Arc<dyn Invokable>),
    /// Distributed: the IO lives on a node, reached through remoting.
    Remote {
        /// Transparent remote handle.
        remote: RemoteObject,
        /// Hosting node index.
        node: usize,
        /// Registered IO name (for URIs and diagnostics).
        io_name: String,
    },
}

/// A proxy object for one parallel object.
pub struct Po {
    id: u64,
    class: String,
    target: Target,
    buffer: Mutex<Vec<(String, Vec<Value>)>>,
    aggregation_factor: usize,
    adaptive: bool,
    adapter: Arc<GrainAdapter>,
    stats: RuntimeStats,
}

impl Po {
    pub(crate) fn new(
        id: u64,
        class: String,
        target: Target,
        aggregation_factor: usize,
        adaptive: bool,
        adapter: Arc<GrainAdapter>,
        stats: RuntimeStats,
    ) -> Po {
        Po {
            id,
            class,
            target,
            buffer: Mutex::new(Vec::new()),
            aggregation_factor,
            adaptive,
            adapter,
            stats,
        }
    }

    /// The runtime-wide parallel-object id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The object's class name.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// Hosting node, or `None` for an agglomerated (local) object.
    pub fn node(&self) -> Option<usize> {
        match &self.target {
            Target::Local(_) => None,
            Target::Remote { node, .. } => Some(*node),
        }
    }

    /// True when the object was agglomerated into the caller's grain.
    pub fn is_local(&self) -> bool {
        matches!(self.target, Target::Local(_))
    }

    /// The `inproc://` URI of a distributed object (so its reference can be
    /// sent as a method argument), or `None` for a local one.
    pub fn uri(&self) -> Option<String> {
        match &self.target {
            Target::Local(_) => None,
            Target::Remote { node, io_name, .. } => {
                Some(format!("inproc://node{node}/{io_name}"))
            }
        }
    }

    /// Effective `maxCalls` for this proxy right now.
    pub fn effective_aggregation(&self) -> usize {
        if self.adaptive {
            self.adapter.recommended_aggregation()
        } else {
            self.aggregation_factor
        }
    }

    /// Buffered-but-unsent asynchronous calls.
    pub fn pending(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Asynchronous method invocation — SCOOPP's "no value returned" form.
    ///
    /// On a distributed object the call is buffered and shipped when
    /// `maxCalls` accumulate (flush explicitly with [`Po::flush`]). On an
    /// agglomerated object it executes immediately, synchronously and
    /// serially (the parallelism was removed on purpose).
    ///
    /// # Errors
    ///
    /// Transport failures; for local objects, the method's own failure.
    pub fn post(&self, method: &str, args: Vec<Value>) -> Result<(), ParcError> {
        self.stats.record_async_call();
        match &self.target {
            Target::Local(io) => {
                let _span = parc_obs::Span::enter(parc_obs::kinds::PO_LOCAL);
                self.stats.record_local_fast_path();
                let start = Instant::now();
                io.invoke(method, &args)?;
                self.adapter.observe_call(start.elapsed());
                Ok(())
            }
            Target::Remote { .. } => {
                let mut buffer = self.buffer.lock();
                buffer.push((method.to_string(), args));
                if buffer.len() >= self.effective_aggregation() {
                    self.flush_locked(&mut buffer)?;
                }
                Ok(())
            }
        }
    }

    /// Ships any buffered asynchronous calls now.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn flush(&self) -> Result<(), ParcError> {
        let mut buffer = self.buffer.lock();
        self.flush_locked(&mut buffer)
    }

    fn flush_locked(&self, buffer: &mut Vec<(String, Vec<Value>)>) -> Result<(), ParcError> {
        if buffer.is_empty() {
            return Ok(());
        }
        let Target::Remote { remote, .. } = &self.target else {
            buffer.clear();
            return Ok(());
        };
        let _span = parc_obs::Span::enter(parc_obs::kinds::BATCH_FLUSH);
        if buffer.len() == 1 {
            let (method, args) = buffer.pop().expect("one element");
            let bytes = remote.post(&method, args)?;
            self.stats.record_message();
            parc_obs::event(parc_obs::kinds::BATCH_FLUSHED, || {
                format!("calls=1 bytes={bytes}")
            });
        } else {
            let calls = std::mem::take(buffer);
            let n = calls.len() as u64;
            // By-value encode: the buffered arguments move straight into
            // the wire value instead of being deep-cloned per flush.
            let batch = encode_batch(calls);
            // The channel reports the encoded size it put on the wire, so
            // instrumentation never serializes a second time.
            let bytes = remote.post(BATCH_METHOD, vec![batch])?;
            self.stats.record_batch(n);
            parc_obs::event(parc_obs::kinds::BATCH_FLUSHED, || {
                format!("calls={n} bytes={bytes}")
            });
        }
        Ok(())
    }

    /// Synchronous method invocation — SCOOPP's value-returning form.
    ///
    /// Flushes buffered asynchronous calls first so the server observes
    /// program order.
    ///
    /// # Errors
    ///
    /// Transport failures, server faults, or the method's own failure.
    pub fn call(&self, method: &str, args: Vec<Value>) -> Result<Value, ParcError> {
        self.stats.record_sync_call();
        match &self.target {
            Target::Local(io) => {
                let _span = parc_obs::Span::enter(parc_obs::kinds::PO_LOCAL);
                self.stats.record_local_fast_path();
                let start = Instant::now();
                let out = io.invoke(method, &args)?;
                self.adapter.observe_call(start.elapsed());
                Ok(out)
            }
            Target::Remote { remote, .. } => {
                let _span = parc_obs::Span::enter(parc_obs::kinds::PO_CALL);
                {
                    let mut buffer = self.buffer.lock();
                    self.flush_locked(&mut buffer)?;
                }
                let start = Instant::now();
                let out = remote.call(method, args)?;
                self.adapter.observe_call(start.elapsed());
                self.stats.record_message();
                Ok(out)
            }
        }
    }
}

impl Drop for Po {
    fn drop(&mut self) {
        // Best-effort flush, mirroring .NET's "lifetime managed by the
        // runtime": buffered one-way calls must not vanish silently.
        let _ = self.flush();
    }
}

impl std::fmt::Debug for Po {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Po")
            .field("id", &self.id)
            .field("class", &self.class)
            .field("node", &self.node())
            .field("local", &self.is_local())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_remoting::dispatcher::FnInvokable;

    fn local_po(factor: usize) -> (Po, Arc<Mutex<Vec<i32>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let io: Arc<dyn Invokable> = Arc::new(FnInvokable(move |_: &str, args: &[Value]| {
            log2.lock().push(args.first().and_then(Value::as_i32).unwrap_or(-1));
            Ok(Value::I32(99))
        }));
        let po = Po::new(
            1,
            "Test".into(),
            Target::Local(io),
            factor,
            false,
            Arc::new(GrainAdapter::mono_default()),
            RuntimeStats::new(),
        );
        (po, log)
    }

    #[test]
    fn local_posts_execute_immediately_in_order() {
        let (po, log) = local_po(16);
        for i in 0..5 {
            po.post("work", vec![Value::I32(i)]).unwrap();
        }
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
        assert_eq!(po.pending(), 0, "local objects never buffer");
        assert!(po.is_local());
        assert_eq!(po.node(), None);
        assert_eq!(po.uri(), None);
    }

    #[test]
    fn local_call_returns_value_and_records_stats() {
        let (po, _log) = local_po(1);
        assert_eq!(po.call("work", vec![Value::I32(7)]).unwrap(), Value::I32(99));
        assert_eq!(po.id(), 1);
        assert_eq!(po.class(), "Test");
    }

    #[test]
    fn adapter_sees_local_call_durations() {
        let (po, _) = local_po(1);
        po.post("work", vec![Value::I32(1)]).unwrap();
        po.call("work", vec![Value::I32(2)]).unwrap();
        assert_eq!(po.adapter.samples(), 2);
    }

    #[test]
    fn debug_is_informative() {
        let (po, _) = local_po(1);
        let s = format!("{po:?}");
        assert!(s.contains("Test") && s.contains("local"));
    }

    // Remote-target behaviour (buffering, batch flush, ordering with sync
    // calls) is exercised end-to-end in runtime.rs tests, where a real
    // inproc endpoint hosts the IO.
}
