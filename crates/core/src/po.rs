//! Proxy objects (PO) — the client half of a parallel object.
//!
//! A PO "represents a local or a remote parallel object and has the same
//! interface as the object it represents. It transparently replaces remote
//! parallel objects and forwards all method invocations" (§3.2, Fig. 3).
//! On top of plain forwarding the PO performs the grain-size adaptation:
//!
//! * asynchronous calls ([`Po::post`]) are buffered and shipped as one
//!   aggregate message once `maxCalls` accumulate (Fig. 7);
//! * on an *agglomerated* (local) object, asynchronous calls execute
//!   synchronously and serially in place — the intra-grain fast path of
//!   Fig. 3 call *b*;
//! * synchronous calls ([`Po::call`]) first flush the aggregation buffer so
//!   program order is preserved, then block for the result.
//!
//! The PO is also the recovery point of the fault-tolerance layer: when a
//! send fails with a transient error and the runtime handed the proxy a
//! failover handle, the PO re-creates its implementation object on a
//! surviving node (or, with no survivors, locally in the caller's grain)
//! and retries — the caller never observes the node death. The re-created
//! object starts from the class constructor; state the lost instance had
//! accumulated is gone. See DESIGN.md §10 for the full fault model.

use std::sync::Arc;
use std::time::Instant;

use parc_remoting::channel::RemoteObject;
use parc_remoting::Invokable;
use parc_serial::Value;
use parc_sync::{Mutex, RwLock};

use crate::adapt::GrainAdapter;
use crate::batch::{encode_batch, BatchDispatcher, BATCH_METHOD};
use crate::error::ParcError;
use crate::runtime::FailoverState;
use crate::stats::RuntimeStats;

/// Where the implementation object lives.
pub(crate) enum Target {
    /// Agglomerated: the IO lives in this grain; calls are direct.
    Local(Arc<dyn Invokable>),
    /// Distributed: the IO lives on a node, reached through remoting.
    Remote {
        /// Transparent remote handle.
        remote: RemoteObject,
        /// Hosting node index.
        node: usize,
        /// Registered IO name (for URIs and diagnostics).
        io_name: String,
    },
}

/// A proxy object for one parallel object.
pub struct Po {
    id: u64,
    class: String,
    target: RwLock<Target>,
    buffer: Mutex<Vec<(String, Vec<Value>)>>,
    aggregation_factor: usize,
    adaptive: bool,
    adapter: Arc<GrainAdapter>,
    stats: RuntimeStats,
    failover: Option<Arc<FailoverState>>,
}

impl Po {
    pub(crate) fn new(
        id: u64,
        class: String,
        target: Target,
        aggregation_factor: usize,
        adaptive: bool,
        adapter: Arc<GrainAdapter>,
        stats: RuntimeStats,
        failover: Option<Arc<FailoverState>>,
    ) -> Po {
        Po {
            id,
            class,
            target: RwLock::new(target),
            buffer: Mutex::new(Vec::new()),
            aggregation_factor,
            adaptive,
            adapter,
            stats,
            failover,
        }
    }

    /// The runtime-wide parallel-object id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The object's class name.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// Hosting node, or `None` for an agglomerated (local) object. A
    /// failed-over proxy reports its *current* node.
    pub fn node(&self) -> Option<usize> {
        match &*self.target.read() {
            Target::Local(_) => None,
            Target::Remote { node, .. } => Some(*node),
        }
    }

    /// True when the object lives in the caller's grain — agglomerated at
    /// creation, or degraded to local execution after every node died.
    pub fn is_local(&self) -> bool {
        matches!(&*self.target.read(), Target::Local(_))
    }

    /// The `inproc://` URI of a distributed object (so its reference can be
    /// sent as a method argument), or `None` for a local one.
    pub fn uri(&self) -> Option<String> {
        match &*self.target.read() {
            Target::Local(_) => None,
            Target::Remote { node, io_name, .. } => {
                Some(format!("inproc://node{node}/{io_name}"))
            }
        }
    }

    /// Effective `maxCalls` for this proxy right now.
    pub fn effective_aggregation(&self) -> usize {
        if self.adaptive {
            self.adapter.recommended_aggregation()
        } else {
            self.aggregation_factor
        }
    }

    /// Buffered-but-unsent asynchronous calls.
    pub fn pending(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Asynchronous method invocation — SCOOPP's "no value returned" form.
    ///
    /// On a distributed object the call is buffered and shipped when
    /// `maxCalls` accumulate (flush explicitly with [`Po::flush`]). On an
    /// agglomerated object it executes immediately, synchronously and
    /// serially (the parallelism was removed on purpose).
    ///
    /// # Errors
    ///
    /// Transport failures; for local objects, the method's own failure.
    pub fn post(&self, method: &str, args: Vec<Value>) -> Result<(), ParcError> {
        self.stats.record_async_call();
        {
            let target = self.target.read();
            if let Target::Local(io) = &*target {
                let _span = parc_obs::Span::enter(parc_obs::kinds::PO_LOCAL);
                self.stats.record_local_fast_path();
                let start = Instant::now();
                io.invoke(method, &args)?;
                self.adapter.observe_call(start.elapsed());
                return Ok(());
            }
        }
        let mut buffer = self.buffer.lock();
        buffer.push((method.to_string(), args));
        if buffer.len() >= self.effective_aggregation() {
            self.flush_buffer(&mut buffer)?;
        }
        Ok(())
    }

    /// Ships any buffered asynchronous calls now.
    ///
    /// # Errors
    ///
    /// Transport failures (after failover, if armed, exhausted every node).
    pub fn flush(&self) -> Result<(), ParcError> {
        let mut buffer = self.buffer.lock();
        self.flush_buffer(&mut buffer)
    }

    fn flush_buffer(&self, buffer: &mut Vec<(String, Vec<Value>)>) -> Result<(), ParcError> {
        if buffer.is_empty() {
            return Ok(());
        }
        let _span = parc_obs::Span::enter(parc_obs::kinds::BATCH_FLUSH);
        // Build the wire form once, by value: the buffered arguments move
        // straight into it instead of being deep-cloned per flush. A failed
        // send hands the payload back (`post_reclaim`), so a failover retry
        // re-ships the same calls to the replacement target.
        let (method, initial, n) = if buffer.len() == 1 {
            let (m, a) = buffer.pop().expect("one element");
            (m, a, 1u64)
        } else {
            let calls = std::mem::take(buffer);
            let n = calls.len() as u64;
            (BATCH_METHOD.to_string(), vec![encode_batch(calls)], n)
        };
        let mut args = Some(initial);
        loop {
            let (err, failed_node) = {
                let target = self.target.read();
                match &*target {
                    Target::Local(io) => {
                        // Degraded to local synchronous execution: run the
                        // shipped form in place — a BatchDispatcher accepts
                        // plain and aggregate calls alike.
                        let payload = args.take().expect("payload survives failed sends");
                        BatchDispatcher::new(Arc::clone(io)).invoke(&method, &payload)?;
                        return Ok(());
                    }
                    Target::Remote { remote, node, .. } => {
                        let payload = args.take().expect("payload survives failed sends");
                        match remote.post_reclaim(&method, payload) {
                            Ok(bytes) => {
                                if n == 1 {
                                    self.stats.record_message();
                                } else {
                                    self.stats.record_batch(n);
                                }
                                // The channel reports the encoded size it
                                // put on the wire, so instrumentation never
                                // serializes a second time.
                                parc_obs::event(parc_obs::kinds::BATCH_FLUSHED, || {
                                    format!("calls={n} bytes={bytes}")
                                });
                                return Ok(());
                            }
                            Err((e, reclaimed)) => {
                                args = Some(reclaimed);
                                (ParcError::from(e), *node)
                            }
                        }
                    }
                }
            };
            if !self.try_failover(failed_node, &err) {
                return Err(err);
            }
        }
    }

    /// Synchronous method invocation — SCOOPP's value-returning form.
    ///
    /// Flushes buffered asynchronous calls first so the server observes
    /// program order.
    ///
    /// # Errors
    ///
    /// Transport failures, server faults, or the method's own failure.
    pub fn call(&self, method: &str, args: Vec<Value>) -> Result<Value, ParcError> {
        self.stats.record_sync_call();
        let mut args = Some(args);
        loop {
            // Flush outside the target guard: a flush-triggered failover
            // needs the write half of the target lock.
            {
                let mut buffer = self.buffer.lock();
                self.flush_buffer(&mut buffer)?;
            }
            let (err, failed_node) = {
                let target = self.target.read();
                match &*target {
                    Target::Local(io) => {
                        let _span = parc_obs::Span::enter(parc_obs::kinds::PO_LOCAL);
                        self.stats.record_local_fast_path();
                        let start = Instant::now();
                        let out = io
                            .invoke(method, args.as_ref().expect("args survive failed attempts"))?;
                        self.adapter.observe_call(start.elapsed());
                        return Ok(out);
                    }
                    Target::Remote { remote, node, .. } => {
                        let _span = parc_obs::Span::enter(parc_obs::kinds::PO_CALL);
                        let start = Instant::now();
                        let payload = args.take().expect("args survive failed attempts");
                        match remote.call_reclaim_located(method, payload) {
                            Ok((out, moved)) => {
                                self.adapter.observe_call(start.elapsed());
                                self.stats.record_message();
                                drop(target);
                                if let Some(uri) = moved {
                                    // The reply came through a forwarding
                                    // entry: the object migrated. Repoint
                                    // at its new home so later calls skip
                                    // the extra hop. Order-safe: every
                                    // earlier post was relayed two-way
                                    // before this reply was produced.
                                    self.repoint(&uri);
                                }
                                return Ok(out);
                            }
                            Err((e, reclaimed)) => {
                                args = Some(reclaimed);
                                (ParcError::from(e), *node)
                            }
                        }
                    }
                }
            };
            if !self.try_failover(failed_node, &err) {
                return Err(err);
            }
        }
    }

    /// Points this proxy at `uri` (an object's post-migration home).
    /// Best-effort: a proxy without a failover handle (no channel opener)
    /// keeps calling through the forwarding entry, which stays correct.
    fn repoint(&self, uri: &str) {
        let Some(failover) = &self.failover else { return };
        let Ok(new_target) = failover.target_from_uri(uri) else { return };
        let mut target = self.target.write();
        // Never demote a proxy that degraded to local execution.
        if matches!(&*target, Target::Remote { .. }) {
            *target = new_target;
        }
    }

    /// Runtime-driven rewire after an explicit [`migrate`] — the initiator
    /// already knows the new home, so it skips the forwarded-call hop.
    ///
    /// [`migrate`]: crate::ParcRuntime::migrate
    pub(crate) fn rewire(&self, new_target: Target) {
        let mut target = self.target.write();
        if matches!(&*target, Target::Remote { .. }) {
            *target = new_target;
        }
    }

    /// Attempts to move this proxy's implementation object off
    /// `failed_node` after `err`. Returns `true` when the caller should
    /// retry: either this thread installed a replacement target, or a
    /// racing thread already moved the object. Non-transient errors,
    /// proxies without a failover handle, and failed re-creation return
    /// `false` so the original error surfaces.
    fn try_failover(&self, failed_node: usize, err: &ParcError) -> bool {
        let transient = matches!(err, ParcError::Remoting(e) if e.is_retryable());
        if !transient {
            return false;
        }
        let Some(failover) = &self.failover else {
            return false;
        };
        let started = Instant::now();
        let mut target = self.target.write();
        match &*target {
            Target::Remote { node, .. } if *node == failed_node => {}
            // Someone else already moved the object (or it degraded to
            // local); retry against whatever is installed now.
            _ => return true,
        }
        match failover.replace_target(&self.class, failed_node) {
            Ok(new_target) => {
                let destination = match &new_target {
                    Target::Remote { node, .. } => format!("node{node}"),
                    Target::Local(_) => "local".to_string(),
                };
                *target = new_target;
                drop(target);
                parc_obs::counter(parc_obs::kinds::OBJECT_FAILED_OVER).incr();
                parc_obs::histogram(parc_obs::kinds::RECOVERY_LATENCY)
                    .record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                parc_obs::event(parc_obs::kinds::OBJECT_FAILED_OVER, || {
                    format!(
                        "object={} class={} from=node{failed_node} to={destination}",
                        self.id, self.class
                    )
                });
                // Post-mortem flight recorder: with PARC_OBS_DUMP_DIR
                // set, freeze the ring and event log at the failover.
                parc_obs::flight_dump("object.failed_over");
                true
            }
            Err(_) => false,
        }
    }
}

impl Drop for Po {
    fn drop(&mut self) {
        // Best-effort flush, mirroring .NET's "lifetime managed by the
        // runtime": buffered one-way calls must not vanish silently.
        let _ = self.flush();
    }
}

impl std::fmt::Debug for Po {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Po")
            .field("id", &self.id)
            .field("class", &self.class)
            .field("node", &self.node())
            .field("local", &self.is_local())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_remoting::dispatcher::FnInvokable;

    fn local_po(factor: usize) -> (Po, Arc<Mutex<Vec<i32>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let io: Arc<dyn Invokable> = Arc::new(FnInvokable(move |_: &str, args: &[Value]| {
            log2.lock().push(args.first().and_then(Value::as_i32).unwrap_or(-1));
            Ok(Value::I32(99))
        }));
        let po = Po::new(
            1,
            "Test".into(),
            Target::Local(io),
            factor,
            false,
            Arc::new(GrainAdapter::mono_default()),
            RuntimeStats::new(),
            None,
        );
        (po, log)
    }

    #[test]
    fn local_posts_execute_immediately_in_order() {
        let (po, log) = local_po(16);
        for i in 0..5 {
            po.post("work", vec![Value::I32(i)]).unwrap();
        }
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
        assert_eq!(po.pending(), 0, "local objects never buffer");
        assert!(po.is_local());
        assert_eq!(po.node(), None);
        assert_eq!(po.uri(), None);
    }

    #[test]
    fn local_call_returns_value_and_records_stats() {
        let (po, _log) = local_po(1);
        assert_eq!(po.call("work", vec![Value::I32(7)]).unwrap(), Value::I32(99));
        assert_eq!(po.id(), 1);
        assert_eq!(po.class(), "Test");
    }

    #[test]
    fn adapter_sees_local_call_durations() {
        let (po, _) = local_po(1);
        po.post("work", vec![Value::I32(1)]).unwrap();
        po.call("work", vec![Value::I32(2)]).unwrap();
        assert_eq!(po.adapter.samples(), 2);
    }

    #[test]
    fn debug_is_informative() {
        let (po, _) = local_po(1);
        let s = format!("{po:?}");
        assert!(s.contains("Test") && s.contains("local"));
    }

    // Remote-target behaviour (buffering, batch flush, ordering with sync
    // calls) and failover (node death, re-creation, local degradation) are
    // exercised end-to-end in runtime.rs tests, where real inproc
    // endpoints host the IOs.
}
