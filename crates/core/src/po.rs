//! Proxy objects (PO) — the client half of a parallel object.
//!
//! A PO "represents a local or a remote parallel object and has the same
//! interface as the object it represents. It transparently replaces remote
//! parallel objects and forwards all method invocations" (§3.2, Fig. 3).
//! On top of plain forwarding the PO performs the grain-size adaptation:
//!
//! * asynchronous calls ([`Po::post`]) are buffered and shipped as one
//!   aggregate message once `maxCalls` accumulate (Fig. 7); on an adaptive
//!   proxy `maxCalls` is driven by the closed-loop
//!   [`BatchController`](crate::adapt::BatchController) once reply frames
//!   start reporting the server's dispatch depth, and a max-linger
//!   deadline (checked at every enqueue) ships a partial buffer whose
//!   oldest call has waited too long, so low-rate callers are never
//!   stranded behind a large batch target;
//! * aggregate messages travel *flat*: each buffered call is serialized
//!   once at enqueue time into a recycled pool buffer
//!   ([`FLAT_BATCH_METHOD`]), so a flush ships bytes instead of
//!   re-walking a `Value` list (DESIGN.md §14);
//! * on an *agglomerated* (local) object, asynchronous calls execute
//!   synchronously and serially in place — the intra-grain fast path of
//!   Fig. 3 call *b*;
//! * synchronous calls ([`Po::call`]) first flush the aggregation buffer so
//!   program order is preserved, then block for the result.
//!
//! The PO is also the recovery point of the fault-tolerance layer: when a
//! send fails with a transient error and the runtime handed the proxy a
//! failover handle, the PO re-creates its implementation object on a
//! surviving node (or, with no survivors, locally in the caller's grain)
//! and retries — the caller never observes the node death. The re-created
//! object starts from the class constructor; state the lost instance had
//! accumulated is gone. See DESIGN.md §10 for the full fault model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parc_remoting::channel::RemoteObject;
use parc_remoting::{bufpool, Invokable};
use parc_serial::{BinaryFormatter, Value};
use parc_sync::{Mutex, RwLock};

use crate::adapt::{BatchConfig, BatchController, GrainAdapter};
use crate::batch::{encode_flat_call, BatchDispatcher, FLAT_BATCH_METHOD};
use crate::error::ParcError;
use crate::runtime::FailoverState;
use crate::stats::RuntimeStats;

/// Where the implementation object lives.
pub(crate) enum Target {
    /// Agglomerated: the IO lives in this grain; calls are direct.
    Local(Arc<dyn Invokable>),
    /// Distributed: the IO lives on a node, reached through remoting.
    Remote {
        /// Transparent remote handle.
        remote: RemoteObject,
        /// Hosting node index.
        node: usize,
        /// Registered IO name (for URIs and diagnostics).
        io_name: String,
    },
}

/// The aggregation buffer: calls awaiting shipment as one message.
///
/// The first call is held unserialized so a buffer holding exactly one
/// call flushes as a plain post (aggregation factor 1 never batches, and a
/// single-call flush carries no batch framing). From the second call on,
/// everything is serialized *flat* into a recycled pool buffer — the first
/// call moves in first, preserving FIFO order — and a flush ships those
/// bytes as the one `Bytes` argument of [`FLAT_BATCH_METHOD`].
#[derive(Default)]
struct AggBuffer {
    first: Option<(String, Vec<Value>)>,
    flat: Option<Vec<u8>>,
    count: usize,
    /// When the oldest buffered call was enqueued — the linger clock.
    first_at: Option<Instant>,
}

/// A proxy object for one parallel object.
pub struct Po {
    id: u64,
    class: String,
    target: RwLock<Target>,
    buffer: Mutex<AggBuffer>,
    aggregation_factor: usize,
    adaptive: bool,
    adapter: Arc<GrainAdapter>,
    controller: BatchController,
    /// `LinkFeedback::depth_samples()` at the controller's last decision,
    /// so the controller steps once per fresh depth report instead of once
    /// per post (deterministic for a fixed feedback tape).
    feedback_seen: AtomicU64,
    formatter: BinaryFormatter,
    stats: RuntimeStats,
    failover: Option<Arc<FailoverState>>,
}

impl Po {
    pub(crate) fn new(
        id: u64,
        class: String,
        target: Target,
        aggregation_factor: usize,
        adaptive: bool,
        adapter: Arc<GrainAdapter>,
        stats: RuntimeStats,
        failover: Option<Arc<FailoverState>>,
    ) -> Po {
        Po {
            id,
            class,
            target: RwLock::new(target),
            buffer: Mutex::new(AggBuffer::default()),
            aggregation_factor,
            adaptive,
            adapter,
            controller: BatchController::new(BatchConfig::from_env()),
            feedback_seen: AtomicU64::new(0),
            formatter: BinaryFormatter::new(),
            stats,
            failover,
        }
    }

    /// The runtime-wide parallel-object id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The object's class name.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// Hosting node, or `None` for an agglomerated (local) object. A
    /// failed-over proxy reports its *current* node.
    pub fn node(&self) -> Option<usize> {
        match &*self.target.read() {
            Target::Local(_) => None,
            Target::Remote { node, .. } => Some(*node),
        }
    }

    /// True when the object lives in the caller's grain — agglomerated at
    /// creation, or degraded to local execution after every node died.
    pub fn is_local(&self) -> bool {
        matches!(&*self.target.read(), Target::Local(_))
    }

    /// The `inproc://` URI of a distributed object (so its reference can be
    /// sent as a method argument), or `None` for a local one.
    pub fn uri(&self) -> Option<String> {
        match &*self.target.read() {
            Target::Local(_) => None,
            Target::Remote { node, io_name, .. } => {
                Some(format!("inproc://node{node}/{io_name}"))
            }
        }
    }

    /// Effective `maxCalls` for this proxy right now.
    ///
    /// Fixed-factor proxies return their configured factor. Adaptive
    /// proxies start on the open-loop adapter recommendation and switch to
    /// the closed-loop [`BatchController`] as soon as the channel has both
    /// an RTT estimate and a piggybacked server-depth report (and the
    /// adapter a call-cost estimate) — from then on the reply stream
    /// drives the batch size.
    pub fn effective_aggregation(&self) -> usize {
        if !self.adaptive {
            return self.aggregation_factor;
        }
        if let Some(closed) = self.closed_loop_aggregation() {
            return closed;
        }
        self.adapter.recommended_aggregation()
    }

    /// The closed-loop batch size, or `None` while any input signal is
    /// still missing. The controller steps once per *fresh* depth report.
    fn closed_loop_aggregation(&self) -> Option<usize> {
        let feedback = match &*self.target.read() {
            Target::Remote { remote, .. } => remote.channel().feedback()?,
            Target::Local(_) => return None,
        };
        let rtt = feedback.rtt()?;
        let (pending, _busiest) = feedback.depth()?;
        let cost = self.adapter.estimated_call_cost()?;
        let sample = feedback.depth_samples();
        if self.feedback_seen.swap(sample, Ordering::Relaxed) == sample {
            return Some(self.controller.current());
        }
        Some(self.controller.observe(rtt, cost, pending))
    }

    /// The closed-loop controller steering this proxy's batch size.
    pub fn batch_controller(&self) -> &BatchController {
        &self.controller
    }

    /// Buffered-but-unsent asynchronous calls.
    pub fn pending(&self) -> usize {
        self.buffer.lock().count
    }

    /// Asynchronous method invocation — SCOOPP's "no value returned" form.
    ///
    /// On a distributed object the call is buffered and shipped when
    /// `maxCalls` accumulate (flush explicitly with [`Po::flush`]). On an
    /// agglomerated object it executes immediately, synchronously and
    /// serially (the parallelism was removed on purpose).
    ///
    /// # Errors
    ///
    /// Transport failures; for local objects, the method's own failure.
    pub fn post(&self, method: &str, args: Vec<Value>) -> Result<(), ParcError> {
        self.stats.record_async_call();
        {
            let target = self.target.read();
            if let Target::Local(io) = &*target {
                let _span = parc_obs::Span::enter(parc_obs::kinds::PO_LOCAL);
                self.stats.record_local_fast_path();
                let start = Instant::now();
                io.invoke(method, &args)?;
                self.adapter.observe_call(start.elapsed());
                return Ok(());
            }
        }
        let mut buffer = self.buffer.lock();
        self.enqueue(&mut buffer, method, args)?;
        if buffer.count >= self.effective_aggregation() {
            self.flush_buffer(&mut buffer)?;
        } else if let Some(waited) =
            buffer.first_at.map(|t| t.elapsed()).filter(|w| *w >= self.controller.config().linger)
        {
            // The oldest buffered call outlived the max-linger deadline:
            // ship the partial batch rather than strand one-ways behind a
            // batch target this caller's rate will never reach.
            parc_obs::counter(parc_obs::kinds::BATCH_LINGER).incr();
            parc_obs::event(parc_obs::kinds::BATCH_LINGER, || {
                format!("calls={} waited_us={}", buffer.count, waited.as_micros())
            });
            self.flush_buffer(&mut buffer)?;
        }
        Ok(())
    }

    /// Appends one call to the aggregation buffer. The first call is held
    /// as values; the second call's arrival moves it into the flat pool
    /// buffer (ahead of the newcomer, preserving FIFO order) and every
    /// later call is serialized straight in.
    fn enqueue(
        &self,
        buffer: &mut AggBuffer,
        method: &str,
        args: Vec<Value>,
    ) -> Result<(), ParcError> {
        if buffer.count == 0 {
            buffer.first = Some((method.to_string(), args));
            buffer.first_at = Some(Instant::now());
            buffer.count = 1;
            return Ok(());
        }
        if buffer.flat.is_none() {
            // Satellite: the flat encoding goes through the channel buffer
            // pool, so steady-state flushes reuse warmed wire buffers.
            let mut flat = bufpool::global().checkout_with_capacity(256);
            let (m, a) = buffer.first.take().expect("count 1 holds the first call");
            encode_flat_call(&self.formatter, &mut flat, &m, &a)
                .map_err(ParcError::from)?;
            buffer.flat = Some(flat);
        }
        let flat = buffer.flat.as_mut().expect("installed above");
        encode_flat_call(&self.formatter, flat, method, &args).map_err(ParcError::from)?;
        buffer.count += 1;
        Ok(())
    }

    /// Ships any buffered asynchronous calls now.
    ///
    /// # Errors
    ///
    /// Transport failures (after failover, if armed, exhausted every node).
    pub fn flush(&self) -> Result<(), ParcError> {
        let mut buffer = self.buffer.lock();
        self.flush_buffer(&mut buffer)
    }

    fn flush_buffer(&self, buffer: &mut AggBuffer) -> Result<(), ParcError> {
        if buffer.count == 0 {
            return Ok(());
        }
        let _span = parc_obs::Span::enter(parc_obs::kinds::BATCH_FLUSH);
        // Build the wire form once, by value. A single call ships plain; a
        // filled buffer ships its pre-serialized flat bytes — the per-call
        // encoding already happened at enqueue time, so the flush itself
        // moves one `Bytes` value. A failed send hands the payload back
        // (`post_reclaim*`), so a failover retry re-ships the same calls
        // to the replacement target.
        let n = buffer.count as u64;
        buffer.count = 0;
        buffer.first_at = None;
        let (method, initial) = if n == 1 {
            buffer.first.take().expect("one buffered call")
        } else {
            let flat = buffer.flat.take().expect("multi-call buffers are flat");
            (FLAT_BATCH_METHOD.to_string(), vec![Value::Bytes(flat)])
        };
        let mut args = Some(initial);
        loop {
            let (err, failed_node) = {
                let target = self.target.read();
                match &*target {
                    Target::Local(io) => {
                        // Degraded to local synchronous execution: run the
                        // shipped form in place — a BatchDispatcher accepts
                        // plain and aggregate calls alike.
                        let payload = args.take().expect("payload survives failed sends");
                        BatchDispatcher::new(Arc::clone(io)).invoke(&method, &payload)?;
                        if n > 1 {
                            Self::reclaim_flat(payload);
                        }
                        return Ok(());
                    }
                    Target::Remote { remote, node, .. } => {
                        let payload = args.take().expect("payload survives failed sends");
                        match remote.post_reclaim_always(&method, payload) {
                            Ok((bytes, sent)) => {
                                if n == 1 {
                                    self.stats.record_message();
                                } else {
                                    self.stats.record_batch(n);
                                }
                                // The channel reports the encoded size it
                                // put on the wire, so instrumentation never
                                // serializes a second time; the flat buffer
                                // comes back for pool recycling.
                                if n > 1 {
                                    Self::reclaim_flat(sent);
                                }
                                parc_obs::event(parc_obs::kinds::BATCH_FLUSHED, || {
                                    format!("calls={n} bytes={bytes}")
                                });
                                return Ok(());
                            }
                            Err((e, reclaimed)) => {
                                args = Some(reclaimed);
                                (ParcError::from(e), *node)
                            }
                        }
                    }
                }
            };
            if !self.try_failover(failed_node, &err) {
                return Err(err);
            }
        }
    }

    /// Returns a shipped flat batch buffer to the channel buffer pool
    /// (callers only pass multi-call payloads, whose single value is the
    /// flat `Bytes` buffer).
    fn reclaim_flat(mut payload: Vec<Value>) {
        if payload.len() == 1 {
            if let Some(Value::Bytes(flat)) = payload.pop() {
                bufpool::global().checkin(flat);
            }
        }
    }

    /// Synchronous method invocation — SCOOPP's value-returning form.
    ///
    /// Flushes buffered asynchronous calls first so the server observes
    /// program order.
    ///
    /// # Errors
    ///
    /// Transport failures, server faults, or the method's own failure.
    pub fn call(&self, method: &str, args: Vec<Value>) -> Result<Value, ParcError> {
        self.stats.record_sync_call();
        let mut args = Some(args);
        loop {
            // Flush outside the target guard: a flush-triggered failover
            // needs the write half of the target lock.
            {
                let mut buffer = self.buffer.lock();
                self.flush_buffer(&mut buffer)?;
            }
            let (err, failed_node) = {
                let target = self.target.read();
                match &*target {
                    Target::Local(io) => {
                        let _span = parc_obs::Span::enter(parc_obs::kinds::PO_LOCAL);
                        self.stats.record_local_fast_path();
                        let start = Instant::now();
                        let out = io
                            .invoke(method, args.as_ref().expect("args survive failed attempts"))?;
                        self.adapter.observe_call(start.elapsed());
                        return Ok(out);
                    }
                    Target::Remote { remote, node, .. } => {
                        let _span = parc_obs::Span::enter(parc_obs::kinds::PO_CALL);
                        let start = Instant::now();
                        let payload = args.take().expect("args survive failed attempts");
                        match remote.call_reclaim_located(method, payload) {
                            Ok((out, moved)) => {
                                self.adapter.observe_call(start.elapsed());
                                self.stats.record_message();
                                drop(target);
                                if let Some(uri) = moved {
                                    // The reply came through a forwarding
                                    // entry: the object migrated. Repoint
                                    // at its new home so later calls skip
                                    // the extra hop. Order-safe: every
                                    // earlier post was relayed two-way
                                    // before this reply was produced.
                                    self.repoint(&uri);
                                }
                                return Ok(out);
                            }
                            Err((e, reclaimed)) => {
                                args = Some(reclaimed);
                                (ParcError::from(e), *node)
                            }
                        }
                    }
                }
            };
            if !self.try_failover(failed_node, &err) {
                return Err(err);
            }
        }
    }

    /// Points this proxy at `uri` (an object's post-migration home).
    /// Best-effort: a proxy without a failover handle (no channel opener)
    /// keeps calling through the forwarding entry, which stays correct.
    fn repoint(&self, uri: &str) {
        let Some(failover) = &self.failover else { return };
        let Ok(new_target) = failover.target_from_uri(uri) else { return };
        let mut target = self.target.write();
        // Never demote a proxy that degraded to local execution.
        if matches!(&*target, Target::Remote { .. }) {
            *target = new_target;
        }
    }

    /// Runtime-driven rewire after an explicit [`migrate`] — the initiator
    /// already knows the new home, so it skips the forwarded-call hop.
    ///
    /// [`migrate`]: crate::ParcRuntime::migrate
    pub(crate) fn rewire(&self, new_target: Target) {
        let mut target = self.target.write();
        if matches!(&*target, Target::Remote { .. }) {
            *target = new_target;
        }
    }

    /// Attempts to move this proxy's implementation object off
    /// `failed_node` after `err`. Returns `true` when the caller should
    /// retry: either this thread installed a replacement target, or a
    /// racing thread already moved the object. Non-transient errors,
    /// proxies without a failover handle, and failed re-creation return
    /// `false` so the original error surfaces.
    fn try_failover(&self, failed_node: usize, err: &ParcError) -> bool {
        let transient = matches!(err, ParcError::Remoting(e) if e.is_retryable());
        if !transient {
            return false;
        }
        let Some(failover) = &self.failover else {
            return false;
        };
        let started = Instant::now();
        let mut target = self.target.write();
        match &*target {
            Target::Remote { node, .. } if *node == failed_node => {}
            // Someone else already moved the object (or it degraded to
            // local); retry against whatever is installed now.
            _ => return true,
        }
        match failover.replace_target(&self.class, failed_node) {
            Ok(new_target) => {
                let destination = match &new_target {
                    Target::Remote { node, .. } => format!("node{node}"),
                    Target::Local(_) => "local".to_string(),
                };
                *target = new_target;
                drop(target);
                parc_obs::counter(parc_obs::kinds::OBJECT_FAILED_OVER).incr();
                parc_obs::histogram(parc_obs::kinds::RECOVERY_LATENCY)
                    .record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                parc_obs::event(parc_obs::kinds::OBJECT_FAILED_OVER, || {
                    format!(
                        "object={} class={} from=node{failed_node} to={destination}",
                        self.id, self.class
                    )
                });
                // Post-mortem flight recorder: with PARC_OBS_DUMP_DIR
                // set, freeze the ring and event log at the failover.
                parc_obs::flight_dump("object.failed_over");
                true
            }
            Err(_) => false,
        }
    }
}

impl Drop for Po {
    fn drop(&mut self) {
        // Best-effort flush, mirroring .NET's "lifetime managed by the
        // runtime": buffered one-way calls must not vanish silently.
        let _ = self.flush();
    }
}

impl std::fmt::Debug for Po {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Po")
            .field("id", &self.id)
            .field("class", &self.class)
            .field("node", &self.node())
            .field("local", &self.is_local())
            .field("pending", &self.pending())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use parc_remoting::channel::ClientChannel;
    use parc_remoting::dispatcher::FnInvokable;
    use parc_remoting::inproc::InprocNetwork;
    use parc_remoting::tcp::{DispatchMode, TcpClientChannel, TcpServerChannel};
    use parc_remoting::{
        ChaosChannel, FaultPlan, FaultSpec, ObjectUri, ReactorClientChannel,
        ReactorServerChannel,
    };

    fn local_po(factor: usize) -> (Po, Arc<Mutex<Vec<i32>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let io: Arc<dyn Invokable> = Arc::new(FnInvokable(move |_: &str, args: &[Value]| {
            log2.lock().push(args.first().and_then(Value::as_i32).unwrap_or(-1));
            Ok(Value::I32(99))
        }));
        let po = Po::new(
            1,
            "Test".into(),
            Target::Local(io),
            factor,
            false,
            Arc::new(GrainAdapter::mono_default()),
            RuntimeStats::new(),
            None,
        );
        (po, log)
    }

    #[test]
    fn local_posts_execute_immediately_in_order() {
        let (po, log) = local_po(16);
        for i in 0..5 {
            po.post("work", vec![Value::I32(i)]).unwrap();
        }
        assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
        assert_eq!(po.pending(), 0, "local objects never buffer");
        assert!(po.is_local());
        assert_eq!(po.node(), None);
        assert_eq!(po.uri(), None);
    }

    #[test]
    fn local_call_returns_value_and_records_stats() {
        let (po, _log) = local_po(1);
        assert_eq!(po.call("work", vec![Value::I32(7)]).unwrap(), Value::I32(99));
        assert_eq!(po.id(), 1);
        assert_eq!(po.class(), "Test");
    }

    #[test]
    fn adapter_sees_local_call_durations() {
        let (po, _) = local_po(1);
        po.post("work", vec![Value::I32(1)]).unwrap();
        po.call("work", vec![Value::I32(2)]).unwrap();
        assert_eq!(po.adapter.samples(), 2);
    }

    #[test]
    fn debug_is_informative() {
        let (po, _) = local_po(1);
        let s = format!("{po:?}");
        assert!(s.contains("Test") && s.contains("local"));
    }

    // Remote-target behaviour (buffering, batch flush, ordering with sync
    // calls) and failover (node death, re-creation, local degradation) are
    // exercised end-to-end in runtime.rs tests, where real inproc
    // endpoints host the IOs.

    /// A server-side recorder: `work` appends its first argument, `len`
    /// returns how many calls have applied so far. Wrapped in a
    /// [`BatchDispatcher`] (like the runtime wraps every IO) so it
    /// understands flat aggregate messages.
    fn recorder() -> (Arc<dyn Invokable>, Arc<Mutex<Vec<i32>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let io: Arc<dyn Invokable> = Arc::new(FnInvokable(move |method: &str, args: &[Value]| {
            let mut log = log2.lock();
            match method {
                "len" => Ok(Value::I32(log.len() as i32)),
                _ => {
                    log.push(args.first().and_then(Value::as_i32).unwrap_or(-1));
                    Ok(Value::Null)
                }
            }
        }));
        (Arc::new(BatchDispatcher::new(io)) as Arc<dyn Invokable>, log)
    }

    fn remote_po(
        channel: Arc<dyn ClientChannel>,
        factor: usize,
        adaptive: bool,
        adapter: Arc<GrainAdapter>,
        stats: RuntimeStats,
    ) -> Po {
        Po::new(
            9,
            "Test".into(),
            Target::Remote {
                remote: RemoteObject::new(channel, "obj"),
                node: 0,
                io_name: "obj".into(),
            },
            factor,
            adaptive,
            adapter,
            stats,
            None,
        )
    }

    #[test]
    fn linger_deadline_ships_partial_buffers() {
        let net = InprocNetwork::new();
        let ep = net.create_endpoint_with_workers("linger", 2).unwrap();
        let (io, log) = recorder();
        ep.objects().register_singleton("obj", io);
        let uri: ObjectUri = "inproc://linger/obj".parse().unwrap();
        let chan = net.open_with_timeout(&uri, Duration::from_secs(5)).unwrap();
        let stats = RuntimeStats::new();
        let mut po = remote_po(chan, 100, false, Arc::new(GrainAdapter::mono_default()), stats.clone());
        po.controller = BatchController::new(BatchConfig {
            linger: Duration::from_millis(1),
            ..BatchConfig::default()
        });

        po.post("work", vec![Value::I32(0)]).unwrap();
        assert_eq!(po.pending(), 1, "far below the factor, the first call waits");
        std::thread::sleep(Duration::from_millis(3));
        po.post("work", vec![Value::I32(1)]).unwrap();
        assert_eq!(po.pending(), 0, "the second enqueue found the deadline expired");

        // The returned sync call proves both posts applied, in order.
        assert_eq!(po.call("len", vec![]).unwrap(), Value::I32(2));
        assert_eq!(*log.lock(), vec![0, 1]);
        let snap = stats.snapshot();
        assert_eq!(snap.batches_sent, 1, "the linger flush shipped one aggregate");
        assert_eq!(snap.calls_in_batches, 2);
    }

    #[test]
    fn closed_loop_controller_engages_once_feedback_arrives() {
        let net = InprocNetwork::new();
        let ep = net.create_endpoint_with_workers("closed", 2).unwrap();
        let (io, _log) = recorder();
        ep.objects().register_singleton("obj", io);
        let uri: ObjectUri = "inproc://closed/obj".parse().unwrap();
        let chan = net.open_with_timeout(&uri, Duration::from_secs(5)).unwrap();
        let adapter = Arc::new(GrainAdapter::mono_default());
        let po = remote_po(chan, 1, true, Arc::clone(&adapter), RuntimeStats::new());

        assert!(
            po.closed_loop_aggregation().is_none(),
            "before any reply there is no RTT or depth signal"
        );
        for _ in 0..8 {
            adapter.observe_call(Duration::from_micros(1));
        }
        // One sync call populates the channel's RTT EWMA and piggybacked
        // depth report; the loop closes on the next sizing decision.
        po.call("len", vec![]).unwrap();
        let agg = po.effective_aggregation();
        assert!(agg >= 2, "cheap calls over a real wire should batch, got {agg}");
        assert!(po.batch_controller().grows() >= 1, "drained queues grow the target");
    }

    /// Delay-only chaos: messages are slowed (on the sending thread, like
    /// a congested link) but never dropped or duplicated, so exact FIFO
    /// assertions remain valid.
    fn chaos(inner: Arc<dyn ClientChannel>) -> Arc<dyn ClientChannel> {
        let spec = FaultSpec { delay: 0.5, delay_ms: 2, ..FaultSpec::default() };
        Arc::new(ChaosChannel::new(inner, Arc::new(FaultPlan::new(7, spec))))
    }

    /// Drives a Po through full-batch flushes, linger flushes and
    /// sync-triggered flushes over `channel`, asserting per-object FIFO
    /// and sync-after-async ordering throughout.
    fn ordering_survives_chaos(channel: Arc<dyn ClientChannel>, log: Arc<Mutex<Vec<i32>>>) {
        let mut po =
            remote_po(channel, 8, false, Arc::new(GrainAdapter::mono_default()), RuntimeStats::new());
        po.controller = BatchController::new(BatchConfig {
            linger: Duration::from_millis(1),
            ..BatchConfig::default()
        });
        let mut posted = 0;
        for burst in 0..6 {
            for _ in 0..3 {
                po.post("work", vec![Value::I32(posted)]).unwrap();
                posted += 1;
            }
            if burst % 2 == 0 {
                // Outlive the linger deadline, then let the next enqueue
                // discover it and ship a partial (4 < 8) batch.
                std::thread::sleep(Duration::from_millis(3));
                po.post("work", vec![Value::I32(posted)]).unwrap();
                posted += 1;
                assert_eq!(po.pending(), 0, "linger flush shipped the partial buffer");
            } else {
                // Sync-after-async: the call first flushes the buffer,
                // and its reply proves every earlier post applied.
                assert_eq!(po.call("len", vec![]).unwrap(), Value::I32(posted));
            }
        }
        po.flush().unwrap();
        assert_eq!(po.call("len", vec![]).unwrap(), Value::I32(posted));
        assert_eq!(*log.lock(), (0..posted).collect::<Vec<i32>>());
    }

    #[test]
    fn chaos_delays_never_reorder_mux_batches() {
        let server =
            TcpServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox { workers: 2 })
                .unwrap();
        let (io, log) = recorder();
        server.objects().register_singleton("obj", io);
        let addr = server.local_addr().to_string();
        // Pool pinned to one socket: a wider pool may legally spread
        // one-way posts across connections, voiding the FIFO assertion.
        let client =
            TcpClientChannel::connect_pooled_with_timeout(&addr, 1, Duration::from_secs(5))
                .unwrap();
        ordering_survives_chaos(chaos(Arc::new(client)), log);
    }

    #[test]
    fn chaos_delays_never_reorder_reactor_batches() {
        let server =
            ReactorServerChannel::bind_with_mode("127.0.0.1:0", DispatchMode::Mailbox { workers: 2 })
                .unwrap();
        let (io, log) = recorder();
        server.objects().register_singleton("obj", io);
        let addr = server.local_addr().to_string();
        let client =
            ReactorClientChannel::connect_with_timeout(&addr, Duration::from_secs(5)).unwrap();
        ordering_survives_chaos(chaos(Arc::new(client)), log);
    }
}
