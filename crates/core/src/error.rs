//! Error type for the SCOOPP runtime.

use std::error::Error;
use std::fmt;

use parc_remoting::RemotingError;
use parc_serial::SerialError;

/// Failures raised by the ParC# runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ParcError {
    /// No class registered under the requested name.
    UnknownClass {
        /// The requested class name.
        class: String,
    },
    /// The underlying remoting stack failed.
    Remoting(RemotingError),
    /// Marshalling failed inside the runtime itself.
    Serial(SerialError),
    /// Invalid runtime configuration.
    Config {
        /// What was wrong.
        detail: String,
    },
    /// A skeleton (farm/pipeline) protocol violation.
    Skeleton {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ParcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParcError::UnknownClass { class } => {
                write!(f, "no parallel-object class registered as {class:?}")
            }
            ParcError::Remoting(e) => write!(f, "remoting failure: {e}"),
            ParcError::Serial(e) => write!(f, "marshalling failure: {e}"),
            ParcError::Config { detail } => write!(f, "bad runtime configuration: {detail}"),
            ParcError::Skeleton { detail } => write!(f, "skeleton protocol violation: {detail}"),
        }
    }
}

impl Error for ParcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParcError::Remoting(e) => Some(e),
            ParcError::Serial(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RemotingError> for ParcError {
    fn from(e: RemotingError) -> Self {
        ParcError::Remoting(e)
    }
}

impl From<SerialError> for ParcError {
    fn from(e: SerialError) -> Self {
        ParcError::Serial(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain() {
        let e = ParcError::from(RemotingError::timed_out(
            std::time::Duration::from_secs(1),
            std::time::Duration::from_secs(1),
        ));
        assert!(e.source().is_some());
        assert!(ParcError::UnknownClass { class: "X".into() }.source().is_none());
    }

    #[test]
    fn is_error_send_sync() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<ParcError>();
    }

    #[test]
    fn displays_nonempty() {
        for e in [
            ParcError::UnknownClass { class: "C".into() },
            ParcError::Remoting(RemotingError::timed_out(
                std::time::Duration::from_secs(1),
                std::time::Duration::from_secs(1),
            )),
            ParcError::Serial(SerialError::BadMagic { expected: "binary" }),
            ParcError::Config { detail: "d".into() },
            ParcError::Skeleton { detail: "d".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
