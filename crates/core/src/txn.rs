//! Multi-object reservations — the client half of the claim engine.
//!
//! The server half ([`parc_remoting::reserve`]) turns each object's
//! one-in-flight mailbox slot into a mutual-exclusion primitive; this
//! module supplies the discipline that makes compound operations safe:
//! [`ParcRuntime::reserve`] acquires claims on a set of objects **in
//! global canonical URI order**. Sorting first imposes a total order on
//! resources, so two reservations can never wait on each other in a
//! cycle — deadlock is structurally impossible, no detector needed.
//!
//! The returned [`Reservation`] is an RAII guard: while it lives, every
//! call it makes flows through private claim aliases (foreign calls park
//! in the objects' mailbox slots), and dropping it releases every claim
//! in reverse order. Each claim carries a lease, so a holder that dies —
//! client panic, node kill mid-reservation — simply stops renewing and
//! the objects are reclaimed at TTL; a dropped guard on a dead node
//! fails fast and leaves cleanup to the lease.
//!
//! [`ParcRuntime::atomically`] is the compound-op combinator: reserve,
//! run a closure against the guard, release — the shape Farm workers and
//! Pipeline stages use for cross-object steps (e.g. a transfer between
//! two accounts held by different stages).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parc_remoting::channel::{ChannelProvider, RemoteObject};
use parc_remoting::reserve::{CLAIM_METHOD, RELEASE_METHOD};
use parc_remoting::RemotingError;
use parc_serial::Value;

use crate::error::ParcError;
use crate::runtime::ParcRuntime;

/// Bounded attempts per claim. `__claim` is idempotent per claim id, so
/// re-sending after a dropped reply is safe; after this many transport
/// failures the whole reservation aborts (releasing what it holds).
const CLAIM_ATTEMPTS: u32 = 8;

/// Backoff before retry `attempt` (1, 2, 4, … ms, capped at 32 ms).
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(1 << attempt.min(5))
}

static NEXT_CLAIM_ID: AtomicU64 = AtomicU64::new(1);

/// One claimed object: the URI the caller named it by and the proxy to
/// its private claim alias.
struct ClaimHandle {
    uri: String,
    alias: RemoteObject,
}

/// An RAII guard over a set of claimed objects.
///
/// While the guard lives, [`Reservation::call`]/[`Reservation::post`]
/// reach the objects through their claim aliases — serialized with each
/// other, interference-free from every other client. Dropping the guard
/// releases all claims (reverse acquisition order, best effort); if the
/// release cannot be delivered — the hosting node died mid-reservation —
/// the claim's lease lapses server-side and the mailbox slot is
/// reclaimed without the client's help.
pub struct Reservation {
    claim_id: String,
    claims: Vec<ClaimHandle>,
    released: bool,
}

impl Reservation {
    /// The claim id shared by every claim in this reservation.
    pub fn claim_id(&self) -> &str {
        &self.claim_id
    }

    /// The claimed URIs, in acquisition (canonical) order.
    pub fn uris(&self) -> Vec<&str> {
        self.claims.iter().map(|h| h.uri.as_str()).collect()
    }

    fn handle(&self, uri: &str) -> Result<&ClaimHandle, ParcError> {
        self.claims.iter().find(|h| h.uri == uri).ok_or_else(|| ParcError::Config {
            detail: format!("{uri} is not part of this reservation"),
        })
    }

    /// Synchronous call on a claimed object (named by the URI it was
    /// reserved under). Renews the claim's lease.
    ///
    /// # Errors
    ///
    /// [`RemotingError::LeaseExpired`] when the claim lapsed (the holder
    /// stalled past the TTL — the object has been reclaimed); transport
    /// failures; [`ParcError::Config`] for a URI outside the reservation.
    pub fn call(&self, uri: &str, method: &str, args: Vec<Value>) -> Result<Value, ParcError> {
        Ok(self.handle(uri)?.alias.call(method, args)?)
    }

    /// [`Reservation::call`] for an idempotent method: transient
    /// transport failures retry under the proxy's retry policy.
    ///
    /// # Errors
    ///
    /// As [`Reservation::call`].
    pub fn call_idempotent(
        &self,
        uri: &str,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, ParcError> {
        Ok(self.handle(uri)?.alias.call_idempotent(method, args)?)
    }

    /// One-way post to a claimed object. Still travels the claim alias
    /// (and renews the lease), so posts serialize with the holder's
    /// calls and with nobody else's.
    ///
    /// # Errors
    ///
    /// As [`Reservation::call`].
    pub fn post(&self, uri: &str, method: &str, args: Vec<Value>) -> Result<(), ParcError> {
        self.handle(uri)?.alias.post(method, args)?;
        Ok(())
    }

    /// Releases every claim now, in reverse acquisition order, and
    /// reports the first delivery failure (after attempting all of
    /// them). A failed release is not a leak: the lease reclaims the
    /// object at TTL.
    ///
    /// # Errors
    ///
    /// The first release whose delivery failed.
    pub fn release(mut self) -> Result<(), ParcError> {
        self.released = true;
        let mut first_err = None;
        for handle in self.claims.iter().rev() {
            // Releasing twice is a no-op server-side, so retrying a
            // possibly-delivered release is safe.
            if let Err(e) = handle.alias.call_idempotent(RELEASE_METHOD, vec![]) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e.into()),
        }
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        if self.released {
            return;
        }
        for handle in self.claims.iter().rev() {
            // Best effort, no retries: a dead endpoint fails fast here
            // and the lease handles reclamation server-side.
            let _ = handle.alias.call(RELEASE_METHOD, vec![]);
        }
    }
}

impl std::fmt::Debug for Reservation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reservation")
            .field("claim_id", &self.claim_id)
            .field("uris", &self.uris())
            .finish()
    }
}

impl ParcRuntime {
    /// Claims every object in `uris` and returns the guard. Acquisition
    /// is strictly sequential in canonical (sorted, deduplicated) URI
    /// order — the total order on resources that makes deadlock
    /// impossible no matter how many clients reserve overlapping sets in
    /// adversarial orders.
    ///
    /// A claim on an object that is mid-migration parks behind the move
    /// and is granted at the object's new home (the grant reply carries
    /// the forwarding address); a claim that cannot complete aborts the
    /// whole reservation, releasing every claim already held.
    ///
    /// # Errors
    ///
    /// URI parse failures; transport failures that survive bounded
    /// retry. On error nothing stays claimed.
    pub fn reserve(&self, uris: &[&str]) -> Result<Reservation, ParcError> {
        let mut canonical: Vec<String> = uris.iter().map(|u| u.to_string()).collect();
        canonical.sort();
        canonical.dedup();
        let claim_id = format!("r{}", NEXT_CLAIM_ID.fetch_add(1, Ordering::Relaxed));
        let mut claims: Vec<ClaimHandle> = Vec::with_capacity(canonical.len());
        for uri in &canonical {
            match self.acquire_claim(uri, &claim_id) {
                Ok(handle) => claims.push(handle),
                Err(e) => {
                    // Abort: hand back everything acquired so far, in
                    // reverse order, before surfacing the failure.
                    for held in claims.iter().rev() {
                        let _ = held.alias.call_idempotent(RELEASE_METHOD, vec![]);
                    }
                    return Err(e);
                }
            }
        }
        Ok(Reservation { claim_id, claims, released: false })
    }

    /// The compound-op combinator: reserves `uris`, runs `f` against the
    /// guard, then releases. Release delivery failures are swallowed —
    /// the lease reclaims the objects — so the closure's own result is
    /// what the caller sees. This is the idiom for Farm workers and
    /// Pipeline stages whose step spans several objects.
    ///
    /// # Errors
    ///
    /// Reservation failures; whatever `f` returns.
    pub fn atomically<T>(
        &self,
        uris: &[&str],
        f: impl FnOnce(&Reservation) -> Result<T, ParcError>,
    ) -> Result<T, ParcError> {
        let guard = self.reserve(uris)?;
        let result = f(&guard);
        let _ = guard.release();
        result
    }

    /// Acquires one claim, re-opening the channel on every attempt (a
    /// killed endpoint or chaos-poisoned wrapper must not doom the
    /// retry) and following a `Moved` grant to the object's new home.
    fn acquire_claim(&self, uri: &str, claim_id: &str) -> Result<ClaimHandle, ParcError> {
        let parsed: parc_remoting::ObjectUri = uri.parse()?;
        let mut authority = parsed.authority().to_string();
        let object = parsed.object().to_string();
        let mut last_err = ParcError::Remoting(RemotingError::EndpointNotFound {
            endpoint: authority.clone(),
        });
        for attempt in 0..CLAIM_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(backoff(attempt));
            }
            let target: parc_remoting::ObjectUri =
                format!("inproc://{authority}/{object}").parse()?;
            let chan = match self.network().open(&target) {
                Ok(chan) => chan,
                Err(e) => {
                    last_err = e.into();
                    continue;
                }
            };
            let remote = RemoteObject::new(chan, object.clone());
            match remote
                .call_reclaim_located(CLAIM_METHOD, vec![Value::Str(claim_id.to_string())])
            {
                Ok((value, moved)) => {
                    let alias = value
                        .as_str()
                        .ok_or(ParcError::Skeleton {
                            detail: "claim grant returned a non-string alias".into(),
                        })?
                        .to_string();
                    if let Some(new_uri) = moved {
                        // The object migrated; its gate (and our alias)
                        // now live at the destination.
                        let relocated: parc_remoting::ObjectUri = new_uri.parse()?;
                        authority = relocated.authority().to_string();
                    }
                    let alias_uri: parc_remoting::ObjectUri =
                        format!("inproc://{authority}/{alias}").parse()?;
                    let chan = self.network().open(&alias_uri)?;
                    return Ok(ClaimHandle {
                        uri: uri.to_string(),
                        alias: RemoteObject::new(chan, alias),
                    });
                }
                Err((e, _reclaimed)) => {
                    if !e.is_retryable() {
                        return Err(e.into());
                    }
                    last_err = e.into();
                }
            }
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_remoting::dispatcher::FnInvokable;
    use std::sync::Arc;

    fn counter_runtime(nodes: usize) -> ParcRuntime {
        let rt = ParcRuntime::builder().nodes(nodes).build().unwrap();
        rt.register_class("Cell", || {
            let v = parc_sync::Mutex::new(0i64);
            Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
                "add" => {
                    let mut v = v.lock();
                    *v += args.first().and_then(Value::as_i64).unwrap_or(0);
                    Ok(Value::I64(*v))
                }
                "get" => Ok(Value::I64(*v.lock())),
                _ => Err(RemotingError::MethodNotFound {
                    object: "Cell".into(),
                    method: method.into(),
                }),
            }))
        });
        rt
    }

    #[test]
    fn reserve_claims_in_canonical_order_and_serves_calls() {
        let rt = counter_runtime(2);
        let a = rt.create_on("Cell", 0).unwrap();
        let b = rt.create_on("Cell", 1).unwrap();
        let (ua, ub) = (a.uri().unwrap(), b.uri().unwrap());
        // Pass the URIs in reverse: reserve must canonicalize.
        let res = rt.reserve(&[&ub, &ua, &ub]).unwrap();
        let mut sorted = vec![ua.clone(), ub.clone()];
        sorted.sort();
        assert_eq!(res.uris(), sorted.iter().map(String::as_str).collect::<Vec<_>>());
        assert_eq!(res.call(&ua, "add", vec![Value::I64(5)]).unwrap(), Value::I64(5));
        assert_eq!(res.call(&ub, "add", vec![Value::I64(7)]).unwrap(), Value::I64(7));
        res.release().unwrap();
        // Released: ordinary proxies reach the objects again.
        assert_eq!(a.call("get", vec![]).unwrap(), Value::I64(5));
    }

    #[test]
    fn foreign_uri_is_rejected() {
        let rt = counter_runtime(1);
        let a = rt.create_on("Cell", 0).unwrap();
        let ua = a.uri().unwrap();
        let res = rt.reserve(&[&ua]).unwrap();
        assert!(res.call("inproc://node0/nope", "get", vec![]).is_err());
    }

    #[test]
    fn drop_releases_claims() {
        let rt = counter_runtime(1);
        let a = rt.create_on("Cell", 0).unwrap();
        let ua = a.uri().unwrap();
        drop(rt.reserve(&[&ua]).unwrap());
        // If the drop leaked the claim this direct call would park until
        // the (1 s default) lease lapsed; a released object answers
        // immediately.
        assert_eq!(a.call("get", vec![]).unwrap(), Value::I64(0));
    }

    #[test]
    fn atomically_runs_the_closure_under_claims() {
        let rt = counter_runtime(2);
        let a = rt.create_on("Cell", 0).unwrap();
        let b = rt.create_on("Cell", 1).unwrap();
        let (ua, ub) = (a.uri().unwrap(), b.uri().unwrap());
        let moved = rt
            .atomically(&[&ua, &ub], |res| {
                res.call(&ua, "add", vec![Value::I64(-3)])?;
                res.call(&ub, "add", vec![Value::I64(3)])?;
                Ok(3)
            })
            .unwrap();
        assert_eq!(moved, 3);
        assert_eq!(a.call("get", vec![]).unwrap(), Value::I64(-3));
        assert_eq!(b.call("get", vec![]).unwrap(), Value::I64(3));
    }
}
