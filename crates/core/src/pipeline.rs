//! The pipeline skeleton — the decomposition of the prime-number sieve.
//!
//! The paper's running example is `PrimeServer : PrimeFilter`, a sieve
//! stage that forwards candidate numbers to the next stage. [`Pipeline`]
//! creates a chain of distributed parallel objects, wires each stage to
//! its successor by passing the successor's URI through a connect method
//! (references to parallel objects sent as method arguments, §3.1), and
//! feeds items into the head with aggregation applied.

use parc_serial::Value;

use crate::error::ParcError;
use crate::po::Po;
use crate::runtime::ParcRuntime;

/// A linear chain of parallel objects.
pub struct Pipeline {
    stages: Vec<Po>,
}

impl Pipeline {
    /// Creates `stages` instances of `class` (stage *i* on the
    /// *i mod alive*-th surviving node; with a healthy cluster that is
    /// node *i mod nodes*) and connects each to its successor by calling
    /// `connect_method(successor_uri)` on it, back to front.
    ///
    /// # Errors
    ///
    /// [`ParcError::Config`] for zero stages; class or remoting failures.
    pub fn new(
        runtime: &ParcRuntime,
        class: &str,
        stages: usize,
        connect_method: &str,
    ) -> Result<Pipeline, ParcError> {
        if stages == 0 {
            return Err(ParcError::Config { detail: "pipeline needs at least one stage".into() });
        }
        let stage_pos: Vec<Po> = (0..stages)
            .map(|i| runtime.create_spread(class, i))
            .collect::<Result<_, _>>()?;
        // Wire back to front so a stage never sees a half-connected
        // successor.
        for i in (0..stages - 1).rev() {
            let next_uri = stage_pos[i + 1]
                .uri()
                .expect("pipeline stages are always distributed");
            stage_pos[i].call(connect_method, vec![Value::Str(next_uri)])?;
            runtime.record_reference(&stage_pos[i], &stage_pos[i + 1]);
        }
        Ok(Pipeline { stages: stage_pos })
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage proxies, head first.
    pub fn stages(&self) -> &[Po] {
        &self.stages
    }

    /// The head stage.
    pub fn head(&self) -> &Po {
        &self.stages[0]
    }

    /// The tail stage.
    pub fn tail(&self) -> &Po {
        &self.stages[self.stages.len() - 1]
    }

    /// Feeds one asynchronous item into the head (aggregation applies).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn feed(&self, method: &str, args: Vec<Value>) -> Result<(), ParcError> {
        self.head().post(method, args)
    }

    /// Flushes the head's aggregation buffer.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn flush(&self) -> Result<(), ParcError> {
        self.head().flush()
    }

    /// Synchronous call on the tail — typically "collect results", which
    /// also acts as a completion barrier for anything the head already
    /// shipped *if the application drained intermediate stages* (stages
    /// forward one-way; see the sieve example for a drain protocol).
    ///
    /// # Errors
    ///
    /// Transport failures or server faults.
    pub fn query_tail(&self, method: &str, args: Vec<Value>) -> Result<Value, ParcError> {
        self.tail().call(method, args)
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline").field("stages", &self.stages.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GrainConfig;
    use parc_remoting::dispatcher::FnInvokable;
    use parc_remoting::inproc::InprocNetwork;
    use parc_remoting::{Activator, RemotingError};
    use parc_sync::Mutex;
    use std::sync::Arc;

    /// A stage that appends its tag to each travelling item and forwards.
    fn tagger_class(rt: &ParcRuntime, tags: Arc<Mutex<Vec<String>>>) {
        let net: InprocNetwork = rt.network().clone();
        rt.register_class("Tagger", move || {
            let next: Mutex<Option<parc_remoting::RemoteObject>> = Mutex::new(None);
            let net = net.clone();
            let tags = Arc::clone(&tags);
            let my_tag: Mutex<Option<String>> = Mutex::new(None);
            Arc::new(FnInvokable(move |method: &str, args: &[Value]| match method {
                "connect" => {
                    let uri = args[0].as_str().unwrap_or_default();
                    *next.lock() =
                        Some(Activator::get_object(&net, uri).map_err(|e| {
                            RemotingError::Transport { detail: e.to_string() }
                        })?);
                    Ok(Value::Null)
                }
                "set_tag" => {
                    *my_tag.lock() = args[0].as_str().map(str::to_string);
                    Ok(Value::Null)
                }
                "item" => {
                    let mut text = args[0].as_str().unwrap_or_default().to_string();
                    if let Some(tag) = my_tag.lock().as_deref() {
                        text.push_str(tag);
                    }
                    match next.lock().as_ref() {
                        Some(next) => next.post("item", vec![Value::Str(text)]).map(|_| ()),
                        None => {
                            tags.lock().push(text);
                            Ok(())
                        }
                    }
                    .map(|()| Value::Null)
                }
                "drain" => Ok(Value::Null), // barrier helper: a sync no-op
                _ => Err(RemotingError::MethodNotFound {
                    object: "Tagger".into(),
                    method: method.into(),
                }),
            }))
        });
    }

    fn build(nodes: usize, stages: usize) -> (ParcRuntime, Pipeline, Arc<Mutex<Vec<String>>>) {
        let mut b = ParcRuntime::builder();
        b.nodes(nodes).grain(GrainConfig { aggregation_factor: 2, ..GrainConfig::default() });
        let rt = b.build().unwrap();
        let sink = Arc::new(Mutex::new(Vec::new()));
        tagger_class(&rt, Arc::clone(&sink));
        let p = Pipeline::new(&rt, "Tagger", stages, "connect").unwrap();
        for (i, stage) in p.stages().iter().enumerate() {
            stage.call("set_tag", vec![Value::Str(format!("-s{i}"))]).unwrap();
        }
        (rt, p, sink)
    }

    /// Sync no-op on every stage in order: once it returns, everything fed
    /// before it has been forwarded through that stage.
    fn drain(p: &Pipeline) {
        for stage in p.stages() {
            stage.call("drain", vec![]).unwrap();
        }
    }

    #[test]
    fn items_traverse_all_stages_in_order() {
        let (_rt, p, sink) = build(2, 3);
        for i in 0..4 {
            p.feed("item", vec![Value::Str(format!("x{i}"))]).unwrap();
        }
        p.flush().unwrap();
        drain(&p);
        let got = sink.lock().clone();
        assert_eq!(
            got,
            vec!["x0-s0-s1-s2", "x1-s0-s1-s2", "x2-s0-s1-s2", "x3-s0-s1-s2"]
        );
    }

    #[test]
    fn stages_spread_round_robin_over_nodes() {
        let (_rt, p, _) = build(2, 4);
        let nodes: Vec<_> = p.stages().iter().map(|s| s.node().unwrap()).collect();
        assert_eq!(nodes, vec![0, 1, 0, 1]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.head().node(), Some(0));
        assert_eq!(p.tail().node(), Some(1));
    }

    #[test]
    fn single_stage_pipeline_sinks_directly() {
        let (_rt, p, sink) = build(1, 1);
        p.feed("item", vec![Value::Str("a".into())]).unwrap();
        p.flush().unwrap();
        drain(&p);
        assert_eq!(sink.lock().clone(), vec!["a-s0"]);
    }

    #[test]
    fn pipeline_registers_reference_edges() {
        let (rt, _p, _) = build(2, 3);
        assert!(rt.dag().is_dag());
        // 3 stages -> 2 reference edges; the graph tracks at least those
        // objects.
        assert!(rt.dag().len() >= 3);
    }

    #[test]
    fn zero_stages_rejected() {
        let mut b = ParcRuntime::builder();
        b.nodes(1);
        let rt = b.build().unwrap();
        tagger_class(&rt, Arc::new(Mutex::new(Vec::new())));
        assert!(matches!(
            Pipeline::new(&rt, "Tagger", 0, "connect"),
            Err(ParcError::Config { .. })
        ));
    }

    #[test]
    fn query_tail_reaches_last_stage() {
        let (_rt, p, _) = build(2, 2);
        assert_eq!(p.query_tail("drain", vec![]).unwrap(), Value::Null);
    }
}
