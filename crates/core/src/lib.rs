//! # parc-core — the ParC#/SCOOPP runtime (the paper's contribution)
//!
//! SCOOPP (Scalable Object Oriented Parallel Programming) structures a
//! parallel application as **parallel objects** — active objects with their
//! own logical thread of control, distributed across processing nodes and
//! invoked through **asynchronous** (no return value) or **synchronous**
//! (value-returning) method calls — plus **passive objects** that travel by
//! copy. The ParC# contribution (§3) is implementing that model on the
//! remoting stack and keeping ParC++'s *run-time grain-size adaptation*:
//!
//! * **method call aggregation** — delay and combine a series of
//!   asynchronous calls into a single aggregate message, cutting
//!   per-message overhead and latency ([`po::Po`] + the `__batch` protocol
//!   in [`batch`], Fig. 7);
//! * **object agglomeration** — when parallelism is excessive, create new
//!   "parallel" objects locally so their calls execute synchronously and
//!   serially ([`runtime::ParcRuntime::create`] deciding local vs remote,
//!   Fig. 5);
//! * an **object manager** (OM) per node cooperating on placement and load
//!   balancing ([`om`]);
//! * **remote factories** instantiating implementation objects (IO) on
//!   demand ([`factory`], Fig. 6);
//! * dynamic **grain-size adaptation** driven by measured call costs
//!   ([`adapt`]);
//! * dependence-graph tracking for the §3.1 observation that copying
//!   parallel-object references can turn the application's DAG into a
//!   cyclic graph ([`dag`]);
//! * [`farm`] and [`pipeline`] skeletons — the two decompositions the
//!   paper's evaluation uses (Ray Tracer farm, prime-sieve pipeline).
//!
//! ```
//! use std::sync::Arc;
//! use parc_core::prelude::*;
//! use parc_remoting::dispatcher::FnInvokable;
//! use parc_serial::Value;
//!
//! # fn main() -> Result<(), ParcError> {
//! let runtime = ParcRuntime::builder().nodes(2).build()?;
//! runtime.register_class("Counter", || {
//!     let hits = std::sync::atomic::AtomicI64::new(0);
//!     Arc::new(FnInvokable(move |method: &str, _args: &[Value]| match method {
//!         "bump" => { hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst); Ok(Value::Null) }
//!         "total" => Ok(Value::I64(hits.load(std::sync::atomic::Ordering::SeqCst))),
//!         _ => Err(parc_remoting::RemotingError::MethodNotFound {
//!             object: "Counter".into(), method: method.into() }),
//!     }))
//! });
//! let counter = runtime.create("Counter")?;
//! for _ in 0..10 {
//!     counter.post("bump", vec![])?;   // asynchronous, aggregated
//! }
//! counter.flush()?;
//! assert_eq!(counter.call("total", vec![])?, Value::I64(10));
//! # Ok(())
//! # }
//! ```

pub mod adapt;
pub mod batch;
pub mod config;
pub mod dag;
pub mod directory;
pub mod error;
pub mod factory;
pub mod farm;
pub mod om;
pub mod pipeline;
pub mod po;
pub mod runtime;
pub mod stats;
pub mod telemetry;
pub mod txn;

pub use adapt::{BatchConfig, BatchController, GrainAdapter};
pub use config::{GrainConfig, Placement};
pub use dag::DependenceGraph;
pub use directory::{ObjectDirectory, PlacedObject, RingConfig};
pub use error::ParcError;
pub use farm::Farm;
pub use pipeline::Pipeline;
pub use po::Po;
pub use runtime::{ParcRuntime, RebalanceConfig, RebalancerHandle, RuntimeBuilder};
pub use stats::RuntimeStats;
pub use telemetry::{ClusterTelemetry, NodeTelemetry, TelemetryService};
pub use txn::Reservation;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::config::{GrainConfig, Placement};
    pub use crate::directory::{ObjectDirectory, RingConfig};
    pub use crate::error::ParcError;
    pub use crate::farm::Farm;
    pub use crate::pipeline::Pipeline;
    pub use crate::po::Po;
    pub use crate::runtime::{ParcRuntime, RebalanceConfig, RuntimeBuilder};
    pub use crate::txn::Reservation;
}
