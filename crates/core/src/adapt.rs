//! Run-time grain-size adaptation.
//!
//! SCOOPP's run-time system ([9] in the paper) measures how expensive
//! method calls actually are and removes parallelism when grains are too
//! fine: short calls get *aggregated* into bigger messages, and when calls
//! are so short that even shipping them is a loss, new objects get
//! *agglomerated* locally. [`GrainAdapter`] is that controller: it tracks
//! an exponentially weighted moving average (EWMA) of per-call service
//! time, compares it with the per-message overhead of the transport, and
//! yields the two knobs of [`crate::GrainConfig`].

use std::time::Duration;

use parc_sync::Mutex;

/// Controller state for one runtime.
#[derive(Debug)]
pub struct GrainAdapter {
    inner: Mutex<State>,
    /// Estimated fixed cost of one remote message (the ~273 µs of the
    /// paper's Mono latency measurement, by default).
    message_overhead: Duration,
    /// Aggregation ceiling (Fig. 7's `maxCalls` upper bound).
    max_aggregation: usize,
}

#[derive(Debug)]
struct State {
    ewma_call_secs: Option<f64>,
    samples: u64,
    // Last aggregation factor this adapter recommended; lets
    // `recommended_aggregation` emit an `agg_size_changed` event exactly
    // when the knob moves.
    last_agg: usize,
}

/// EWMA smoothing factor: recent calls dominate after ~10 samples.
const ALPHA: f64 = 0.2;

impl GrainAdapter {
    /// Creates an adapter with the given per-message overhead estimate.
    pub fn new(message_overhead: Duration, max_aggregation: usize) -> GrainAdapter {
        GrainAdapter {
            inner: Mutex::new(State { ewma_call_secs: None, samples: 0, last_agg: 1 }),
            message_overhead,
            max_aggregation: max_aggregation.max(1),
        }
    }

    /// An adapter tuned to the paper's measured Mono remoting overhead.
    pub fn mono_default() -> GrainAdapter {
        GrainAdapter::new(Duration::from_micros(273), 256)
    }

    /// Records one measured method-execution duration.
    pub fn observe_call(&self, duration: Duration) {
        if parc_obs::is_enabled() {
            parc_obs::histogram(parc_obs::kinds::ADAPT_SERVICE)
                .record(duration.as_nanos() as u64);
        }
        let mut state = self.inner.lock();
        let secs = duration.as_secs_f64();
        state.ewma_call_secs = Some(match state.ewma_call_secs {
            None => secs,
            Some(prev) => prev + ALPHA * (secs - prev),
        });
        state.samples += 1;
    }

    /// Number of samples observed.
    pub fn samples(&self) -> u64 {
        self.inner.lock().samples
    }

    /// Current per-call cost estimate, if any call was observed.
    pub fn estimated_call_cost(&self) -> Option<Duration> {
        self.inner.lock().ewma_call_secs.map(Duration::from_secs_f64)
    }

    /// Recommended aggregation factor: pack enough calls per message that
    /// the shipped work dominates the message overhead (target ≥ 4×), but
    /// never beyond the configured ceiling.
    ///
    /// With no samples yet, the recommendation is 1 (no aggregation) —
    /// adaptation only ever *removes* parallelism it has evidence against.
    pub fn recommended_aggregation(&self) -> usize {
        let mut state = self.inner.lock();
        let Some(call) = state.ewma_call_secs else {
            return 1;
        };
        let overhead = self.message_overhead.as_secs_f64();
        let agg = if call <= 0.0 {
            self.max_aggregation
        } else {
            let wanted = (4.0 * overhead / call).ceil();
            if wanted.is_finite() {
                (wanted as usize).clamp(1, self.max_aggregation)
            } else {
                self.max_aggregation
            }
        };
        if agg != state.last_agg {
            let old = state.last_agg;
            state.last_agg = agg;
            parc_obs::event(parc_obs::kinds::AGG_SIZE_CHANGED, || {
                format!(
                    "old={old} new={agg} ewma_us={:.2} overhead_us={:.2}",
                    call * 1e6,
                    overhead * 1e6
                )
            });
        }
        agg
    }

    /// Whether new objects should be agglomerated locally: true when a
    /// call's work is smaller than the overhead of shipping it at the
    /// maximum aggregation — i.e. parallelism cannot pay for itself.
    pub fn should_agglomerate(&self) -> bool {
        let Some(call) = self.inner.lock().ewma_call_secs else {
            return false;
        };
        let per_call_overhead =
            self.message_overhead.as_secs_f64() / self.max_aggregation as f64;
        call < per_call_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> GrainAdapter {
        GrainAdapter::new(Duration::from_micros(273), 256)
    }

    #[test]
    fn no_samples_means_no_adaptation() {
        let a = adapter();
        assert_eq!(a.recommended_aggregation(), 1);
        assert!(!a.should_agglomerate());
        assert_eq!(a.estimated_call_cost(), None);
    }

    #[test]
    fn coarse_grains_need_no_aggregation() {
        let a = adapter();
        for _ in 0..10 {
            a.observe_call(Duration::from_millis(50));
        }
        assert_eq!(a.recommended_aggregation(), 1);
        assert!(!a.should_agglomerate());
    }

    #[test]
    fn fine_grains_get_aggregated() {
        let a = adapter();
        for _ in 0..10 {
            a.observe_call(Duration::from_micros(50));
        }
        let k = a.recommended_aggregation();
        assert!(k > 1, "50us calls against 273us overhead must aggregate, got {k}");
        assert!(k <= 256);
    }

    #[test]
    fn microscopic_grains_agglomerate() {
        let a = adapter();
        for _ in 0..10 {
            a.observe_call(Duration::from_nanos(100));
        }
        assert_eq!(a.recommended_aggregation(), 256, "hits the ceiling");
        assert!(a.should_agglomerate());
    }

    #[test]
    fn ewma_tracks_a_regime_change() {
        let a = adapter();
        for _ in 0..50 {
            a.observe_call(Duration::from_micros(1));
        }
        assert!(a.should_agglomerate());
        for _ in 0..50 {
            a.observe_call(Duration::from_millis(10));
        }
        assert!(!a.should_agglomerate(), "adapter must forget the old fine-grain regime");
        assert_eq!(a.samples(), 100);
    }

    #[test]
    fn zero_duration_calls_hit_the_ceiling() {
        let a = adapter();
        a.observe_call(Duration::ZERO);
        assert_eq!(a.recommended_aggregation(), 256);
        assert!(a.should_agglomerate());
    }

    #[test]
    fn ceiling_is_respected() {
        let a = GrainAdapter::new(Duration::from_millis(100), 8);
        a.observe_call(Duration::from_nanos(1));
        assert_eq!(a.recommended_aggregation(), 8);
    }

    #[test]
    fn ewma_converges_on_constant_service_times_within_ten_samples() {
        // A pure constant stream is fixed-point: the first sample seeds
        // the EWMA and later samples leave it unchanged.
        let a = adapter();
        for _ in 0..10 {
            a.observe_call(Duration::from_micros(500));
        }
        let est = a.estimated_call_cost().unwrap().as_secs_f64();
        assert!((est - 500e-6).abs() < 1e-12, "constant stream must be exact, got {est}");

        // After a regime change, the residual error decays as
        // (1 - ALPHA)^n: ten samples of the new constant leave at most
        // 0.8^10 ~= 10.7% of the initial gap.
        let a = adapter();
        a.observe_call(Duration::from_millis(1));
        for _ in 0..10 {
            a.observe_call(Duration::from_micros(100));
        }
        let est = a.estimated_call_cost().unwrap().as_secs_f64();
        let residual = (est - 100e-6) / (1e-3 - 100e-6);
        assert!(residual > 0.0, "estimate cannot undershoot the constant");
        assert!(residual < 0.11, "EWMA must converge within ~10 samples, residual {residual}");
    }

    #[test]
    fn aggregation_knob_crosses_273us_threshold_at_right_grain_size() {
        // With the paper's 273 us message overhead and the >= 4x work
        // target, aggregation becomes unnecessary exactly when one call
        // carries 4 * 273 us = 1092 us of work.
        let at_threshold = GrainAdapter::mono_default();
        at_threshold.observe_call(Duration::from_micros(1092));
        assert_eq!(at_threshold.recommended_aggregation(), 1);

        let just_below = GrainAdapter::mono_default();
        just_below.observe_call(Duration::from_micros(1000));
        assert_eq!(just_below.recommended_aggregation(), 2);

        // A call exactly as long as the overhead needs the 4x factor.
        let equal = GrainAdapter::mono_default();
        equal.observe_call(Duration::from_micros(273));
        assert_eq!(equal.recommended_aggregation(), 4);

        // Agglomeration flips where work drops under the *per-call* share
        // of a maximally aggregated message: 273 us / 256 ~= 1.07 us.
        let above = GrainAdapter::mono_default();
        above.observe_call(Duration::from_nanos(1_200));
        assert!(!above.should_agglomerate());
        let below = GrainAdapter::mono_default();
        below.observe_call(Duration::from_nanos(1_000));
        assert!(below.should_agglomerate());
    }
}
