//! Run-time grain-size adaptation.
//!
//! SCOOPP's run-time system ([9] in the paper) measures how expensive
//! method calls actually are and removes parallelism when grains are too
//! fine: short calls get *aggregated* into bigger messages, and when calls
//! are so short that even shipping them is a loss, new objects get
//! *agglomerated* locally. [`GrainAdapter`] is that controller: it tracks
//! an exponentially weighted moving average (EWMA) of per-call service
//! time, compares it with the per-message overhead of the transport, and
//! yields the two knobs of [`crate::GrainConfig`].
//!
//! Since the reply frames started carrying the server's dispatch depth
//! (the `FLAG_DEPTH` extension), adaptation is no longer open-loop:
//! [`BatchController`] closes the loop per proxy, combining the channel's
//! RTT EWMA, the piggybacked remote queue depth and the adapter's call-cost
//! estimate into one deterministic batch-size law (DESIGN.md §14).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parc_sync::Mutex;

/// Controller state for one runtime.
#[derive(Debug)]
pub struct GrainAdapter {
    inner: Mutex<State>,
    /// Estimated fixed cost of one remote message (the ~273 µs of the
    /// paper's Mono latency measurement, by default).
    message_overhead: Duration,
    /// Aggregation ceiling (Fig. 7's `maxCalls` upper bound).
    max_aggregation: usize,
}

#[derive(Debug)]
struct State {
    ewma_call_secs: Option<f64>,
    samples: u64,
    // Last aggregation factor this adapter recommended; lets
    // `recommended_aggregation` emit an `agg_size_changed` event exactly
    // when the knob moves.
    last_agg: usize,
}

/// EWMA smoothing factor: recent calls dominate after ~10 samples.
const ALPHA: f64 = 0.2;

impl GrainAdapter {
    /// Creates an adapter with the given per-message overhead estimate.
    pub fn new(message_overhead: Duration, max_aggregation: usize) -> GrainAdapter {
        GrainAdapter {
            inner: Mutex::new(State { ewma_call_secs: None, samples: 0, last_agg: 1 }),
            message_overhead,
            max_aggregation: max_aggregation.max(1),
        }
    }

    /// An adapter tuned to the paper's measured Mono remoting overhead.
    pub fn mono_default() -> GrainAdapter {
        GrainAdapter::new(Duration::from_micros(273), 256)
    }

    /// Records one measured method-execution duration.
    pub fn observe_call(&self, duration: Duration) {
        if parc_obs::is_enabled() {
            parc_obs::histogram(parc_obs::kinds::ADAPT_SERVICE)
                .record(duration.as_nanos() as u64);
        }
        let mut state = self.inner.lock();
        let secs = duration.as_secs_f64();
        state.ewma_call_secs = Some(match state.ewma_call_secs {
            None => secs,
            Some(prev) => prev + ALPHA * (secs - prev),
        });
        state.samples += 1;
    }

    /// Number of samples observed.
    pub fn samples(&self) -> u64 {
        self.inner.lock().samples
    }

    /// Current per-call cost estimate, if any call was observed.
    pub fn estimated_call_cost(&self) -> Option<Duration> {
        self.inner.lock().ewma_call_secs.map(Duration::from_secs_f64)
    }

    /// Recommended aggregation factor: pack enough calls per message that
    /// the shipped work dominates the message overhead (target ≥ 4×), but
    /// never beyond the configured ceiling.
    ///
    /// With no samples yet, the recommendation is 1 (no aggregation) —
    /// adaptation only ever *removes* parallelism it has evidence against.
    pub fn recommended_aggregation(&self) -> usize {
        let mut state = self.inner.lock();
        let Some(call) = state.ewma_call_secs else {
            return 1;
        };
        let overhead = self.message_overhead.as_secs_f64();
        let agg = if call <= 0.0 {
            self.max_aggregation
        } else {
            let wanted = (4.0 * overhead / call).ceil();
            if wanted.is_finite() {
                (wanted as usize).clamp(1, self.max_aggregation)
            } else {
                self.max_aggregation
            }
        };
        if agg != state.last_agg {
            let old = state.last_agg;
            state.last_agg = agg;
            parc_obs::event(parc_obs::kinds::AGG_SIZE_CHANGED, || {
                format!(
                    "old={old} new={agg} ewma_us={:.2} overhead_us={:.2}",
                    call * 1e6,
                    overhead * 1e6
                )
            });
        }
        agg
    }

    /// Whether new objects should be agglomerated locally: true when a
    /// call's work is smaller than the overhead of shipping it at the
    /// maximum aggregation — i.e. parallelism cannot pay for itself.
    pub fn should_agglomerate(&self) -> bool {
        let Some(call) = self.inner.lock().ewma_call_secs else {
            return false;
        };
        let per_call_overhead =
            self.message_overhead.as_secs_f64() / self.max_aggregation as f64;
        call < per_call_overhead
    }
}

/// Tuning knobs of the closed-loop batch controller, read once per proxy
/// from the `PARC_BATCH_*` environment variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Smallest batch the controller ever targets (`PARC_BATCH_MIN`).
    pub min: usize,
    /// Largest batch the controller ever targets (`PARC_BATCH_MAX`).
    pub max: usize,
    /// Oldest a buffered one-way call may get before the buffer ships
    /// regardless of fill (`PARC_BATCH_LINGER_US`).
    pub linger: Duration,
    /// Remote queue depth above which the controller halves the batch —
    /// the server is drowning (`PARC_BATCH_DEPTH_HIGH`).
    pub depth_high: usize,
    /// Remote queue depth at or below which the controller doubles the
    /// batch — the server is starved (`PARC_BATCH_DEPTH_LOW`).
    pub depth_low: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            min: 1,
            max: 256,
            linger: Duration::from_micros(2_000),
            depth_high: 256,
            depth_low: 32,
        }
    }
}

impl BatchConfig {
    /// Reads the `PARC_BATCH_*` knobs (`MIN`, `MAX`, `LINGER_US`,
    /// `DEPTH_HIGH`, `DEPTH_LOW`), falling back to the defaults for unset
    /// or unparseable values. `min`/`max` are forced into a sane order.
    pub fn from_env() -> BatchConfig {
        fn get<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        }
        let d = BatchConfig::default();
        let min = get("PARC_BATCH_MIN").unwrap_or(d.min).max(1);
        BatchConfig {
            min,
            max: get("PARC_BATCH_MAX").unwrap_or(d.max).max(min),
            linger: get("PARC_BATCH_LINGER_US").map_or(d.linger, Duration::from_micros),
            depth_high: get("PARC_BATCH_DEPTH_HIGH").unwrap_or(d.depth_high),
            depth_low: get("PARC_BATCH_DEPTH_LOW").unwrap_or(d.depth_low),
        }
    }
}

/// The deterministic closed-loop batch-size controller.
///
/// Inputs per decision round:
/// * `rtt` — the channel's round-trip EWMA ([`LinkFeedback`]'s view of how
///   much the wire costs),
/// * `call_cost` — the adapter's per-call service-time EWMA,
/// * `depth` — the server dispatch depth piggybacked on the last reply.
///
/// Law (§14): the wire-dominance *target* is `⌈4·rtt / call_cost⌉` — pack
/// enough work per message that the round trip stops dominating — and the
/// backpressure bands move the current size toward it: halve above
/// `depth_high`, double at or below `depth_low`, hold in between. The
/// target caps every band, so for a fixed `(rtt, call_cost, current)` the
/// decided size is monotone nonincreasing in the reported depth
/// (`min(2c, t) ≥ min(c, t) ≥ min(⌈c/2⌉, t)`), and the whole law is a pure
/// function of its inputs — replaying a tape of observations replays the
/// decisions.
///
/// [`LinkFeedback`]: parc_remoting::channel::LinkFeedback
#[derive(Debug)]
pub struct BatchController {
    cfg: BatchConfig,
    current: AtomicU64,
    shrinks: AtomicU64,
    grows: AtomicU64,
}

impl BatchController {
    /// Creates a controller starting from the smallest batch.
    pub fn new(cfg: BatchConfig) -> BatchController {
        BatchController {
            current: AtomicU64::new(cfg.min as u64),
            cfg,
            shrinks: AtomicU64::new(0),
            grows: AtomicU64::new(0),
        }
    }

    /// The configuration this controller runs under.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// The batch size decided by the last [`BatchController::observe`].
    pub fn current(&self) -> usize {
        self.current.load(Ordering::Relaxed) as usize
    }

    /// Times the controller halved its size under backpressure.
    pub fn shrinks(&self) -> u64 {
        self.shrinks.load(Ordering::Relaxed)
    }

    /// Times the controller doubled its size into drained queues.
    pub fn grows(&self) -> u64 {
        self.grows.load(Ordering::Relaxed)
    }

    /// The wire-dominance target: enough calls per message that their
    /// summed work is ≥ 4× the round trip, clamped to `[min, max]`.
    pub fn target(&self, rtt: Duration, call_cost: Duration) -> usize {
        let rtt_s = rtt.as_secs_f64();
        let cost_s = call_cost.as_secs_f64().max(1e-9);
        let wanted = (4.0 * rtt_s / cost_s).ceil();
        if wanted.is_finite() {
            (wanted as usize).clamp(self.cfg.min, self.cfg.max)
        } else {
            self.cfg.max
        }
    }

    /// The pure decision law: next batch size from `(current, target,
    /// depth)`. No state is read or written — property tests drive this
    /// directly.
    pub fn decide(&self, current: usize, target: usize, depth: usize) -> usize {
        let raw = if depth > self.cfg.depth_high {
            (current / 2).max(1)
        } else if depth <= self.cfg.depth_low {
            current.saturating_mul(2)
        } else {
            current
        };
        raw.min(target).clamp(self.cfg.min, self.cfg.max)
    }

    /// Folds one feedback observation into the controller: runs
    /// [`BatchController::decide`] over the live inputs, installs the
    /// result, counts and announces direction changes, and returns the new
    /// size.
    pub fn observe(&self, rtt: Duration, call_cost: Duration, depth: usize) -> usize {
        let target = self.target(rtt, call_cost);
        let old = self.current();
        let new = self.decide(old, target, depth);
        self.current.store(new as u64, Ordering::Relaxed);
        if new < old {
            self.shrinks.fetch_add(1, Ordering::Relaxed);
            parc_obs::counter(parc_obs::kinds::BATCH_SHRINK).incr();
            parc_obs::event(parc_obs::kinds::BATCH_SHRINK, || {
                format!("old={old} new={new} depth={depth} target={target}")
            });
        } else if new > old {
            self.grows.fetch_add(1, Ordering::Relaxed);
            parc_obs::counter(parc_obs::kinds::BATCH_GROW).incr();
            parc_obs::event(parc_obs::kinds::BATCH_GROW, || {
                format!("old={old} new={new} depth={depth} target={target}")
            });
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> GrainAdapter {
        GrainAdapter::new(Duration::from_micros(273), 256)
    }

    #[test]
    fn no_samples_means_no_adaptation() {
        let a = adapter();
        assert_eq!(a.recommended_aggregation(), 1);
        assert!(!a.should_agglomerate());
        assert_eq!(a.estimated_call_cost(), None);
    }

    #[test]
    fn coarse_grains_need_no_aggregation() {
        let a = adapter();
        for _ in 0..10 {
            a.observe_call(Duration::from_millis(50));
        }
        assert_eq!(a.recommended_aggregation(), 1);
        assert!(!a.should_agglomerate());
    }

    #[test]
    fn fine_grains_get_aggregated() {
        let a = adapter();
        for _ in 0..10 {
            a.observe_call(Duration::from_micros(50));
        }
        let k = a.recommended_aggregation();
        assert!(k > 1, "50us calls against 273us overhead must aggregate, got {k}");
        assert!(k <= 256);
    }

    #[test]
    fn microscopic_grains_agglomerate() {
        let a = adapter();
        for _ in 0..10 {
            a.observe_call(Duration::from_nanos(100));
        }
        assert_eq!(a.recommended_aggregation(), 256, "hits the ceiling");
        assert!(a.should_agglomerate());
    }

    #[test]
    fn ewma_tracks_a_regime_change() {
        let a = adapter();
        for _ in 0..50 {
            a.observe_call(Duration::from_micros(1));
        }
        assert!(a.should_agglomerate());
        for _ in 0..50 {
            a.observe_call(Duration::from_millis(10));
        }
        assert!(!a.should_agglomerate(), "adapter must forget the old fine-grain regime");
        assert_eq!(a.samples(), 100);
    }

    #[test]
    fn zero_duration_calls_hit_the_ceiling() {
        let a = adapter();
        a.observe_call(Duration::ZERO);
        assert_eq!(a.recommended_aggregation(), 256);
        assert!(a.should_agglomerate());
    }

    #[test]
    fn ceiling_is_respected() {
        let a = GrainAdapter::new(Duration::from_millis(100), 8);
        a.observe_call(Duration::from_nanos(1));
        assert_eq!(a.recommended_aggregation(), 8);
    }

    #[test]
    fn ewma_converges_on_constant_service_times_within_ten_samples() {
        // A pure constant stream is fixed-point: the first sample seeds
        // the EWMA and later samples leave it unchanged.
        let a = adapter();
        for _ in 0..10 {
            a.observe_call(Duration::from_micros(500));
        }
        let est = a.estimated_call_cost().unwrap().as_secs_f64();
        assert!((est - 500e-6).abs() < 1e-12, "constant stream must be exact, got {est}");

        // After a regime change, the residual error decays as
        // (1 - ALPHA)^n: ten samples of the new constant leave at most
        // 0.8^10 ~= 10.7% of the initial gap.
        let a = adapter();
        a.observe_call(Duration::from_millis(1));
        for _ in 0..10 {
            a.observe_call(Duration::from_micros(100));
        }
        let est = a.estimated_call_cost().unwrap().as_secs_f64();
        let residual = (est - 100e-6) / (1e-3 - 100e-6);
        assert!(residual > 0.0, "estimate cannot undershoot the constant");
        assert!(residual < 0.11, "EWMA must converge within ~10 samples, residual {residual}");
    }

    #[test]
    fn aggregation_knob_crosses_273us_threshold_at_right_grain_size() {
        // With the paper's 273 us message overhead and the >= 4x work
        // target, aggregation becomes unnecessary exactly when one call
        // carries 4 * 273 us = 1092 us of work.
        let at_threshold = GrainAdapter::mono_default();
        at_threshold.observe_call(Duration::from_micros(1092));
        assert_eq!(at_threshold.recommended_aggregation(), 1);

        let just_below = GrainAdapter::mono_default();
        just_below.observe_call(Duration::from_micros(1000));
        assert_eq!(just_below.recommended_aggregation(), 2);

        // A call exactly as long as the overhead needs the 4x factor.
        let equal = GrainAdapter::mono_default();
        equal.observe_call(Duration::from_micros(273));
        assert_eq!(equal.recommended_aggregation(), 4);

        // Agglomeration flips where work drops under the *per-call* share
        // of a maximally aggregated message: 273 us / 256 ~= 1.07 us.
        let above = GrainAdapter::mono_default();
        above.observe_call(Duration::from_nanos(1_200));
        assert!(!above.should_agglomerate());
        let below = GrainAdapter::mono_default();
        below.observe_call(Duration::from_nanos(1_000));
        assert!(below.should_agglomerate());
    }

    // ---- closed-loop batch controller ---------------------------------

    fn controller() -> BatchController {
        BatchController::new(BatchConfig::default())
    }

    #[test]
    fn controller_starts_at_min() {
        let c = controller();
        assert_eq!(c.current(), 1);
        assert_eq!(c.shrinks(), 0);
        assert_eq!(c.grows(), 0);
    }

    #[test]
    fn drained_queues_grow_toward_the_wire_target() {
        let c = controller();
        // 400 µs round trips over 10 µs calls want 4·400/10 = 160 calls.
        let rtt = Duration::from_micros(400);
        let cost = Duration::from_micros(10);
        assert_eq!(c.target(rtt, cost), 160);
        let sizes: Vec<usize> = (0..9).map(|_| c.observe(rtt, cost, 0)).collect();
        assert_eq!(sizes, vec![2, 4, 8, 16, 32, 64, 128, 160, 160]);
        assert_eq!(c.grows(), 8, "the capped round is not a growth");
    }

    #[test]
    fn backpressure_halves_and_recovers() {
        let c = controller();
        let rtt = Duration::from_micros(400);
        let cost = Duration::from_micros(10);
        while c.observe(rtt, cost, 0) < 160 {}
        assert_eq!(c.observe(rtt, cost, 1000), 80);
        assert_eq!(c.observe(rtt, cost, 1000), 40);
        assert_eq!(c.shrinks(), 2);
        // Mid-band holds; drained queues climb back.
        assert_eq!(c.observe(rtt, cost, 100), 40);
        assert_eq!(c.observe(rtt, cost, 0), 80);
    }

    #[test]
    fn decide_is_monotone_nonincreasing_in_depth() {
        let c = controller();
        for current in [1usize, 3, 17, 64, 256] {
            for target in [1usize, 8, 100, 256] {
                let mut prev = usize::MAX;
                for depth in 0..600 {
                    let d = c.decide(current, target, depth);
                    assert!(
                        d <= prev,
                        "decide({current},{target},{depth})={d} > {prev} at depth-1"
                    );
                    prev = d;
                }
            }
        }
    }

    #[test]
    fn target_never_escapes_the_configured_bounds() {
        let c = BatchController::new(BatchConfig { min: 2, max: 16, ..BatchConfig::default() });
        assert_eq!(c.target(Duration::from_secs(10), Duration::from_nanos(1)), 16);
        assert_eq!(c.target(Duration::ZERO, Duration::from_secs(1)), 2);
        assert_eq!(c.target(Duration::from_secs(1), Duration::ZERO), 16, "zero cost is clamped");
    }

    fn arbitrary_cfg(src: &mut parc_testkit::Source) -> BatchConfig {
        let min = src.usize_in(1..8);
        let depth_low = src.usize_in(0..64);
        BatchConfig {
            min,
            max: min + src.usize_in(0..512),
            depth_low,
            depth_high: depth_low + src.usize_in(0..512),
            ..BatchConfig::default()
        }
    }

    /// Property: for any configuration and any `(current, target)`, the
    /// decided batch size never increases as the reported queue depth
    /// grows — deeper server backlog can only hold or shrink the batch.
    #[test]
    fn prop_decide_monotone_nonincreasing_in_depth() {
        parc_testkit::Config::cases(256).check(
            |src| {
                let cfg = arbitrary_cfg(src);
                let current = src.usize_in(1..1024);
                let target = src.usize_in(1..1024);
                let d1 = src.usize_in(0..2048);
                let d2 = d1 + src.usize_in(0..2048);
                (cfg, current, target, d1, d2)
            },
            |&(cfg, current, target, d1, d2)| {
                let c = BatchController::new(cfg);
                let shallow = c.decide(current, target, d1);
                let deep = c.decide(current, target, d2);
                assert!(
                    deep <= shallow,
                    "depth {d2} decided {deep} > depth {d1}'s {shallow}"
                );
            },
        );
    }

    /// Property: decisions never escape `[min, max]`, whatever the
    /// inputs — `max` is the `max_aggregation` bound of the open-loop
    /// adapter, and the closed loop must respect the same ceiling.
    #[test]
    fn prop_decide_bounded_by_configured_aggregation() {
        parc_testkit::Config::cases(256).check(
            |src| {
                let cfg = arbitrary_cfg(src);
                let current = src.usize_in(0..4096);
                let target = src.usize_in(0..4096);
                let depth = src.usize_in(0..4096);
                (cfg, current, target, depth)
            },
            |&(cfg, current, target, depth)| {
                let c = BatchController::new(cfg);
                let d = c.decide(current, target, depth);
                assert!(d >= cfg.min && d <= cfg.max, "decide()={d} outside [{}, {}]", cfg.min, cfg.max);
            },
        );
    }

    /// Property: the controller is deterministic — replaying a fixed tape
    /// of `(rtt, call_cost, depth)` observations through two fresh
    /// controllers yields identical decision sequences and counters.
    #[test]
    fn prop_controller_deterministic_for_a_fixed_tape() {
        parc_testkit::Config::cases(64).check(
            |src| {
                let cfg = arbitrary_cfg(src);
                let tape = src.vec_of(0..48, |s| {
                    (s.u64_in(1..5_000), s.u64_in(1..5_000), s.usize_in(0..1024))
                });
                (cfg, tape)
            },
            |(cfg, tape)| {
                let run = || {
                    let c = BatchController::new(*cfg);
                    let sizes: Vec<usize> = tape
                        .iter()
                        .map(|&(rtt_us, cost_us, depth)| {
                            c.observe(
                                Duration::from_micros(rtt_us),
                                Duration::from_micros(cost_us),
                                depth,
                            )
                        })
                        .collect();
                    (sizes, c.shrinks(), c.grows())
                };
                assert_eq!(run(), run(), "same tape, same decisions");
            },
        );
    }

    #[test]
    fn config_env_parsing_falls_back_to_defaults() {
        // No PARC_BATCH_* set in the test environment: defaults apply.
        let cfg = BatchConfig::from_env();
        assert_eq!(cfg, BatchConfig::default());
        assert_eq!(cfg.min, 1);
        assert_eq!(cfg.max, 256);
        assert_eq!(cfg.linger, Duration::from_micros(2_000));
    }
}
