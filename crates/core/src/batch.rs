//! The aggregate-call protocol — the generalized `processN` of Fig. 7.
//!
//! When a proxy object aggregates asynchronous calls, it ships one message
//! whose method is [`BATCH_METHOD`] and whose single argument is a list of
//! `Call{m, a}` structs. The paper's preprocessor generated a dedicated
//! `processN` per method; here a generic [`BatchDispatcher`] wrapper
//! unpacks any batch in order against the wrapped implementation object,
//! so every IO accepts both plain and aggregated calls.

use std::sync::Arc;

use parc_remoting::{Invokable, RemotingError};
use parc_serial::{StructValue, Value};

/// Reserved method name for aggregate messages.
pub const BATCH_METHOD: &str = "__batch";

/// Encodes `(method, args)` pairs into the single batch argument.
///
/// Takes the calls by value: the method strings and argument vectors move
/// into the wire [`Value`] unchanged, so flushing an aggregation buffer of
/// N calls is N moves, not N deep clones of every argument payload.
pub fn encode_batch(calls: Vec<(String, Vec<Value>)>) -> Value {
    Value::List(
        calls
            .into_iter()
            .map(|(m, a)| {
                Value::Struct(
                    StructValue::new("Call")
                        .with_field("m", Value::Str(m))
                        .with_field("a", Value::List(a)),
                )
            })
            .collect(),
    )
}

/// Decodes a batch argument back into `(method, args)` pairs.
///
/// # Errors
///
/// [`RemotingError::BadArguments`] when the payload is not a batch.
pub fn decode_batch(arg: &Value) -> Result<Vec<(String, Vec<Value>)>, RemotingError> {
    let malformed = |detail: &str| RemotingError::BadArguments {
        method: BATCH_METHOD.to_string(),
        detail: detail.to_string(),
    };
    let items = arg.as_list().ok_or_else(|| malformed("batch is not a list"))?;
    items
        .iter()
        .map(|item| {
            let s = item.as_struct().filter(|s| s.name() == "Call")
                .ok_or_else(|| malformed("batch entry is not a Call struct"))?;
            let method = s
                .field("m")
                .and_then(Value::as_str)
                .ok_or_else(|| malformed("batch entry missing method"))?
                .to_string();
            let args = match s.field("a") {
                Some(Value::List(a)) => a.clone(),
                _ => return Err(malformed("batch entry missing args")),
            };
            Ok((method, args))
        })
        .collect()
}

/// Wraps an implementation object so it also understands aggregate
/// messages. Calls inside a batch run in order on the caller's dispatch
/// thread; the batch returns `Null` (its members were asynchronous calls,
/// which have no results by definition).
pub struct BatchDispatcher {
    inner: Arc<dyn Invokable>,
}

impl BatchDispatcher {
    /// Wraps `inner`.
    pub fn new(inner: Arc<dyn Invokable>) -> BatchDispatcher {
        BatchDispatcher { inner }
    }
}

impl Invokable for BatchDispatcher {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, RemotingError> {
        if method != BATCH_METHOD {
            return self.inner.invoke(method, args);
        }
        let batch_arg = args.first().ok_or(RemotingError::BadArguments {
            method: BATCH_METHOD.to_string(),
            detail: "missing batch argument".to_string(),
        })?;
        for (m, a) in decode_batch(batch_arg)? {
            // A failure mid-batch aborts the rest — same as N one-way calls
            // where call k crashed the server object.
            self.inner.invoke(&m, &a)?;
        }
        Ok(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_remoting::dispatcher::FnInvokable;
    use parc_sync::Mutex;

    type CallLog = Arc<Mutex<Vec<(String, i32)>>>;

    fn recorder() -> (CallLog, Arc<dyn Invokable>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let obj: Arc<dyn Invokable> = Arc::new(FnInvokable(move |method: &str, args: &[Value]| {
            if method == "boom" {
                return Err(RemotingError::ServerFault { detail: "boom".into() });
            }
            log2.lock()
                .push((method.to_string(), args.first().and_then(Value::as_i32).unwrap_or(-1)));
            Ok(Value::I32(0))
        }));
        (log, obj)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let calls = vec![
            ("a".to_string(), vec![Value::I32(1)]),
            ("b".to_string(), vec![Value::I32(2), Value::Str("x".into())]),
            ("c".to_string(), vec![]),
        ];
        assert_eq!(decode_batch(&encode_batch(calls.clone())).unwrap(), calls);
    }

    #[test]
    fn batch_executes_in_order() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        let calls: Vec<(String, Vec<Value>)> =
            (0..10).map(|i| ("work".to_string(), vec![Value::I32(i)])).collect();
        d.invoke(BATCH_METHOD, &[encode_batch(calls)]).unwrap();
        let seen: Vec<i32> = log.lock().iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_methods_preserve_order() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        let calls = vec![
            ("first".to_string(), vec![Value::I32(1)]),
            ("second".to_string(), vec![Value::I32(2)]),
            ("first".to_string(), vec![Value::I32(3)]),
        ];
        d.invoke(BATCH_METHOD, &[encode_batch(calls)]).unwrap();
        let names: Vec<String> = log.lock().iter().map(|(m, _)| m.clone()).collect();
        assert_eq!(names, vec!["first", "second", "first"]);
    }

    #[test]
    fn non_batch_calls_pass_through() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        d.invoke("direct", &[Value::I32(7)]).unwrap();
        assert_eq!(log.lock().as_slice(), &[("direct".to_string(), 7)]);
    }

    #[test]
    fn failure_mid_batch_stops_the_rest() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        let calls = vec![
            ("ok".to_string(), vec![Value::I32(1)]),
            ("boom".to_string(), vec![]),
            ("never".to_string(), vec![Value::I32(3)]),
        ];
        assert!(d.invoke(BATCH_METHOD, &[encode_batch(calls)]).is_err());
        assert_eq!(log.lock().len(), 1);
    }

    #[test]
    fn malformed_batches_rejected() {
        let (_, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        assert!(d.invoke(BATCH_METHOD, &[]).is_err());
        assert!(d.invoke(BATCH_METHOD, &[Value::I32(1)]).is_err());
        assert!(d
            .invoke(BATCH_METHOD, &[Value::List(vec![Value::I32(1)])])
            .is_err());
        let no_args = Value::List(vec![Value::Struct(
            StructValue::new("Call").with_field("m", Value::Str("x".into())),
        )]);
        assert!(d.invoke(BATCH_METHOD, &[no_args]).is_err());
    }
}
