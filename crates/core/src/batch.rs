//! The aggregate-call protocol — the generalized `processN` of Fig. 7.
//!
//! When a proxy object aggregates asynchronous calls, it ships one message
//! whose method is [`BATCH_METHOD`] and whose single argument is a list of
//! `Call{m, a}` structs. The paper's preprocessor generated a dedicated
//! `processN` per method; here a generic [`BatchDispatcher`] wrapper
//! unpacks any batch in order against the wrapped implementation object,
//! so every IO accepts both plain and aggregated calls.

use std::sync::Arc;

use parc_remoting::{Invokable, RemotingError};
use parc_serial::{BinaryFormatter, Formatter, StructValue, Value};

/// Reserved method name for aggregate messages.
pub const BATCH_METHOD: &str = "__batch";

/// Reserved method name for *flat* aggregate messages: one `Bytes`
/// argument holding length-prefixed pre-serialized calls (see
/// [`encode_flat_call`]). The proxy serializes each call once at enqueue
/// time into a recycled pool buffer, and the dispatcher replays entries
/// streaming — neither side materializes the intermediate `Value` list
/// the classic [`BATCH_METHOD`] form carries.
pub const FLAT_BATCH_METHOD: &str = "__batch_flat";

/// Encodes `(method, args)` pairs into the single batch argument.
///
/// Takes the calls by value: the method strings and argument vectors move
/// into the wire [`Value`] unchanged, so flushing an aggregation buffer of
/// N calls is N moves, not N deep clones of every argument payload.
pub fn encode_batch(calls: Vec<(String, Vec<Value>)>) -> Value {
    Value::List(
        calls
            .into_iter()
            .map(|(m, a)| {
                Value::Struct(
                    StructValue::new("Call")
                        .with_field("m", Value::Str(m))
                        .with_field("a", Value::List(a)),
                )
            })
            .collect(),
    )
}

/// Decodes a batch argument back into `(method, args)` pairs.
///
/// # Errors
///
/// [`RemotingError::BadArguments`] when the payload is not a batch.
pub fn decode_batch(arg: &Value) -> Result<Vec<(String, Vec<Value>)>, RemotingError> {
    let malformed = |detail: &str| RemotingError::BadArguments {
        method: BATCH_METHOD.to_string(),
        detail: detail.to_string(),
    };
    let items = arg.as_list().ok_or_else(|| malformed("batch is not a list"))?;
    items
        .iter()
        .map(|item| {
            let s = item.as_struct().filter(|s| s.name() == "Call")
                .ok_or_else(|| malformed("batch entry is not a Call struct"))?;
            let method = s
                .field("m")
                .and_then(Value::as_str)
                .ok_or_else(|| malformed("batch entry missing method"))?
                .to_string();
            let args = match s.field("a") {
                Some(Value::List(a)) => a.clone(),
                _ => return Err(malformed("batch entry missing args")),
            };
            Ok((method, args))
        })
        .collect()
}

/// Appends one call to a flat batch buffer.
///
/// Entry layout, all lengths big-endian `u32`:
/// `method_len | method utf-8 | argc | argc × (arg_len | arg bytes)`,
/// where each argument is one self-contained [`BinaryFormatter`] encoding.
/// The buffer is plain bytes — callers recycle it through the channel
/// buffer pool and ship it as the single `Bytes` argument of
/// [`FLAT_BATCH_METHOD`].
///
/// # Errors
///
/// [`RemotingError::Serial`] when an argument will not encode.
pub fn encode_flat_call(
    formatter: &BinaryFormatter,
    buf: &mut Vec<u8>,
    method: &str,
    args: &[Value],
) -> Result<(), RemotingError> {
    let method_bytes = method.as_bytes();
    buf.extend_from_slice(&(u32::try_from(method_bytes.len()).unwrap_or(u32::MAX)).to_be_bytes());
    buf.extend_from_slice(method_bytes);
    buf.extend_from_slice(&(args.len() as u32).to_be_bytes());
    for arg in args {
        // Length slot first, value appended in place, then the slot is
        // patched — one pass, no per-argument scratch buffer.
        let slot = buf.len();
        buf.extend_from_slice(&[0u8; 4]);
        formatter.serialize_into(arg, buf)?;
        let len = u32::try_from(buf.len() - slot - 4).map_err(|_| {
            RemotingError::BadArguments {
                method: FLAT_BATCH_METHOD.to_string(),
                detail: "argument encoding exceeds u32 length prefix".to_string(),
            }
        })?;
        buf[slot..slot + 4].copy_from_slice(&len.to_be_bytes());
    }
    Ok(())
}

/// Streaming decoder over a flat batch payload: yields one
/// `(method, args)` at a time, deserializing arguments on demand — the
/// whole batch is never materialized at once.
pub struct FlatBatchReader<'a> {
    formatter: &'a BinaryFormatter,
    bytes: &'a [u8],
}

impl<'a> FlatBatchReader<'a> {
    /// Reads `bytes` (an [`encode_flat_call`] concatenation) with
    /// `formatter`.
    pub fn new(formatter: &'a BinaryFormatter, bytes: &'a [u8]) -> FlatBatchReader<'a> {
        FlatBatchReader { formatter, bytes }
    }

    fn malformed(detail: &str) -> RemotingError {
        RemotingError::BadArguments {
            method: FLAT_BATCH_METHOD.to_string(),
            detail: detail.to_string(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RemotingError> {
        if self.bytes.len() < n {
            return Err(Self::malformed("truncated flat batch"));
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn take_u32(&mut self) -> Result<usize, RemotingError> {
        let raw = self.take(4)?;
        Ok(u32::from_be_bytes([raw[0], raw[1], raw[2], raw[3]]) as usize)
    }

    fn next_entry(&mut self) -> Result<(String, Vec<Value>), RemotingError> {
        let method_len = self.take_u32()?;
        let method = std::str::from_utf8(self.take(method_len)?)
            .map_err(|_| Self::malformed("method name is not utf-8"))?
            .to_string();
        let argc = self.take_u32()?;
        let mut args = Vec::with_capacity(argc.min(64));
        for _ in 0..argc {
            let len = self.take_u32()?;
            let encoded = self.take(len)?;
            args.push(
                self.formatter
                    .deserialize(encoded)
                    .map_err(|_| Self::malformed("argument does not decode"))?,
            );
        }
        Ok((method, args))
    }
}

impl Iterator for FlatBatchReader<'_> {
    type Item = Result<(String, Vec<Value>), RemotingError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.bytes.is_empty() {
            return None;
        }
        match self.next_entry() {
            Ok(entry) => Some(Ok(entry)),
            Err(e) => {
                // Poison the stream: a framing error is unrecoverable.
                self.bytes = &[];
                Some(Err(e))
            }
        }
    }
}

/// Wraps an implementation object so it also understands aggregate
/// messages — the classic `Value`-list form and the flat pre-serialized
/// form. Calls inside a batch run in order on the caller's dispatch
/// thread; the batch returns `Null` (its members were asynchronous calls,
/// which have no results by definition).
pub struct BatchDispatcher {
    inner: Arc<dyn Invokable>,
    formatter: BinaryFormatter,
}

impl BatchDispatcher {
    /// Wraps `inner`.
    pub fn new(inner: Arc<dyn Invokable>) -> BatchDispatcher {
        BatchDispatcher { inner, formatter: BinaryFormatter::new() }
    }

    fn missing_batch(method: &str) -> RemotingError {
        RemotingError::BadArguments {
            method: method.to_string(),
            detail: "missing batch argument".to_string(),
        }
    }
}

impl Invokable for BatchDispatcher {
    fn invoke(&self, method: &str, args: &[Value]) -> Result<Value, RemotingError> {
        match method {
            BATCH_METHOD => {
                let batch_arg = args.first().ok_or_else(|| Self::missing_batch(method))?;
                for (m, a) in decode_batch(batch_arg)? {
                    // A failure mid-batch aborts the rest — same as N
                    // one-way calls where call k crashed the server object.
                    self.inner.invoke(&m, &a)?;
                }
                Ok(Value::Null)
            }
            FLAT_BATCH_METHOD => {
                let bytes = match args.first() {
                    Some(Value::Bytes(b)) => b,
                    Some(_) => {
                        return Err(FlatBatchReader::malformed("flat batch argument not bytes"))
                    }
                    None => return Err(Self::missing_batch(method)),
                };
                for entry in FlatBatchReader::new(&self.formatter, bytes) {
                    let (m, a) = entry?;
                    self.inner.invoke(&m, &a)?;
                }
                Ok(Value::Null)
            }
            _ => self.inner.invoke(method, args),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parc_remoting::dispatcher::FnInvokable;
    use parc_sync::Mutex;

    type CallLog = Arc<Mutex<Vec<(String, i32)>>>;

    fn recorder() -> (CallLog, Arc<dyn Invokable>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        let obj: Arc<dyn Invokable> = Arc::new(FnInvokable(move |method: &str, args: &[Value]| {
            if method == "boom" {
                return Err(RemotingError::ServerFault { detail: "boom".into() });
            }
            log2.lock()
                .push((method.to_string(), args.first().and_then(Value::as_i32).unwrap_or(-1)));
            Ok(Value::I32(0))
        }));
        (log, obj)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let calls = vec![
            ("a".to_string(), vec![Value::I32(1)]),
            ("b".to_string(), vec![Value::I32(2), Value::Str("x".into())]),
            ("c".to_string(), vec![]),
        ];
        assert_eq!(decode_batch(&encode_batch(calls.clone())).unwrap(), calls);
    }

    #[test]
    fn batch_executes_in_order() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        let calls: Vec<(String, Vec<Value>)> =
            (0..10).map(|i| ("work".to_string(), vec![Value::I32(i)])).collect();
        d.invoke(BATCH_METHOD, &[encode_batch(calls)]).unwrap();
        let seen: Vec<i32> = log.lock().iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_methods_preserve_order() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        let calls = vec![
            ("first".to_string(), vec![Value::I32(1)]),
            ("second".to_string(), vec![Value::I32(2)]),
            ("first".to_string(), vec![Value::I32(3)]),
        ];
        d.invoke(BATCH_METHOD, &[encode_batch(calls)]).unwrap();
        let names: Vec<String> = log.lock().iter().map(|(m, _)| m.clone()).collect();
        assert_eq!(names, vec!["first", "second", "first"]);
    }

    #[test]
    fn non_batch_calls_pass_through() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        d.invoke("direct", &[Value::I32(7)]).unwrap();
        assert_eq!(log.lock().as_slice(), &[("direct".to_string(), 7)]);
    }

    #[test]
    fn failure_mid_batch_stops_the_rest() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        let calls = vec![
            ("ok".to_string(), vec![Value::I32(1)]),
            ("boom".to_string(), vec![]),
            ("never".to_string(), vec![Value::I32(3)]),
        ];
        assert!(d.invoke(BATCH_METHOD, &[encode_batch(calls)]).is_err());
        assert_eq!(log.lock().len(), 1);
    }

    #[test]
    fn malformed_batches_rejected() {
        let (_, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        assert!(d.invoke(BATCH_METHOD, &[]).is_err());
        assert!(d.invoke(BATCH_METHOD, &[Value::I32(1)]).is_err());
        assert!(d
            .invoke(BATCH_METHOD, &[Value::List(vec![Value::I32(1)])])
            .is_err());
        let no_args = Value::List(vec![Value::Struct(
            StructValue::new("Call").with_field("m", Value::Str("x".into())),
        )]);
        assert!(d.invoke(BATCH_METHOD, &[no_args]).is_err());
    }

    // ---- flat batch wire path -----------------------------------------

    fn flat(calls: &[(&str, Vec<Value>)]) -> Vec<u8> {
        let f = BinaryFormatter::new();
        let mut buf = Vec::new();
        for (m, a) in calls {
            encode_flat_call(&f, &mut buf, m, a).unwrap();
        }
        buf
    }

    #[test]
    fn flat_roundtrip_preserves_calls_and_order() {
        let calls = vec![
            ("a", vec![Value::I32(1)]),
            ("b", vec![Value::I32(2), Value::Str("x".into())]),
            ("c", vec![]),
        ];
        let bytes = flat(&calls);
        let f = BinaryFormatter::new();
        let decoded: Vec<(String, Vec<Value>)> =
            FlatBatchReader::new(&f, &bytes).collect::<Result<_, _>>().unwrap();
        let expected: Vec<(String, Vec<Value>)> =
            calls.into_iter().map(|(m, a)| (m.to_string(), a)).collect();
        assert_eq!(decoded, expected);
    }

    #[test]
    fn flat_batch_dispatches_in_order() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        let calls: Vec<(&str, Vec<Value>)> =
            (0..10).map(|i| ("work", vec![Value::I32(i)])).collect();
        d.invoke(FLAT_BATCH_METHOD, &[Value::Bytes(flat(&calls))]).unwrap();
        let seen: Vec<i32> = log.lock().iter().map(|(_, v)| *v).collect();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn flat_failure_mid_batch_stops_the_rest() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        let calls = [
            ("ok", vec![Value::I32(1)]),
            ("boom", vec![]),
            ("never", vec![Value::I32(3)]),
        ];
        assert!(d.invoke(FLAT_BATCH_METHOD, &[Value::Bytes(flat(&calls))]).is_err());
        assert_eq!(log.lock().len(), 1);
    }

    #[test]
    fn malformed_flat_batches_rejected() {
        let (_, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        assert!(d.invoke(FLAT_BATCH_METHOD, &[]).is_err());
        assert!(d.invoke(FLAT_BATCH_METHOD, &[Value::I32(1)]).is_err());
        // Truncated mid-entry.
        let mut bytes = flat(&[("work", vec![Value::I32(7)])]);
        bytes.truncate(bytes.len() - 2);
        assert!(d.invoke(FLAT_BATCH_METHOD, &[Value::Bytes(bytes)]).is_err());
        // Garbage where an argument encoding should be.
        let mut garbage = Vec::new();
        garbage.extend_from_slice(&4u32.to_be_bytes());
        garbage.extend_from_slice(b"work");
        garbage.extend_from_slice(&1u32.to_be_bytes());
        garbage.extend_from_slice(&3u32.to_be_bytes());
        garbage.extend_from_slice(&[0xde, 0xad, 0xbe]);
        assert!(d.invoke(FLAT_BATCH_METHOD, &[Value::Bytes(garbage)]).is_err());
    }

    #[test]
    fn empty_flat_batch_is_a_noop() {
        let (log, obj) = recorder();
        let d = BatchDispatcher::new(obj);
        assert_eq!(d.invoke(FLAT_BATCH_METHOD, &[Value::Bytes(vec![])]).unwrap(), Value::Null);
        assert!(log.lock().is_empty());
    }
}
