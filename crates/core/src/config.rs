//! Runtime configuration: grain-size policy and object placement.

use std::fmt;

/// Object placement (load-distribution) policy used by the object
/// managers when a new parallel object must be created remotely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Cycle through nodes in order — ParC++'s default policy.
    #[default]
    RoundRobin,
    /// Pick a node uniformly at random (seeded, reproducible).
    Random {
        /// PRNG seed; equal seeds give equal placements.
        seed: u64,
    },
    /// Query every OM's load and pick the least loaded node.
    LeastLoaded,
    /// Resolve through the sharded object directory's consistent-hash
    /// ring — O(1), no placement RPCs; load feedback arrives out of band
    /// as ring weight updates from the rebalancer.
    Ring,
}

impl Placement {
    /// Parses a policy name as accepted by the `PARC_PLACEMENT`
    /// environment variable: `ring`, `leastloaded` (or `least-loaded`),
    /// `rr` (or `round-robin`/`roundrobin`), and `random:SEED`.
    pub fn parse(s: &str) -> Option<Placement> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ring" => Some(Placement::Ring),
            "leastloaded" | "least-loaded" => Some(Placement::LeastLoaded),
            "rr" | "round-robin" | "roundrobin" => Some(Placement::RoundRobin),
            other => other
                .strip_prefix("random:")
                .and_then(|seed| seed.parse().ok())
                .map(|seed| Placement::Random { seed }),
        }
    }

    /// Reads `PARC_PLACEMENT`; `None` when unset or unparseable.
    pub fn from_env() -> Option<Placement> {
        std::env::var("PARC_PLACEMENT").ok().and_then(|v| Placement::parse(&v))
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Placement::RoundRobin => f.write_str("round-robin"),
            Placement::Random { seed } => write!(f, "random(seed={seed})"),
            Placement::LeastLoaded => f.write_str("least-loaded"),
            Placement::Ring => f.write_str("ring"),
        }
    }
}

/// Grain-size adaptation settings (§3.1's two mechanisms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrainConfig {
    /// `maxCalls` of Fig. 7: how many asynchronous calls are packed into
    /// one aggregate message. `1` disables aggregation.
    pub aggregation_factor: usize,
    /// Fraction of object creations agglomerated locally, in `[0, 1]`.
    /// `0.0` = always distribute (full parallelism), `1.0` = always local
    /// (parallelism fully removed). Intermediate values let the adaptive
    /// controller remove parallelism gradually.
    pub agglomeration_ratio: f64,
    /// Enable the run-time adapter (overrides the two static knobs from
    /// measured call costs).
    pub adaptive: bool,
}

impl Default for GrainConfig {
    fn default() -> Self {
        GrainConfig { aggregation_factor: 1, agglomeration_ratio: 0.0, adaptive: false }
    }
}

impl GrainConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`crate::ParcError::Config`] when a knob is out of range.
    pub fn validate(&self) -> Result<(), crate::ParcError> {
        if self.aggregation_factor == 0 {
            return Err(crate::ParcError::Config {
                detail: "aggregation_factor must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.agglomeration_ratio) {
            return Err(crate::ParcError::Config {
                detail: format!(
                    "agglomeration_ratio {} outside [0, 1]",
                    self.agglomeration_ratio
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_disables_both_mechanisms() {
        let c = GrainConfig::default();
        assert_eq!(c.aggregation_factor, 1);
        assert_eq!(c.agglomeration_ratio, 0.0);
        assert!(!c.adaptive);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_aggregation_rejected() {
        let c = GrainConfig { aggregation_factor: 0, ..GrainConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn out_of_range_ratio_rejected() {
        for r in [-0.1, 1.1, f64::NAN] {
            let c = GrainConfig { agglomeration_ratio: r, ..GrainConfig::default() };
            assert!(c.validate().is_err(), "{r}");
        }
    }

    #[test]
    fn placement_displays() {
        assert_eq!(Placement::RoundRobin.to_string(), "round-robin");
        assert_eq!(Placement::Random { seed: 3 }.to_string(), "random(seed=3)");
        assert_eq!(Placement::LeastLoaded.to_string(), "least-loaded");
        assert_eq!(Placement::Ring.to_string(), "ring");
        assert_eq!(Placement::default(), Placement::RoundRobin);
    }

    #[test]
    fn placement_parses_env_names() {
        assert_eq!(Placement::parse("ring"), Some(Placement::Ring));
        assert_eq!(Placement::parse(" RING "), Some(Placement::Ring));
        assert_eq!(Placement::parse("rr"), Some(Placement::RoundRobin));
        assert_eq!(Placement::parse("round-robin"), Some(Placement::RoundRobin));
        assert_eq!(Placement::parse("leastloaded"), Some(Placement::LeastLoaded));
        assert_eq!(Placement::parse("least-loaded"), Some(Placement::LeastLoaded));
        assert_eq!(Placement::parse("random:42"), Some(Placement::Random { seed: 42 }));
        assert_eq!(Placement::parse("bogus"), None);
        assert_eq!(Placement::parse("random:x"), None);
    }
}
